"""E10 (ablation) — design choices the reproduction relies on.

* Explorer memoization: the configuration-dedup key (object states ×
  per-process response histories) versus raw interleaving enumeration.
* Batching in the total-order baseline: how much of the consensus cost
  amortizes away, and what remains (the sequencer's latency).
* The escrow-token alternative: atomic operations, collapsed consensus power
  (the DESIGN.md note 5 trade-off quantified).
"""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.explorer import ScheduleExplorer


def test_memoization_ablation(benchmark, write_table):
    def run():
        rows = []
        # Raw enumeration is exponential; k=2 is the largest instance worth
        # paying for (k=3's raw tree has millions of nodes).
        for k in (2,):
            proposals = {pid: pid for pid in range(k)}
            factory = lambda p=proposals: algorithm1_system(p)
            memoized = ScheduleExplorer(factory, memoize=True)
            memo_report = memoized.explore(
                checks=[consensus_checks(proposals)]
            )
            raw = ScheduleExplorer(
                factory, memoize=False, max_configs=10_000_000
            )
            raw_report = raw.explore(checks=[consensus_checks(proposals)])
            assert memo_report.ok and raw_report.ok
            assert memo_report.outcomes == raw_report.outcomes
            rows.append((k, memo_report.configs, raw_report.configs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E10: explorer memoization ablation (identical verdicts, tree size)",
        f"{'k':>3} {'memoized configs':>17} {'raw tree nodes':>15} {'reduction':>10}",
    ]
    for k, memoized, raw in rows:
        lines.append(
            f"{k:>3} {memoized:>17} {raw:>15} {raw / memoized:>9.1f}x"
        )
        assert raw > memoized
    write_table("E10_memoization", lines)


def test_escrow_vs_emulation_step_costs(benchmark, write_table):
    """Atomicity trade-off: Algorithm 2's emulation vs the escrow design."""
    from repro.objects.erc20 import TokenState
    from repro.protocols.escrow_token import EscrowToken
    from repro.protocols.token_from_kat import EmulatedToken

    def count_steps(obj, pid, method, *args):
        generator = getattr(obj, method)(pid, *args)
        steps = 0
        try:
            call = next(generator)
            while True:
                steps += 1
                result = call.target.invoke(pid, call.operation)
                call = generator.send(result)
        except StopIteration:
            return steps

    def measure():
        n = 4
        state = TokenState.create([10, 0, 0, 0], {(0, 1): 5})
        rows = []
        for method, args, escrow_method in (
            ("transfer_from", (0, 2, 2), "transfer_from"),
            ("allowance", (0, 1), "allowance"),
            ("transfer", (1, 1), "transfer"),
        ):
            emulated = EmulatedToken(state, k=2, variant="corrected")
            escrow = EscrowToken(state)
            rows.append(
                (
                    method,
                    count_steps(
                        emulated,
                        1 if method != "transfer" else 0,
                        method,
                        *args,
                    ),
                    count_steps(
                        escrow,
                        1 if method != "transfer" else 0,
                        escrow_method,
                        *args,
                    ),
                )
            )
        return rows

    rows = benchmark(measure)
    lines = [
        "E10: base steps per op — Algorithm 2 emulation vs escrow design",
        f"{'operation':<16} {'Alg.2 (corrected)':>18} {'escrow':>8}",
        "(escrow is atomic everywhere but collapses CN to 2; see",
        " tests/protocols/test_escrow_token.py)",
    ]
    for method, emulated_steps, escrow_steps in rows:
        lines.append(f"{method:<16} {emulated_steps:>18} {escrow_steps:>8}")
        assert escrow_steps == 1
    write_table("E10_escrow_tradeoff", lines)
