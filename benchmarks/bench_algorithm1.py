"""E2 — Theorem 2 / Algorithm 1: consensus from ERC20 tokens.

For each k: run the construction under schedules (solo, round-robin, seeded
random with crashes) asserting the consensus properties everywhere, and —
for small k — exhaustively over every interleaving.  The table reports the
protocol's step complexity (linear in k) and the verified schedule coverage.
"""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler

RANDOM_SEEDS = 25


def sweep_k(k: int) -> dict:
    proposals = {pid: f"v{pid}" for pid in range(k)}
    max_steps = 0
    winners = set()
    for seed in range(RANDOM_SEEDS):
        result = run_system(algorithm1_system(proposals), RandomScheduler(seed))
        values = set(result.decisions.values())
        assert len(values) == 1 and values <= set(proposals.values())
        winners |= values
        max_steps = max(max_steps, max(r.steps_taken for r in result.runners))
    crash_ok = 0
    for seed in range(RANDOM_SEEDS):
        scheduler = RandomScheduler(
            seed, crash_probability=0.15, crash_budget=k - 1
        )
        result = run_system(algorithm1_system(proposals), scheduler)
        assert len(set(result.decisions.values())) <= 1
        crash_ok += 1
    return {
        "k": k,
        "steps_per_proc": max_steps,
        "distinct_winners": len(winners),
        "random_runs": RANDOM_SEEDS,
        "crash_runs": crash_ok,
    }


def test_algorithm1_k_sweep(benchmark, write_table):
    def run_sweep():
        return [sweep_k(k) for k in (1, 2, 3, 4, 5, 6, 8)]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "E2: Algorithm 1 sweep (agreement+validity on every run)",
        f"{'k':>3} {'steps/proc':>11} {'winners seen':>13} "
        f"{'random runs':>12} {'crash runs':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['k']:>3} {row['steps_per_proc']:>11} "
            f"{row['distinct_winners']:>13} {row['random_runs']:>12} "
            f"{row['crash_runs']:>11}"
        )
        # Step complexity is linear in k: write + transfer + (k-1) reads + read.
        assert row["steps_per_proc"] <= row["k"] + 3
    write_table("E2_algorithm1_sweep", lines)


def test_algorithm1_exhaustive(benchmark, write_table):
    def explore_all():
        results = []
        for k, crash_budget in ((2, 0), (2, 1), (3, 0)):
            proposals = {pid: pid for pid in range(k)}
            explorer = ScheduleExplorer(
                lambda p=proposals: algorithm1_system(p),
                crash_budget=crash_budget,
            )
            report = explorer.explore(checks=[consensus_checks(proposals)])
            assert report.ok
            results.append((k, crash_budget, report))
        return results

    results = benchmark.pedantic(explore_all, rounds=1, iterations=1)
    lines = [
        "E2: Algorithm 1 exhaustive model checking",
        f"{'k':>3} {'crashes':>8} {'configs':>9} {'completions':>12} "
        f"{'violations':>11} {'outcomes':>9}",
    ]
    for k, crash_budget, report in results:
        lines.append(
            f"{k:>3} {crash_budget:>8} {report.configs:>9} "
            f"{report.executions:>12} {len(report.violations):>11} "
            f"{len(report.outcomes):>9}"
        )
        assert report.outcomes == set(range(k))
    write_table("E2_algorithm1_exhaustive", lines)


def test_algorithm1_single_run_latency(benchmark):
    """Wall-clock of one full k=4 consensus instance (runtime overhead)."""
    proposals = {pid: pid for pid in range(4)}

    def one_round():
        return run_system(algorithm1_system(proposals), RandomScheduler(7))

    result = benchmark(one_round)
    assert len(set(result.decisions.values())) == 1
