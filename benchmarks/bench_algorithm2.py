"""E4 — Theorem 4 / Algorithm 2: the token emulation from k-AT.

Differential throughput and equivalence totals (emulated vs sequential
restricted specification), the Q_k-confinement counters, and the cost of the
emulation in base-object steps per operation.
"""

from __future__ import annotations

import random

from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.restricted import restrict_to_potential_qk
from repro.protocols.token_from_kat import EmulatedToken, run_sequential
from repro.spec.operation import Operation

METHODS = {
    "transfer": "transfer",
    "transferFrom": "transfer_from",
    "approve": "approve",
    "balanceOf": "balance_of",
    "allowance": "allowance",
    "totalSupply": "total_supply",
}


def random_invocation(rng: random.Random, n: int):
    name = rng.choice(list(METHODS))
    if name == "transfer":
        args = (rng.randrange(n), rng.randint(0, 5))
    elif name == "transferFrom":
        args = (rng.randrange(n), rng.randrange(n), rng.randint(0, 5))
    elif name == "approve":
        args = (rng.randrange(n), rng.randint(0, 5))
    elif name == "balanceOf":
        args = (rng.randrange(n),)
    elif name == "allowance":
        args = (rng.randrange(n), rng.randrange(n))
    else:
        args = ()
    return rng.randrange(n), name, args


def run_differential(n: int, k: int, ops: int, seed: int):
    rng = random.Random(seed)
    spec = restrict_to_potential_qk(ERC20TokenType(n), k)
    spec_state = TokenState.deploy(n, 15)
    emulated = EmulatedToken(spec_state, k=k, variant="corrected")
    matches = rejected_approves = 0
    for _ in range(ops):
        pid, name, args = random_invocation(rng, n)
        spec_state, expected = spec.apply(
            spec_state, pid, Operation(name, args)
        )
        actual = run_sequential(emulated, pid, METHODS[name], *args)
        assert actual == expected
        matches += 1
        if name == "approve" and expected is False:
            rejected_approves += 1
    return matches, rejected_approves


def test_differential_equivalence(benchmark, write_table):
    def sweep():
        rows = []
        for n, k in ((3, 2), (4, 2), (4, 3), (5, 3)):
            matches, rejections = run_differential(
                n, k, ops=400, seed=n * 10 + k
            )
            rows.append((n, k, matches, rejections))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "E4: Algorithm 2 (corrected) vs restricted Definition 3",
        f"{'n':>3} {'k':>3} {'ops matched':>12} {'Q_k approve rejections':>24}",
    ]
    for n, k, matches, rejections in rows:
        lines.append(f"{n:>3} {k:>3} {matches:>12} {rejections:>24}")
        assert matches == 400
    write_table("E4_differential", lines)


def count_base_steps(method: str, args: tuple, n: int, k: int) -> int:
    """Base-object steps one emulated operation takes."""
    state = TokenState.deploy(n, 15)
    emulated = EmulatedToken(state, k=k, variant="corrected")
    generator = getattr(emulated, method)(0, *args)
    steps = 0
    try:
        call = next(generator)
        while True:
            steps += 1
            result = call.target.invoke(0, call.operation)
            call = generator.send(result)
    except StopIteration:
        return steps


def test_emulation_step_costs(benchmark, write_table):
    def measure():
        rows = []
        for n in (3, 5, 8):
            rows.append(
                (
                    n,
                    count_base_steps("transfer", (1, 2), n, 2),
                    count_base_steps("approve", (1, 3), n, 2),
                    count_base_steps("balance_of", (0,), n, 2),
                    count_base_steps("total_supply", (), n, 2),
                )
            )
        return rows

    rows = benchmark(measure)
    lines = [
        "E4: base-object steps per emulated operation (corrected variant)",
        f"{'n':>3} {'transfer':>9} {'approve':>8} {'balanceOf':>10} {'totalSupply':>12}",
    ]
    for n, transfer, approve, balance_of, total_supply in rows:
        lines.append(
            f"{n:>3} {transfer:>9} {approve:>8} {balance_of:>10} {total_supply:>12}"
        )
        assert transfer == 1  # one k-AT step
        assert approve >= n  # the guard census reads n-1 registers
    write_table("E4_step_costs", lines)


def test_emulated_throughput(benchmark):
    """Sequential ops/second through the full emulation stack."""
    rng = random.Random(5)
    emulated = EmulatedToken(TokenState.deploy(5, 20), k=3, variant="corrected")
    workload = [random_invocation(rng, 5) for _ in range(300)]

    def apply_all():
        for pid, name, args in workload:
            run_sequential(emulated, pid, METHODS[name], *args)

    benchmark(apply_all)
