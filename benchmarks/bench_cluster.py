"""E10 — the distributed cluster: scale-out from shard ownership.

Compares, in virtual time (network latency + operation units + simulated
consensus latency), three ways of serving the same token workload:

* **single-node engine** (``repro.engine``): 8 lanes, no network;
* **N-node cluster** (``repro.cluster``): 8 lanes *per node*, every
  operation paying its real message cost — point-to-point forwards, lease
  handoffs for cross-shard chains, the shared total-order lane for
  contended cross-node conflicts;
* **all-consensus baseline**: every operation sequenced by the
  leader-based total order before executing serially — the blockchain
  discipline the paper argues is unnecessary for most token traffic.

Workloads: owner-local traffic (each operation confined to one node's
shards — the zero-coordination regime), the OWNER_ONLY and default and
SPENDER_HEAVY mixes, plus a contention sweep over the Zipf / hot-spot
skew knobs.  Every cluster run is checked for serial equivalence against
the sequential specification.

Standalone (writes ``BENCH_cluster.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_backpressure, render_stats_table
from repro.cluster import TokenCluster, owner_local_workload
from repro.obs import TraceRecorder
from repro.engine import BatchExecutor, ConsensusEscalator
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadMix,
)

SEED = 23
ACCOUNTS = 256
WINDOW = 128
LANES = 8
NODE_COUNTS = (2, 4, 8)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
}

#: Pure query traffic for the skew sweep: a balance-query storm on a hot
#: account is one huge *commuting* bundle (reads conflict with nothing),
#: exactly what hot-shard splitting exists to spread — with any transfer
#: admixture the hot account's reads chain onto its transfers instead.
QUERY_STORM_MIX = WorkloadMix(
    transfer=0.0,
    transfer_from=0.0,
    approve=0.0,
    balance_of=0.95,
    allowance=0.0,
    total_supply=0.05,
)


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(
    mix,
    ops: int,
    zipf_s: float = 0.0,
    hotspot: float = 0.0,
    hotspot_accounts: int = 2,
):
    return TokenWorkloadGenerator(
        ACCOUNTS,
        seed=SEED,
        mix=mix,
        zipf_s=zipf_s,
        hotspot_fraction=hotspot,
        hotspot_accounts=hotspot_accounts,
    ).generate(ops)


def run_engine(items) -> dict:
    token = make_token()
    engine = BatchExecutor(token, num_lanes=LANES, window=WINDOW, seed=SEED)
    _, _, stats = engine.run_workload(items)
    return {
        "virtual_time": stats.virtual_time,
        "throughput": stats.throughput,
        "escalation_messages": stats.escalation_messages,
    }


def run_cluster(items, nodes: int) -> TokenCluster:
    """One cluster run, serial-equivalence-checked against the spec."""
    token = make_token()
    cluster = TokenCluster(
        token, num_nodes=nodes, lanes_per_node=LANES, window=WINDOW, seed=SEED
    )
    state, responses, _ = cluster.run_workload(items)
    ref_state, ref_responses = token.run(
        [(item.pid, item.operation) for item in items]
    )
    assert state == ref_state, "cluster diverged from the sequential spec"
    assert responses == ref_responses, "cluster responses diverged"
    return cluster


def run_all_consensus(items) -> dict:
    """Every operation through total order, then serial execution."""
    from repro.engine.mempool import Mempool

    token = make_token()
    escalator = ConsensusEscalator(seed=SEED)
    mempool = Mempool()
    pending = mempool.feed(items)
    virtual_time = 0.0
    messages = 0
    while True:
        batch = mempool.pop_window(WINDOW)
        if not batch:
            break
        result = escalator.order(batch)
        virtual_time += result.virtual_time
        messages += result.messages
    token.run([(op.pid, op.operation) for op in pending])
    virtual_time += len(pending) * 1.0  # serial execution, one op per unit
    return {
        "virtual_time": virtual_time,
        "throughput": len(pending) / virtual_time,
        "messages": messages,
    }


def measure(ops: int) -> dict:
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes_per_node": LANES,
            "node_counts": list(NODE_COUNTS),
            "seed": SEED,
        },
        "mixes": {},
        "owner_local": {},
        "skew": {},
    }

    # Owner-local traffic: the zero-coordination regime, per node count.
    for nodes in NODE_COUNTS:
        probe = TokenCluster(
            make_token(), num_nodes=nodes, lanes_per_node=LANES, window=WINDOW
        )
        items = owner_local_workload(probe.shard_map, ACCOUNTS, ops, seed=SEED)
        cluster = run_cluster(items, nodes)
        results["owner_local"][str(nodes)] = cluster.stats.as_dict()

    # Mix comparison: engine vs cluster vs all-consensus.
    for name, mix in MIXES.items():
        items = make_items(mix, ops)
        engine = run_engine(items)
        entry = {
            "engine": engine,
            "all_consensus": run_all_consensus(items),
            "cluster": {},
        }
        for nodes in NODE_COUNTS:
            stats = run_cluster(items, nodes).stats
            entry["cluster"][str(nodes)] = stats.as_dict()
            entry["cluster"][str(nodes)]["speedup_vs_engine"] = (
                stats.throughput / engine["throughput"]
                if engine["throughput"]
                else 0.0
            )
        results["mixes"][name] = entry

    # Contention sweep: the Zipf / hot-spot knobs at a fixed node count.
    for zipf_s, hotspot in ((0.0, 0.0), (1.2, 0.0), (0.0, 0.6)):
        items = make_items(
            QUERY_STORM_MIX,
            ops,
            zipf_s=zipf_s,
            hotspot=hotspot,
            hotspot_accounts=1,
        )
        stats = run_cluster(items, 4).stats
        results["skew"][f"zipf_{zipf_s}_hot_{hotspot}"] = {
            "throughput": stats.throughput,
            "owner_local_rate": stats.owner_local_rate,
            "hot_split_ops": stats.hot_split_ops,
            "lease_migrations": stats.lease_migrations,
            "load_imbalance": stats.load_imbalance,
            "dropped_ops": stats.dropped_ops,
        }

    # Per-op commit latency (submit -> commit on the traced virtual
    # timeline), from a dedicated traced run of the default mix at 4
    # nodes — the runs above stay untraced, so their stats dicts are
    # bit-identical with or without the observability layer.
    tracer = TraceRecorder()
    cluster = TokenCluster(
        make_token(),
        num_nodes=4,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        tracer=tracer,
    )
    cluster.run_workload(make_items(WorkloadMix(), ops))
    results["op_latency"] = {
        "cluster_4": tracer.metrics.histogram("op_latency").summary()
    }
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    # Owner-local traffic: zero consensus, zero lease migrations, any N.
    for nodes, stats in results["owner_local"].items():
        assert stats["escalation_messages"] == 0, nodes
        assert stats["escalated_ops"] == 0, nodes
        assert stats["lease_migrations"] == 0, nodes
    owner = results["mixes"]["owner_only"]
    # The cluster beats the single-node engine at >= 4 nodes ...
    for nodes in ("4", "8"):
        assert owner["cluster"][nodes]["speedup_vs_engine"] > 1.0, (
            nodes,
            owner["cluster"][nodes]["speedup_vs_engine"],
        )
    # ... with zero consensus traffic on the consensus-number-1 mix ...
    assert owner["cluster"]["4"]["escalation_messages"] == 0
    # ... and dwarfs the all-consensus baseline.
    assert (
        owner["cluster"]["4"]["throughput"]
        > 5 * owner["all_consensus"]["throughput"]
    )
    # Spender traffic pays for its races — and only there.
    spender = results["mixes"]["spender_heavy"]["cluster"]["4"]
    assert spender["escalated_ops"] > 0
    assert spender["escalation_messages"] > 0
    assert spender["escalation_rate"] < 0.5  # most traffic still avoids it
    # Skewed traffic exercises hot-shard splitting.
    assert any(entry["hot_split_ops"] > 0 for entry in results["skew"].values())


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E10: cluster scale-out vs single-node engine vs all-consensus "
        f"({params['ops']} ops, {params['accounts']} accounts, "
        f"{params['lanes_per_node']} lanes/node, virtual time)",
    ]
    lines += render_stats_table(
        list(results["mixes"].items()),
        [("engine op/t", "engine.throughput", ".3f")]
        + [("consensus op/t", "all_consensus.throughput", ".3f")]
        + [
            (f"{n} nodes", f"cluster.{n}.throughput", ".3f")
            for n in NODE_COUNTS
        ],
        label_header="mix",
        separators=(1,),
    )
    lines.append("")
    lines.append("owner-local traffic (zero-coordination regime):")
    for nodes, stats in results["owner_local"].items():
        lines.append(
            f"  {nodes} nodes: throughput {stats['throughput']:>7.3f}  "
            f"owner-local {stats['owner_local_rate']:.0%}  "
            f"consensus msgs {stats['escalation_messages']}  "
            f"leases {stats['lease_migrations']}  "
            f"dropped {stats.get('dropped_ops', 0)}"
        )
    lines.append("")
    lines.append("skew sweep (query-storm mix, 4 nodes):")
    for key, entry in results["skew"].items():
        lines.append(
            f"  {key:>20}: throughput {entry['throughput']:>7.3f}  "
            f"hot-splits {entry['hot_split_ops']:>4}  "
            f"leases {entry['lease_migrations']:>4}  "
            f"imbalance {entry['load_imbalance']:.2f}"
        )
    dropped = (
        sum(
            entry["cluster"][str(n)].get("dropped_ops", 0)
            for entry in results["mixes"].values()
            for n in NODE_COUNTS
        )
        + sum(
            stats.get("dropped_ops", 0)
            for stats in results["owner_local"].values()
        )
        + sum(
            entry.get("dropped_ops", 0) for entry in results["skew"].values()
        )
    )
    lines += render_backpressure(
        dropped, "ops dropped at the router's admission edge"
    )
    latency = results["op_latency"]["cluster_4"]
    lines.append(
        f"op commit latency (default mix, 4 nodes): "
        f"p50 {latency['p50']:.2f}  p99 {latency['p99']:.2f}  "
        f"mean {latency['mean']:.2f}  over {latency['count']} ops"
    )
    return lines


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the default
    mix at 4 nodes, one track per node lane plus router and sync lanes."""
    cluster = TokenCluster(
        make_token(),
        num_nodes=4,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        tracer=tracer,
    )
    cluster.run_workload(make_items(WorkloadMix(), ops))


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_cluster_scaling(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=600), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E10_cluster", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_cluster.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_cluster.json",
        smoke_ops=512,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
