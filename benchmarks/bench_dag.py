"""E13 — op-granular DAG scheduling vs chain-atomic components.

The paper's synchronization result is per-*pair*: only non-commuting
operation pairs ever need a relative order.  Chain-atomic scheduling
nevertheless serializes every conflict-graph component onto one lane —
a component of k ops costs k op-times even when most of its pairs
commute.  Op-granular DAG scheduling (``dag_scheduling=True``) schedules
ops along the component's precedence DAG instead, dropping the
component's makespan toward its critical path.  This experiment measures
what that buys, in virtual time:

* **engine**: chain-atomic vs DAG-scheduled makespan for the barrier
  executor and the pipelined executor (per-op frontier), on the
  chain-heavy administrated-token mix and on APPROVAL_HEAVY — the
  headline: DAG-scheduled is strictly faster on both, >= 1.3x on the
  chain-heavy mix whose components carry antichain width >= 2;
* **cluster**: chain-atomic batch dispatch vs component-granular
  ``cl_run`` units + op-granular node planning at 4 nodes, both mixes;
* **identity**: ``dag_scheduling=False`` reproduces the legacy engine
  and cluster bit for bit (stats dictionaries compared), and the
  depth-1 pipeline inherits the DAG barrier path exactly.

The A/B runs pin every other knob to the ``legacy()`` preset so the
comparison isolates DAG scheduling; a separate **default vs legacy()**
section shows what the no-knobs default construction (every fast path
on) buys over the pre-flip engine on both mixes.

Every run is checked for serial equivalence against the sequential
specification.

Standalone (writes ``BENCH_dag.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_dag.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_identity, render_stats_table
from repro.cluster import ClusterConfig, TokenCluster
from repro.config import EngineConfig
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.obs import TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
)

SEED = 23
ACCOUNTS = 96
WINDOW = 128
LANES = 8
NODES = 4
PIPE_DEPTH = 3

#: Mix name -> (mix, extra generator knobs).  The hot-spot overlay on the
#: chain-heavy mix is what grows components long enough to carry width.
MIXES = {
    "chain_heavy": (
        CHAIN_HEAVY_MIX,
        {"hotspot_fraction": 0.35, "hotspot_accounts": 4},
    ),
    "approval_heavy": (APPROVAL_HEAVY_MIX, {}),
}


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(name: str, ops: int):
    mix, knobs = MIXES[name]
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=SEED, mix=mix, **knobs
    ).generate(ops)


def serial_reference(items):
    return make_token().run([(item.pid, item.operation) for item in items])


def run_engine(items, dag: bool, depth: int | None = None) -> dict:
    """One engine run on the legacy base (barrier when ``depth`` is
    None) so the A/B isolates DAG scheduling, spec-checked."""
    config = EngineConfig.legacy(
        num_lanes=LANES,
        window=WINDOW,
        seed=SEED,
        dag_scheduling=dag,
        pipeline_depth=1 if depth is None else depth,
    )
    if depth is None:
        engine = BatchExecutor(make_token(), config)
    else:
        engine = PipelinedExecutor(make_token(), config)
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_default_engine(items, legacy: bool) -> dict:
    """A no-knobs pipelined engine — every fast-path default in effect —
    or the same structural parameters pinned to the ``legacy()`` preset.
    The default-vs-legacy headline comparison, spec-checked."""
    preset = EngineConfig.legacy if legacy else EngineConfig
    engine = PipelinedExecutor(
        make_token(), preset(num_lanes=LANES, window=WINDOW, seed=SEED)
    )
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_cluster(items, dag: bool, depth: int = PIPE_DEPTH) -> dict:
    """One cluster run at ``NODES`` nodes on the legacy base,
    spec-checked."""
    cluster = TokenCluster(
        make_token(),
        ClusterConfig.legacy(
            num_nodes=NODES,
            lanes_per_node=LANES,
            window=WINDOW,
            seed=SEED,
            pipeline_depth=depth,
            dag_scheduling=dag,
        ),
    )
    state, responses, stats = cluster.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "cluster diverged from the sequential spec"
    assert responses == ref_responses, "cluster responses diverged"
    return stats.as_dict()


def measure(ops: int) -> dict:
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes": LANES,
            "nodes": NODES,
            "pipeline_depth": PIPE_DEPTH,
            "seed": SEED,
        },
        "engine": {},
        "cluster": {},
        "identity": {},
    }

    for name in MIXES:
        items = make_items(name, ops)
        atomic = run_engine(items, dag=False)
        dag = run_engine(items, dag=True)
        piped_atomic = run_engine(items, dag=False, depth=PIPE_DEPTH)
        piped_dag = run_engine(items, dag=True, depth=PIPE_DEPTH)
        results["engine"][name] = {
            "atomic": atomic,
            "dag": dag,
            "ratio": atomic["virtual_time"] / dag["virtual_time"],
            "pipelined_atomic": piped_atomic,
            "pipelined_dag": piped_dag,
            "pipelined_ratio": piped_atomic["virtual_time"]
            / piped_dag["virtual_time"],
        }
        c_atomic = run_cluster(items, dag=False)
        c_dag = run_cluster(items, dag=True)
        results["cluster"][name] = {
            str(NODES): {
                "atomic": c_atomic,
                "dag": c_dag,
                "ratio": c_atomic["makespan"] / c_dag["makespan"],
            }
        }

    # Identity: the flag off is the legacy path bit for bit, and the
    # depth-1 pipeline inherits the DAG barrier path exactly.
    items = make_items("chain_heavy", ops)
    legacy_engine = BatchExecutor(
        make_token(),
        EngineConfig.legacy(num_lanes=LANES, window=WINDOW, seed=SEED),
    )
    legacy_run = legacy_engine.run_workload(items)
    results["identity"]["engine_dag_off_identical"] = (
        legacy_run[2].as_dict()
        == results["engine"]["chain_heavy"]["atomic"]
    )
    results["identity"]["engine_depth1_dag_identical"] = (
        run_engine(items, dag=True, depth=1)
        == results["engine"]["chain_heavy"]["dag"]
    )
    legacy_cluster = TokenCluster(
        make_token(),
        ClusterConfig.legacy(
            num_nodes=NODES,
            lanes_per_node=LANES,
            window=WINDOW,
            seed=SEED,
            pipeline_depth=PIPE_DEPTH,
        ),
    )
    results["identity"]["cluster_dag_off_identical"] = (
        legacy_cluster.run_workload(items)[2].as_dict()
        == results["cluster"]["chain_heavy"][str(NODES)]["atomic"]
    )

    # The flip's headline: a no-knobs default construction (DAG
    # scheduling + pipelining + team lanes + lane GC all on) strictly
    # beats the legacy() preset on both mixes, same structural params.
    results["default_vs_legacy"] = {}
    for name in MIXES:
        items = make_items(name, ops)
        fast = run_default_engine(items, legacy=False)
        slow = run_default_engine(items, legacy=True)
        results["default_vs_legacy"][name] = {
            "default": fast,
            "legacy": slow,
            "speedup": slow["virtual_time"] / fast["virtual_time"],
        }

    # Per-op commit latency (submit -> commit on the traced virtual
    # timeline) from a dedicated traced run of the representative DAG
    # configuration — the runs above stay untraced, so their stats dicts
    # are bit-identical with or without the observability layer.
    tracer = TraceRecorder()
    traced_run(ops, tracer)
    results["op_latency"] = {
        "dag_engine": tracer.metrics.histogram("op_latency").summary()
    }
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    # The no-knobs default strictly beats the legacy() preset on both
    # mixes, and it really runs the fast paths.
    for name, entry in results["default_vs_legacy"].items():
        assert entry["speedup"] > 1.0, (name, entry["speedup"])
        assert entry["default"]["pipeline_depth"] > 1, name
        assert entry["default"]["max_dag_width"] >= 2, name
    # dag_scheduling=False is the historical path, bit for bit.
    assert results["identity"]["engine_dag_off_identical"]
    assert results["identity"]["engine_depth1_dag_identical"]
    assert results["identity"]["cluster_dag_off_identical"]
    for name, entry in results["engine"].items():
        # DAG-scheduled strictly beats chain-atomic makespan everywhere.
        assert entry["ratio"] > 1.0, (name, entry["ratio"])
        assert entry["pipelined_ratio"] > 1.0, (name, entry["pipelined_ratio"])
        # The structure the win comes from is real intra-component
        # parallelism, not accounting: components carry width >= 2 and
        # the critical-path totals shrink accordingly.
        assert entry["dag"]["max_dag_width"] >= 2, name
        assert entry["dag"]["dag_speedup"] > 1.0, name
        assert (
            entry["dag"]["dag_critical_ops"] < entry["dag"]["dag_chain_ops"]
        ), name
    # ... and decisively on the chain-heavy administrated-token mix.
    assert results["engine"]["chain_heavy"]["ratio"] >= 1.3, results[
        "engine"
    ]["chain_heavy"]["ratio"]
    for name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            assert comparison["ratio"] > 1.0, (name, nodes)
            # Component-granular dispatch really fanned units out.
            assert comparison["dag"]["units_dispatched"] > (
                comparison["dag"]["rounds"]
            ), (name, nodes)
            assert comparison["atomic"]["units_dispatched"] == 0


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E13: op-granular DAG scheduling vs chain-atomic components "
        f"({params['ops']} ops, {params['accounts']} accounts, "
        f"{params['lanes']} lanes, virtual time)",
        "",
        f"engine (window {params['window']}, barrier and pipelined "
        f"depth {params['pipeline_depth']}):",
    ]
    lines += render_stats_table(
        list(results["engine"].items()),
        [
            ("atomic", "atomic.virtual_time", ".1f"),
            ("dag", "dag.virtual_time", ".1f"),
            ("ratio", "ratio", ".2f"),
            ("piped", "pipelined_atomic.virtual_time", ".1f"),
            ("piped+dag", "pipelined_dag.virtual_time", ".1f"),
            ("piped ratio", "pipelined_ratio", ".2f"),
            ("width", "dag.max_dag_width", "d"),
            ("dag speedup", "dag.dag_speedup", ".2f"),
        ],
        label_header="mix",
        separators=(2, 5),
    )
    lines.append("")
    lines.append(
        f"cluster ({params['nodes']} nodes, depth "
        f"{params['pipeline_depth']}, batch dispatch vs component units):"
    )
    for name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            lines.append(
                f"  {name:>15} n={nodes}: "
                f"atomic {comparison['atomic']['makespan']:>7.2f}  "
                f"dag {comparison['dag']['makespan']:>7.2f}  "
                f"({comparison['ratio']:.2f}x, "
                f"{comparison['dag']['units_dispatched']} units over "
                f"{comparison['dag']['rounds']} rounds)"
            )
    lines.append("")
    lines.append("default vs legacy() (identical structural params):")
    for name, entry in results["default_vs_legacy"].items():
        lines.append(
            f"  {name:>15}: "
            f"default {entry['default']['virtual_time']:>7.1f}  "
            f"legacy {entry['legacy']['virtual_time']:>7.1f}  "
            f"({entry['speedup']:.2f}x)"
        )
    lines += render_identity(
        "dag_scheduling=False bit-identical to the legacy path",
        {
            "engine": results["identity"]["engine_dag_off_identical"],
            "depth-1": results["identity"]["engine_depth1_dag_identical"],
            "cluster": results["identity"]["cluster_dag_off_identical"],
        },
    )
    latency = results["op_latency"]["dag_engine"]
    lines.append(
        f"op commit latency (DAG barrier engine, chain-heavy mix): "
        f"p50 {latency['p50']:.2f}  p99 {latency['p99']:.2f}  "
        f"mean {latency['mean']:.2f}  over {latency['count']} ops"
    )
    return lines


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the
    DAG-scheduled barrier engine on the chain-heavy mix — component
    DAGs fan out across lanes instead of serializing per chain."""
    engine = BatchExecutor(
        make_token(),
        num_lanes=LANES,
        window=WINDOW,
        seed=SEED,
        dag_scheduling=True,
        tracer=tracer,
    )
    engine.run_workload(make_items("chain_heavy", ops))


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_dag_scheduling(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=512), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E13_dag", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_dag.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_dag.json",
        smoke_ops=512,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
