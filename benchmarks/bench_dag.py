"""E13 — op-granular DAG scheduling vs chain-atomic components.

The paper's synchronization result is per-*pair*: only non-commuting
operation pairs ever need a relative order.  Chain-atomic scheduling
nevertheless serializes every conflict-graph component onto one lane —
a component of k ops costs k op-times even when most of its pairs
commute.  Op-granular DAG scheduling (``dag_scheduling=True``) schedules
ops along the component's precedence DAG instead, dropping the
component's makespan toward its critical path.  This experiment measures
what that buys, in virtual time:

* **engine**: chain-atomic vs DAG-scheduled makespan for the barrier
  executor and the pipelined executor (per-op frontier), on the
  chain-heavy administrated-token mix and on APPROVAL_HEAVY — the
  headline: DAG-scheduled is strictly faster on both, >= 1.3x on the
  chain-heavy mix whose components carry antichain width >= 2;
* **cluster**: chain-atomic batch dispatch vs component-granular
  ``cl_run`` units + op-granular node planning at 4 nodes, both mixes;
* **identity**: ``dag_scheduling=False`` reproduces the default engine
  and cluster bit for bit (stats dictionaries compared), and the
  depth-1 pipeline inherits the DAG barrier path exactly.

Every run is checked for serial equivalence against the sequential
specification.

Standalone (writes ``BENCH_dag.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_dag.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
)

SEED = 23
ACCOUNTS = 96
WINDOW = 128
LANES = 8
NODES = 4
PIPE_DEPTH = 3

#: Mix name -> (mix, extra generator knobs).  The hot-spot overlay on the
#: chain-heavy mix is what grows components long enough to carry width.
MIXES = {
    "chain_heavy": (
        CHAIN_HEAVY_MIX,
        {"hotspot_fraction": 0.35, "hotspot_accounts": 4},
    ),
    "approval_heavy": (APPROVAL_HEAVY_MIX, {}),
}


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(name: str, ops: int):
    mix, knobs = MIXES[name]
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=SEED, mix=mix, **knobs
    ).generate(ops)


def serial_reference(items):
    return make_token().run([(item.pid, item.operation) for item in items])


def run_engine(items, dag: bool, depth: int | None = None) -> dict:
    """One engine run (barrier when ``depth`` is None), spec-checked."""
    kwargs = dict(
        num_lanes=LANES, window=WINDOW, seed=SEED, dag_scheduling=dag
    )
    if depth is None:
        engine = BatchExecutor(make_token(), **kwargs)
    else:
        engine = PipelinedExecutor(
            make_token(), pipeline_depth=depth, **kwargs
        )
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_cluster(items, dag: bool, depth: int = PIPE_DEPTH) -> dict:
    """One cluster run at ``NODES`` nodes, spec-checked."""
    cluster = TokenCluster(
        make_token(),
        num_nodes=NODES,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        pipeline_depth=depth,
        dag_scheduling=dag,
    )
    state, responses, stats = cluster.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "cluster diverged from the sequential spec"
    assert responses == ref_responses, "cluster responses diverged"
    return stats.as_dict()


def measure(ops: int) -> dict:
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes": LANES,
            "nodes": NODES,
            "pipeline_depth": PIPE_DEPTH,
            "seed": SEED,
        },
        "engine": {},
        "cluster": {},
        "identity": {},
    }

    for name in MIXES:
        items = make_items(name, ops)
        atomic = run_engine(items, dag=False)
        dag = run_engine(items, dag=True)
        piped_atomic = run_engine(items, dag=False, depth=PIPE_DEPTH)
        piped_dag = run_engine(items, dag=True, depth=PIPE_DEPTH)
        results["engine"][name] = {
            "atomic": atomic,
            "dag": dag,
            "ratio": atomic["virtual_time"] / dag["virtual_time"],
            "pipelined_atomic": piped_atomic,
            "pipelined_dag": piped_dag,
            "pipelined_ratio": piped_atomic["virtual_time"]
            / piped_dag["virtual_time"],
        }
        c_atomic = run_cluster(items, dag=False)
        c_dag = run_cluster(items, dag=True)
        results["cluster"][name] = {
            str(NODES): {
                "atomic": c_atomic,
                "dag": c_dag,
                "ratio": c_atomic["makespan"] / c_dag["makespan"],
            }
        }

    # Identity: the flag off is the default path bit for bit, and the
    # depth-1 pipeline inherits the DAG barrier path exactly.
    items = make_items("chain_heavy", ops)
    default_engine = BatchExecutor(
        make_token(), num_lanes=LANES, window=WINDOW, seed=SEED
    )
    default_run = default_engine.run_workload(items)
    results["identity"]["engine_dag_off_identical"] = (
        default_run[2].as_dict()
        == results["engine"]["chain_heavy"]["atomic"]
    )
    results["identity"]["engine_depth1_dag_identical"] = (
        run_engine(items, dag=True, depth=1)
        == results["engine"]["chain_heavy"]["dag"]
    )
    default_cluster = TokenCluster(
        make_token(),
        num_nodes=NODES,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        pipeline_depth=PIPE_DEPTH,
    )
    results["identity"]["cluster_dag_off_identical"] = (
        default_cluster.run_workload(items)[2].as_dict()
        == results["cluster"]["chain_heavy"][str(NODES)]["atomic"]
    )
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    # dag_scheduling=False is the historical path, bit for bit.
    assert results["identity"]["engine_dag_off_identical"]
    assert results["identity"]["engine_depth1_dag_identical"]
    assert results["identity"]["cluster_dag_off_identical"]
    for name, entry in results["engine"].items():
        # DAG-scheduled strictly beats chain-atomic makespan everywhere.
        assert entry["ratio"] > 1.0, (name, entry["ratio"])
        assert entry["pipelined_ratio"] > 1.0, (name, entry["pipelined_ratio"])
        # The structure the win comes from is real intra-component
        # parallelism, not accounting: components carry width >= 2 and
        # the critical-path totals shrink accordingly.
        assert entry["dag"]["max_dag_width"] >= 2, name
        assert entry["dag"]["dag_speedup"] > 1.0, name
        assert (
            entry["dag"]["dag_critical_ops"] < entry["dag"]["dag_chain_ops"]
        ), name
    # ... and decisively on the chain-heavy administrated-token mix.
    assert results["engine"]["chain_heavy"]["ratio"] >= 1.3, results[
        "engine"
    ]["chain_heavy"]["ratio"]
    for name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            assert comparison["ratio"] > 1.0, (name, nodes)
            # Component-granular dispatch really fanned units out.
            assert comparison["dag"]["units_dispatched"] > (
                comparison["dag"]["rounds"]
            ), (name, nodes)
            assert comparison["atomic"]["units_dispatched"] == 0


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E13: op-granular DAG scheduling vs chain-atomic components "
        f"({params['ops']} ops, {params['accounts']} accounts, "
        f"{params['lanes']} lanes, virtual time)",
        "",
        f"engine (window {params['window']}, barrier and pipelined "
        f"depth {params['pipeline_depth']}):",
        f"{'mix':>15} | {'atomic':>8} {'dag':>8} {'ratio':>6} | "
        f"{'piped':>8} {'piped+dag':>9} {'ratio':>6} | "
        f"{'width':>5} {'dag speedup':>11}",
    ]
    for name, entry in results["engine"].items():
        lines.append(
            f"{name:>15} | {entry['atomic']['virtual_time']:>8.1f} "
            f"{entry['dag']['virtual_time']:>8.1f} {entry['ratio']:>5.2f}x | "
            f"{entry['pipelined_atomic']['virtual_time']:>8.1f} "
            f"{entry['pipelined_dag']['virtual_time']:>9.1f} "
            f"{entry['pipelined_ratio']:>5.2f}x | "
            f"{entry['dag']['max_dag_width']:>5} "
            f"{entry['dag']['dag_speedup']:>10.2f}x"
        )
    lines.append("")
    lines.append(
        f"cluster ({params['nodes']} nodes, depth "
        f"{params['pipeline_depth']}, batch dispatch vs component units):"
    )
    for name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            lines.append(
                f"  {name:>15} n={nodes}: "
                f"atomic {comparison['atomic']['makespan']:>7.2f}  "
                f"dag {comparison['dag']['makespan']:>7.2f}  "
                f"({comparison['ratio']:.2f}x, "
                f"{comparison['dag']['units_dispatched']} units over "
                f"{comparison['dag']['rounds']} rounds)"
            )
    lines.append("")
    lines.append(
        "dag_scheduling=False bit-identical to the default path: "
        f"engine {results['identity']['engine_dag_off_identical']}, "
        f"depth-1 {results['identity']['engine_depth1_dag_identical']}, "
        f"cluster {results['identity']['cluster_dag_off_identical']}"
    )
    return lines


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_dag_scheduling(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=512), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E13_dag", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_dag.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=1200, help="ops per run")
    parser.add_argument(
        "--smoke", action="store_true", help="small, fast configuration"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_dag.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.ops < 1:
        parser.error("--ops must be >= 1")
    ops = 512 if args.smoke else args.ops
    results = measure(ops)
    check_claims(results)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print("\n".join(render_table(results)))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
