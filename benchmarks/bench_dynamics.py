"""E5 — the dynamic consensus number (Eqs. 11/12/14).

Tracks ``k(q) = max_a |σ_q(a)|`` along long random executions: the level
rises only at successful approvals (or at transfers that fund an account
with latent allowances — the Eq. 10 convention), falls as allowances are
consumed or revoked, and the certified consensus-number bounds follow it.
"""

from __future__ import annotations

from repro.analysis.hierarchy import token_consensus_number_bounds
from repro.analysis.partition import synchronization_level
from repro.analysis.reachability import (
    level_trajectory,
    verify_level_change_ops,
)
from repro.objects.erc20 import ERC20TokenType
from repro.workloads.generators import (
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
)


def trace_dynamics(n: int, ops: int, seed: int):
    token = ERC20TokenType(n, total_supply=5 * n)
    items = TokenWorkloadGenerator(
        n, seed=seed, mix=SPENDER_HEAVY_MIX, max_value=6
    ).generate(ops)
    invocations = [(item.pid, item.operation) for item in items]
    trajectory = level_trajectory(token, invocations)
    violations = verify_level_change_ops(token, invocations)
    return trajectory, violations


def test_level_trajectory(benchmark, write_table):
    def run():
        return trace_dynamics(n=6, ops=600, seed=42)

    trajectory, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    levels = [level for level, _ in trajectory]
    histogram: dict[int, int] = {}
    for level in levels:
        histogram[level] = histogram.get(level, 0) + 1
    rises = sum(1 for a, b in zip(levels, levels[1:]) if b > a)
    falls = sum(1 for a, b in zip(levels, levels[1:]) if b < a)

    lines = [
        "E5: synchronization level along 600 random operations (n=6)",
        f"level histogram: "
        + ", ".join(
            f"k={k}: {count}" for k, count in sorted(histogram.items())
        ),
        f"level rises: {rises}   level falls: {falls}",
        f"max level reached: {max(levels)}   min: {min(levels)}",
        f"rise-attribution violations (must be 0): {len(violations)}",
    ]
    assert not violations
    assert max(levels) > 1, "spender-heavy traffic must raise the level"
    assert rises > 0 and falls > 0
    write_table("E5_level_trajectory", lines)


def test_consensus_number_bounds_follow_state(benchmark, write_table):
    def run():
        token = ERC20TokenType(5, total_supply=10)
        rows = []
        state = token.initial_state()
        from repro.spec.operation import Operation

        script = [
            ("deploy", None, None),
            ("approve p1 (10)", 0, Operation("approve", (1, 10))),
            ("approve p2 (10)", 0, Operation("approve", (2, 10))),
            ("approve p3 (10)", 0, Operation("approve", (3, 10))),
            ("p1 spends all", 1, Operation("transferFrom", (0, 1, 10))),
        ]
        for label, pid, operation in script:
            if operation is not None:
                state, _ = token.apply(state, pid, operation)
            lower, upper = token_consensus_number_bounds(state)
            rows.append((label, synchronization_level(state), lower, upper))
        return rows

    rows = benchmark(run)
    lines = [
        "E5: certified consensus-number bounds along an escalation",
        f"{'after':<22} {'k(q)':>5} {'CN lower':>9} {'CN upper':>9}",
    ]
    for label, level, lower, upper in rows:
        lines.append(f"{label:<22} {level:>5} {lower:>9} {upper:>9}")
    # Deployment: CN = 1; escalation to 4; crash back down after the spend.
    assert rows[0][2:] == (1, 1)
    assert rows[3][1] == 4
    assert rows[-1][1] < 4
    write_table("E5_cn_bounds", lines)
