"""E5 — the dynamic consensus number (Eqs. 11/12/14).

Tracks ``k(q) = max_a |σ_q(a)|`` along long random executions: the level
rises only at successful approvals (or at transfers that fund an account
with latent allowances — the Eq. 10 convention), falls as allowances are
consumed or revoked, and the certified consensus-number bounds follow it.

Standalone (same contract as every gated bench)::

    PYTHONPATH=src python benchmarks/bench_dynamics.py --smoke \
        [--trace TRACE.json]

The analysis itself is pure state inspection — it replays the workload
through the sequential specification and reads ``σ_q`` off each state,
so there is no timeline of its own to trace.  ``--trace`` therefore
records the *representative execution* of the same spender-heavy mix:
the tiered engine (the shipped ``team_threshold``) actually synchronizing
the spender groups whose levels this experiment measures.
"""

from __future__ import annotations

import sys

from common import bench_main
from repro.analysis.hierarchy import token_consensus_number_bounds
from repro.analysis.partition import synchronization_level
from repro.analysis.reachability import (
    level_trajectory,
    verify_level_change_ops,
)
from repro.config import EngineConfig
from repro.engine import BatchExecutor
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import Operation
from repro.workloads.generators import (
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
)

N = 6
OPS = 600
SEED = 42


def trace_dynamics(n: int, ops: int, seed: int):
    token = ERC20TokenType(n, total_supply=5 * n)
    items = TokenWorkloadGenerator(
        n, seed=seed, mix=SPENDER_HEAVY_MIX, max_value=6
    ).generate(ops)
    invocations = [(item.pid, item.operation) for item in items]
    trajectory = level_trajectory(token, invocations)
    violations = verify_level_change_ops(token, invocations)
    return trajectory, violations


def measure_trajectory(ops: int) -> dict:
    trajectory, violations = trace_dynamics(n=N, ops=ops, seed=SEED)
    levels = [level for level, _ in trajectory]
    histogram: dict[str, int] = {}
    for level in levels:
        histogram[str(level)] = histogram.get(str(level), 0) + 1
    return {
        "histogram": histogram,
        "rises": sum(1 for a, b in zip(levels, levels[1:]) if b > a),
        "falls": sum(1 for a, b in zip(levels, levels[1:]) if b < a),
        "max_level": max(levels),
        "min_level": min(levels),
        "violations": len(violations),
    }


#: The CN-bounds escalation script: deploy, three approvals raising the
#: owner's enabled-spender set to k=4, then one spend draining it.
CN_SCRIPT = (
    ("deploy", None, None),
    ("approve p1 (10)", 0, ("approve", (1, 10))),
    ("approve p2 (10)", 0, ("approve", (2, 10))),
    ("approve p3 (10)", 0, ("approve", (3, 10))),
    ("p1 spends all", 1, ("transferFrom", (0, 1, 10))),
)


def measure_cn_script() -> list[dict]:
    token = ERC20TokenType(5, total_supply=10)
    state = token.initial_state()
    rows = []
    for label, pid, op in CN_SCRIPT:
        if op is not None:
            state, _ = token.apply(state, pid, Operation(op[0], op[1]))
        lower, upper = token_consensus_number_bounds(state)
        rows.append(
            {
                "after": label,
                "level": synchronization_level(state),
                "cn_lower": lower,
                "cn_upper": upper,
            }
        )
    return rows


def measure(ops: int) -> dict:
    return {
        "params": {"ops": ops, "accounts": N, "seed": SEED},
        "trajectory": measure_trajectory(ops),
        "cn_script": measure_cn_script(),
    }


def check_claims(results: dict) -> None:
    trajectory = results["trajectory"]
    assert trajectory["violations"] == 0
    assert trajectory["max_level"] > 1, (
        "spender-heavy traffic must raise the level"
    )
    assert trajectory["rises"] > 0 and trajectory["falls"] > 0
    rows = results["cn_script"]
    # Deployment: CN = 1; escalation to 4; crash back down after the spend.
    assert (rows[0]["cn_lower"], rows[0]["cn_upper"]) == (1, 1)
    assert rows[3]["level"] == 4
    assert rows[-1]["level"] < 4


def render_trajectory(results: dict) -> list[str]:
    trajectory = results["trajectory"]
    ops = results["params"]["ops"]
    return [
        f"E5: synchronization level along {ops} random operations "
        f"(n={results['params']['accounts']})",
        "level histogram: "
        + ", ".join(
            f"k={k}: {count}"
            for k, count in sorted(
                trajectory["histogram"].items(), key=lambda kv: int(kv[0])
            )
        ),
        f"level rises: {trajectory['rises']}   "
        f"level falls: {trajectory['falls']}",
        f"max level reached: {trajectory['max_level']}   "
        f"min: {trajectory['min_level']}",
        f"rise-attribution violations (must be 0): "
        f"{trajectory['violations']}",
    ]


def render_cn_script(rows: list[dict]) -> list[str]:
    lines = [
        "E5: certified consensus-number bounds along an escalation",
        f"{'after':<22} {'k(q)':>5} {'CN lower':>9} {'CN upper':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['after']:<22} {row['level']:>5} "
            f"{row['cn_lower']:>9} {row['cn_upper']:>9}"
        )
    return lines


def render_table(results: dict) -> list[str]:
    return (
        render_trajectory(results)
        + [""]
        + render_cn_script(results["cn_script"])
    )


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the level
    analysis replays pure states and has no timeline, so trace the
    tiered engine executing the *same* spender-heavy mix — the team
    lanes it spins up are the k-process synchronization the measured
    levels prescribe."""
    items = TokenWorkloadGenerator(
        N, seed=SEED, mix=SPENDER_HEAVY_MIX, max_value=6
    ).generate(ops)
    engine = BatchExecutor(
        ERC20TokenType(N, total_supply=5 * N),
        # Legacy base so the trace isolates the team lanes; the threshold
        # is the shipped default, not a restated literal.
        EngineConfig.legacy(
            num_lanes=4,
            window=64,
            seed=SEED,
            team_threshold=EngineConfig().team_threshold,
        ),
        tracer=tracer,
    )
    engine.run_workload(items)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_level_trajectory(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=OPS), rounds=1, iterations=1
    )
    trajectory = results["trajectory"]
    assert trajectory["violations"] == 0
    assert trajectory["max_level"] > 1
    assert trajectory["rises"] > 0 and trajectory["falls"] > 0
    write_table("E5_level_trajectory", render_trajectory(results))


def test_consensus_number_bounds_follow_state(benchmark, write_table):
    rows = benchmark(measure_cn_script)
    assert (rows[0]["cn_lower"], rows[0]["cn_upper"]) == (1, 1)
    assert rows[3]["level"] == 4
    assert rows[-1]["level"] < 4
    write_table("E5_cn_bounds", render_cn_script(rows))


# ---------------------------------------------------------------------------
# standalone smoke entry point (writes BENCH_dynamics.json; not CI-gated —
# the qualitative claims in check_claims are the contract here)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_dynamics.json",
        smoke_ops=OPS,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
        default_ops=OPS,
    )


if __name__ == "__main__":
    sys.exit(main())
