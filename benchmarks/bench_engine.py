"""E9 — the execution engine: throughput from the commute/conflict split.

Compares the commutativity-aware sharded executor (``repro.engine``)
against serial execution on identical workload mixes, in virtual time
(operation units + simulated consensus latency — the repository-wide
measurement philosophy; wall-clock threading would measure the GIL):

* **owner-only mix** (the consensus-number-1 regime): zero escalations —
  the whole workload runs conflict-free on parallel lanes, and the
  sharded engine must beat serial execution outright;
* **mixed / spender-heavy / approval-heavy mixes**: conflict rate,
  escalation rate and the consensus message bill grow with spender
  traffic (approve/transferFrom races, Theorem 3's Case 4);
* **hot-spot skew**: an exchange-wallet overlay concentrates traffic on
  two accounts, exercising hot-account splitting in the shard planner.

Every run re-validates the static fast-path classifier against the
semantic ``PairKind`` oracle (``validate=True`` raises on any soundness
violation) and the final state against the sequential specification.

Standalone (writes ``BENCH_engine.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_engine.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_backpressure, render_stats_table
from repro.engine import BatchExecutor
from repro.obs import TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadMix,
)

SEED = 23
ACCOUNTS = 64
WINDOW = 64
SERIAL_LANES = 1
SHARDED_LANES = 8

#: Read-mostly traffic: the engine's best case (reads of distinct accounts
#: all commute), and — under a hot-spot overlay — the showcase for the
#: planner's hot-account splitting.
READ_HEAVY_MIX = WorkloadMix(
    transfer=0.1,
    transfer_from=0.0,
    approve=0.0,
    balance_of=0.85,
    allowance=0.0,
    total_supply=0.05,
)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "read_heavy": READ_HEAVY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def run_engine(
    mix,
    lanes: int,
    ops: int,
    accounts: int = ACCOUNTS,
    hotspot_fraction: float = 0.0,
    validate: bool = True,
):
    """One engine run; returns ``(engine, stats)`` after checking the final
    state against the sequential specification."""
    token = ERC20TokenType(accounts, total_supply=100 * accounts)
    engine = BatchExecutor(
        token, num_lanes=lanes, window=WINDOW, validate=validate, seed=SEED
    )
    items = TokenWorkloadGenerator(
        accounts,
        seed=SEED,
        mix=mix,
        hotspot_fraction=hotspot_fraction,
        hotspot_accounts=2,
    ).generate(ops)
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = token.run(
        [(item.pid, item.operation) for item in items]
    )
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return engine, stats


def measure(ops: int) -> dict:
    """The full experiment: serial vs sharded per mix, plus hot-spot skew."""
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "serial_lanes": SERIAL_LANES,
            "sharded_lanes": SHARDED_LANES,
            "seed": SEED,
        },
        "mixes": {},
    }
    for name, mix in MIXES.items():
        serial_engine, serial = run_engine(mix, SERIAL_LANES, ops)
        sharded_engine, sharded = run_engine(mix, SHARDED_LANES, ops)
        classifier = sharded_engine.classifier.stats
        results["mixes"][name] = {
            "serial": {
                "throughput": serial.throughput,
                "virtual_time": serial.virtual_time,
            },
            "sharded": sharded.as_dict(),
            "speedup": (
                serial.virtual_time / sharded.virtual_time
                if sharded.virtual_time
                else 1.0
            ),
            "conflict_rate": (
                classifier.by_kind.get("conflict", 0) / classifier.pairs
                if classifier.pairs
                else 0.0
            ),
            "classifier": classifier.as_dict(),
        }
    # Hot-spot skew: contention knob on the conflict-free mixes.
    for mix_name, mix in (
        ("owner_only", OWNER_ONLY_MIX), ("read_heavy", READ_HEAVY_MIX)
    ):
        for fraction in (0.0, 0.6):
            engine, stats = run_engine(
                mix, SHARDED_LANES, ops, hotspot_fraction=fraction
            )
            results.setdefault("hotspot", {})[
                f"{mix_name}_fraction_{fraction}"
            ] = {
                "throughput": stats.throughput,
                "speedup": stats.speedup,
                "hot_account_waves": stats.hot_account_waves,
                "escalated_ops": stats.escalated_ops,
            }
    # Per-op commit latency (submit -> commit on the traced virtual
    # timeline), from a dedicated traced run of the sharded engine on
    # the default mix — the runs above stay untraced, so their stats
    # dicts are bit-identical with or without the observability layer.
    tracer = TraceRecorder()
    traced_run(ops, tracer)
    results["op_latency"] = {
        "sharded_engine": tracer.metrics.histogram("op_latency").summary()
    }
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    owner = results["mixes"]["owner_only"]
    # Sharded beats serial on the consensus-number-1 workload ...
    assert owner["speedup"] > 1.2, f"no speedup: {owner['speedup']:.2f}"
    # ... with zero consensus traffic.
    assert owner["sharded"]["escalated_ops"] == 0
    assert owner["sharded"]["escalation_messages"] == 0
    # Approval-heavy traffic pays for its races, and reports them.
    approval = results["mixes"]["approval_heavy"]
    assert approval["conflict_rate"] > 0.0
    assert approval["sharded"]["escalated_ops"] > 0
    assert approval["sharded"]["escalation_messages"] > 0
    # The static fast path was validated against the oracle on every pair
    # the engine acted on (validate=True would have raised otherwise).
    for name, mix_result in results["mixes"].items():
        assert mix_result["classifier"]["validated"] > 0, name


def render_table(results: dict) -> list[str]:
    lines = [
        "E9: commutativity-aware engine vs serial execution "
        f"({results['params']['ops']} ops, {ACCOUNTS} accounts, "
        f"{SHARDED_LANES} lanes, virtual time)",
    ]
    lines += render_stats_table(
        list(results["mixes"].items()),
        [
            ("serial op/t", "serial.throughput", ".3f"),
            ("sharded op/t", "sharded.throughput", ".3f"),
            ("speedup", "speedup", ".2f"),
            ("conflict%", "conflict_rate", ".2%"),
            ("escal%", "sharded.escalation_rate", ".2%"),
            ("msgs", "sharded.escalation_messages", "d"),
        ],
        label_header="mix",
        separators=(2,),
    )
    lines.append("")
    lines.append("hot-spot skew (2 hot accounts):")
    for key, r in results.get("hotspot", {}).items():
        lines.append(
            f"{key:>26} | throughput {r['throughput']:>7.3f} "
            f"speedup {r['speedup']:>5.2f} "
            f"hot-waves {r['hot_account_waves']:>4}"
        )
    latency = results["op_latency"]["sharded_engine"]
    lines.append("")
    lines.append(
        f"op commit latency (sharded engine, default mix): "
        f"p50 {latency['p50']:.2f}  p99 {latency['p99']:.2f}  "
        f"mean {latency['mean']:.2f}  over {latency['count']} ops"
    )
    rejected = sum(
        r["sharded"].get("rejected_ops", 0)
        for r in results["mixes"].values()
    )
    lines += render_backpressure(
        rejected, "submissions rejected by bounded mempools"
    )
    return lines


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the default
    mix on the sharded engine, spans and makespan attribution recorded."""
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    engine = BatchExecutor(
        token,
        num_lanes=SHARDED_LANES,
        window=WINDOW,
        seed=SEED,
        tracer=tracer,
    )
    items = TokenWorkloadGenerator(
        ACCOUNTS, seed=SEED, mix=WorkloadMix()
    ).generate(ops)
    engine.run_workload(items)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_engine_scaling(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=600), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E9_engine", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_engine.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_engine.json",
        smoke_ops=400,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
