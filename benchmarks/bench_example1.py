"""E1 — Example 1 (§4) and sequential-object throughput.

Regenerates the paper's worked trace (states q0..q4 with exact balances,
allowances, and responses) and benchmarks the sequential ERC20 object on
realistic random workloads.
"""

from __future__ import annotations

from repro.objects.erc20 import ERC20TokenType
from repro.workloads.generators import (
    EXAMPLE1_BALANCES,
    EXAMPLE1_RESPONSES,
    TokenWorkloadGenerator,
    example1_trace,
)


def replay_example1():
    token = ERC20TokenType(3, total_supply=10)
    state = token.initial_state()
    rows = []
    for index, item in enumerate(example1_trace()):
        state, response = token.apply(state, item.pid, item.operation)
        rows.append((index + 1, item.pid, str(item.operation), response, state))
    return rows


def test_example1_trace_matches_paper(benchmark, write_table):
    rows = benchmark(replay_example1)
    lines = [
        "E1: Example 1 trace (paper §4)",
        f"{'step':<6}{'caller':<8}{'operation':<28}{'resp':<7}balances",
    ]
    for step, pid, operation, response, state in rows:
        lines.append(
            f"q{step:<5}p{pid:<7}{operation:<28}{str(response):<7}"
            f"{list(state.balances)}"
        )
        assert response == EXAMPLE1_RESPONSES[step - 1]
        assert state.balances == EXAMPLE1_BALANCES[step - 1]
    final = rows[-1][4]
    lines.append(f"final allowance(Bob, Charlie) = {final.allowance(1, 2)}")
    assert final.allowance(1, 2) == 4
    write_table("E1_example1", lines)


def test_sequential_op_throughput(benchmark):
    """Raw Δ-application throughput of the sequential ERC20 object."""
    token = ERC20TokenType(10, total_supply=100)
    items = TokenWorkloadGenerator(10, seed=1).generate(1_000)
    invocations = [(item.pid, item.operation) for item in items]

    def apply_workload():
        state, _ = token.run(invocations)
        return state

    state = benchmark(apply_workload)
    assert state.total_supply == 100
