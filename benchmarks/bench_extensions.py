"""E7 — §6 extensions: consensus from ERC721 (NFT race) and ERC777
(operator race)."""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.erc721_consensus import erc721_consensus_system
from repro.protocols.erc777_consensus import erc777_consensus_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler


def sweep(system_factory, ks):
    rows = []
    for k in ks:
        proposals = {pid: f"v{pid}" for pid in range(k)}
        winners = set()
        for seed in range(15):
            result = run_system(
                system_factory(proposals), RandomScheduler(seed)
            )
            values = set(result.decisions.values())
            assert len(values) == 1
            winners |= values
        exhaustive = None
        if k <= 3:
            report = ScheduleExplorer(
                lambda p=proposals: system_factory(p)
            ).explore(checks=[consensus_checks(proposals)])
            assert report.ok
            exhaustive = report.configs
        rows.append((k, len(winners), exhaustive))
    return rows


def test_erc721_race(benchmark, write_table):
    rows = benchmark.pedantic(
        lambda: sweep(erc721_consensus_system, (1, 2, 3, 4, 6)),
        rounds=1,
        iterations=1,
    )
    lines = [
        "E7: ERC721 NFT race (winner via ownerOf)",
        f"{'k':>3} {'winners seen':>13} {'exhaustive configs':>19}",
    ]
    for k, winners, configs in rows:
        lines.append(
            f"{k:>3} {winners:>13} {str(configs) if configs else '-':>19}"
        )
    write_table("E7_erc721", lines)


def test_erc777_race(benchmark, write_table):
    rows = benchmark.pedantic(
        lambda: sweep(erc777_consensus_system, (1, 2, 3, 4, 6)),
        rounds=1,
        iterations=1,
    )
    lines = [
        "E7: ERC777 operator race (winner via target balances)",
        f"{'k':>3} {'winners seen':>13} {'exhaustive configs':>19}",
    ]
    for k, winners, configs in rows:
        lines.append(
            f"{k:>3} {winners:>13} {str(configs) if configs else '-':>19}"
        )
    write_table("E7_erc777", lines)


def test_erc1155_race(benchmark, write_table):
    from repro.protocols.erc1155_consensus import erc1155_consensus_system

    rows = benchmark.pedantic(
        lambda: sweep(erc1155_consensus_system, (1, 2, 3, 4)),
        rounds=1,
        iterations=1,
    )
    lines = [
        "E7: ERC1155 operator race (the §6 conjecture's lower bound)",
        f"{'k':>3} {'winners seen':>13} {'exhaustive configs':>19}",
    ]
    for k, winners, configs in rows:
        lines.append(
            f"{k:>3} {winners:>13} {str(configs) if configs else '-':>19}"
        )
    write_table("E7_erc1155", lines)


def test_erc721_round_latency(benchmark):
    proposals = {pid: pid for pid in range(4)}

    def one_round():
        return run_system(
            erc721_consensus_system(proposals), RandomScheduler(1)
        )

    result = benchmark(one_round)
    assert len(set(result.decisions.values())) == 1
