"""E11 — fault injection: lease-revocation fail-over under crash schedules.

Runs the same token workload through the 4-node cluster under a matrix of
deterministic fault schedules (:mod:`repro.faults`) — none, a permanent
crash, a crash+restart, a rolling restart cadence, and a crash under a
migrating flash-crowd hot-spot — and enforces the recovery contract:

* **zero committed-op loss** under every schedule (``ops_lost == 0`` and
  every response present);
* **serial equivalence** — state and responses of every faulted run equal
  the sequential specification, crash schedule or not;
* **free when armed** — recovery armed (``result_timeout`` set) with no
  fault firing reproduces the fault-free makespan exactly;
* **graceful degradation** — makespan grows with the number of crashed
  nodes, but stays within a small multiple of the fault-free run.

Crash instants are placed at fixed fractions of the fault-free makespan,
so the schedule scales with ``--ops`` while staying deterministic.

Standalone (writes ``BENCH_faults.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_backpressure, render_stats_table
from repro.cluster import TokenCluster
from repro.config import ClusterConfig, FaultConfig
from repro.objects.erc20 import ERC20TokenType
from repro.obs import TraceRecorder
from repro.workloads import (
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
    crash_cadence,
    flash_crowd,
)

SEED = 29
ACCOUNTS = 128
WINDOW = 96
LANES = 8
NODES = 4


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(ops: int):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=SEED, mix=CHAIN_HEAVY_MIX
    ).generate(ops)


def run_cluster(items, fault=None, timeout=None) -> TokenCluster:
    """One cluster run, serial-equivalence-checked against the spec —
    the check every *faulted* run must pass identically."""
    token = make_token()
    config = ClusterConfig(
        num_nodes=NODES,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        result_timeout=timeout,
        fault=fault if fault is not None else FaultConfig(),
    )
    cluster = TokenCluster(token, config=config)
    state, responses, _ = cluster.run_workload(items)
    ref_state, ref_responses = token.run(
        [(item.pid, item.operation) for item in items]
    )
    assert state == ref_state, "faulted run diverged from the spec"
    assert responses == ref_responses, "faulted responses diverged"
    return cluster


def measure(ops: int) -> dict:
    items = make_items(ops)

    # The fault-free reference pins the timeline every schedule is
    # placed on (and degradation measured against).
    reference = run_cluster(items)
    span = reference.stats.makespan
    timeout = max(10.0, 0.3 * span)

    schedules = {
        # Recovery armed, nothing fires: must cost nothing.
        "armed_idle": FaultConfig(),
        # One node dies and never comes back.
        "single_crash": FaultConfig(
            enabled=True, crashes=((1, 0.3 * span),)
        ),
        # One node dies and rejoins later (replay + shard rebalancing).
        # The bounce outlasts detection — envelope plus probe — so the
        # run shows a declared death AND a rejoin.
        "crash_restart": FaultConfig(
            enabled=True,
            crashes=((1, 0.3 * span, 0.3 * span + 8 * timeout),),
        ),
        # Every node bounces once, staggered.  Downtime is long enough
        # for the detector (whose deadline covers the victim's
        # outstanding-work envelope plus an unanswered liveness probe)
        # to declare the node dead and revoke before the restart races
        # it; a shorter bounce is healed by rejoin-replay alone, with no
        # revocation to observe.
        "rolling": FaultConfig(
            enabled=True,
            crashes=crash_cadence(
                NODES,
                start=0.2 * span,
                spacing=3.5 * timeout,
                downtime=3.5 * timeout,
            ),
        ),
    }

    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes_per_node": LANES,
            "nodes": NODES,
            "seed": SEED,
            "result_timeout": timeout,
        },
        "reference": {
            "makespan": reference.stats.makespan,
            "throughput": reference.stats.throughput,
        },
        "schedules": {},
        "availability": {},
        "flash_crowd": {},
    }

    for name, fault in schedules.items():
        stats = run_cluster(items, fault=fault, timeout=timeout).stats
        entry = stats.as_dict()
        entry["makespan_ratio"] = stats.makespan / span
        results["schedules"][name] = entry

    # Availability: makespan growth against the number of permanently
    # crashed nodes (0, 1, 2 of 4) — degradation, not collapse.
    for crashed in (0, 1, 2):
        crashes = tuple(
            (node + 1, (0.25 + 0.2 * node) * span) for node in range(crashed)
        )
        fault = FaultConfig(enabled=bool(crashes), crashes=crashes)
        stats = run_cluster(items, fault=fault, timeout=timeout).stats
        results["availability"][str(crashed)] = {
            "makespan": stats.makespan,
            "makespan_ratio": stats.makespan / span,
            "throughput": stats.throughput,
            "ops_lost": stats.ops_lost,
            "ops_replayed": stats.ops_replayed,
        }

    # The adversarial placement shape: a migrating hot-spot keeps
    # invalidating whatever the last revocation rebalanced, with a
    # crash+restart in the middle of it.
    crowd = flash_crowd(
        ACCOUNTS, ops, phases=4, hotspot_accounts=4, seed=SEED
    )
    crowd_ref = run_cluster(crowd)
    crowd_span = crowd_ref.stats.makespan
    stats = run_cluster(
        crowd,
        fault=FaultConfig(
            enabled=True,
            crashes=((2, 0.3 * crowd_span, 0.3 * crowd_span + 2 * timeout),),
        ),
        timeout=timeout,
    ).stats
    entry = stats.as_dict()
    entry["makespan_ratio"] = stats.makespan / crowd_span
    results["flash_crowd"] = entry
    return results


def check_claims(results: dict) -> None:
    """The recovery contract, enforced."""
    reference = results["reference"]
    entries = list(results["schedules"].values())
    entries.append(results["flash_crowd"])
    entries.extend(results["availability"].values())
    # Zero committed-op loss under every schedule.
    for entry in entries:
        assert entry["ops_lost"] == 0, entry
    # Recovery armed with no fault firing costs nothing: the makespan
    # reproduces the fault-free run exactly.
    armed = results["schedules"]["armed_idle"]
    assert armed["makespan"] == reference["makespan"], (
        armed["makespan"],
        reference["makespan"],
    )
    assert armed["ops_replayed"] == 0 and armed["revocations"] == 0
    # Crashes actually exercised the machinery.
    for name in ("single_crash", "crash_restart", "rolling"):
        entry = results["schedules"][name]
        assert entry["ops_replayed"] > 0, name
        assert entry["revocations"] > 0, name
    assert results["schedules"]["crash_restart"]["rejoins"] >= 1
    assert results["schedules"]["rolling"]["rejoins"] >= 1
    # Recovery makespan is bounded: attributable recovery time can never
    # exceed the run itself, and no schedule blows the run up by more
    # than a small multiple of the fault-free makespan.
    for entry in entries:
        assert entry.get("recovery_makespan", 0.0) <= entry["makespan"]
        if "makespan_ratio" in entry:
            assert entry["makespan_ratio"] < 8.0, entry["makespan_ratio"]
    # Availability degrades gracefully with the crash count: losing
    # nodes costs makespan, and losing more never gets meaningfully
    # cheaper than losing fewer.  (Strict monotonicity is too brittle —
    # discrete crash placement shifts which rounds pay the recovery.)
    ratios = [
        results["availability"][str(k)]["makespan_ratio"] for k in (0, 1, 2)
    ]
    assert ratios[0] == 1.0
    assert ratios[1] > 1.0 and ratios[2] > 1.0, ratios
    assert ratios[2] >= 0.85 * ratios[1], ratios


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E11: fail-over under fault schedules "
        f"({params['ops']} ops, {params['nodes']} nodes, "
        f"result_timeout {params['result_timeout']:.1f}, virtual time)",
    ]
    entries = list(results["schedules"].items())
    entries.append(("flash_crowd", results["flash_crowd"]))
    lines += render_stats_table(
        entries,
        [
            ("makespan", "makespan", ".2f"),
            ("x ref", "makespan_ratio", ".2f"),
            ("op/t", "throughput", ".3f"),
            ("replayed", "ops_replayed", "d"),
            ("revoked", "revocations", "d"),
            ("rejoins", "rejoins", "d"),
            ("recovery", "recovery_makespan", ".2f"),
            ("stale", "stale_messages", "d"),
        ],
        label_header="schedule",
        separators=(2,),
    )
    lines.append("")
    lines.append("availability vs permanently crashed nodes:")
    for crashed, entry in results["availability"].items():
        lines.append(
            f"  {crashed} crashed: makespan {entry['makespan']:>8.2f} "
            f"({entry['makespan_ratio']:.2f}x ref)  "
            f"throughput {entry['throughput']:>7.3f}  "
            f"replayed {entry['ops_replayed']:>3}  "
            f"lost {entry['ops_lost']}"
        )
    dropped = sum(
        entry.get("dropped_ops", 0)
        for entry in list(results["schedules"].values())
        + [results["flash_crowd"]]
    )
    lines += render_backpressure(
        dropped, "ops dropped at the router's admission edge"
    )
    return lines


def traced_run(ops: int, tracer: TraceRecorder) -> None:
    """The representative traced configuration (``--trace``): the
    crash+restart schedule, so the trace carries the ``faults`` track
    (crash / declared-dead / revoke / rejoin instants) and per-node
    recovery spans that ``critical_path_report`` attributes exactly."""
    items = make_items(ops)
    reference = run_cluster(items)
    span = reference.stats.makespan
    timeout = max(10.0, 0.3 * span)
    token = make_token()
    config = ClusterConfig(
        num_nodes=NODES,
        lanes_per_node=LANES,
        window=WINDOW,
        seed=SEED,
        result_timeout=timeout,
        fault=FaultConfig(
            enabled=True,
            crashes=((1, 0.3 * span, 0.3 * span + 2 * timeout),),
        ),
    )
    TokenCluster(token, config=config, tracer=tracer).run_workload(items)


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_fault_schedules(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=600), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E11_faults", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_faults.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_faults.json",
        smoke_ops=512,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
