"""E6 — the k-AT baseline: CN(k-AT) = k (Guerraoui et al. [16]).

The race construction for the owners of a k-shared account, swept over k,
with exhaustive verification for small k — the object the paper positions
ERC20 tokens against.

This bench (like the other pure known-answer/exhaustive-verification
benches: algorithm1/2, theorem3, valency, example1, ablation,
extensions) deliberately stays a pytest-only entry point without the
``common.bench_main`` CLI: its work is schedule exploration over
protocol states, which has no virtual-time execution timeline — there
is nothing for ``--trace`` to record, and its pass/fail claims are
exact, so there is no JSON for the regression gate to band-check.
"""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.kat_consensus import kat_consensus_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler


def test_kat_sweep(benchmark, write_table):
    def sweep():
        rows = []
        for k in (1, 2, 3, 4, 6, 8):
            proposals = {pid: f"v{pid}" for pid in range(k)}
            winners = set()
            steps = 0
            for seed in range(20):
                result = run_system(
                    kat_consensus_system(proposals), RandomScheduler(seed)
                )
                values = set(result.decisions.values())
                assert len(values) == 1
                winners |= values
                steps = max(steps, max(r.steps_taken for r in result.runners))
            rows.append((k, steps, len(winners)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "E6: consensus from k-shared asset transfer",
        f"{'k':>3} {'steps/proc':>11} {'winners seen':>13}",
    ]
    for k, steps, winners in rows:
        lines.append(f"{k:>3} {steps:>11} {winners:>13}")
        assert steps <= k + 3  # write + transfer + <=k scans + read
    write_table("E6_kat_sweep", lines)


def test_kat_exhaustive(benchmark, write_table):
    def explore():
        results = []
        for k, crash_budget in ((2, 0), (2, 1), (3, 0)):
            proposals = {pid: pid for pid in range(k)}
            report = ScheduleExplorer(
                lambda p=proposals: kat_consensus_system(p),
                crash_budget=crash_budget,
            ).explore(checks=[consensus_checks(proposals)])
            assert report.ok
            results.append((k, crash_budget, report))
        return results

    results = benchmark.pedantic(explore, rounds=1, iterations=1)
    lines = [
        "E6: k-AT consensus, exhaustive",
        f"{'k':>3} {'crashes':>8} {'configs':>9} {'violations':>11}",
    ]
    for k, crash_budget, report in results:
        lines.append(
            f"{k:>3} {crash_budget:>8} {report.configs:>9} "
            f"{len(report.violations):>11}"
        )
    write_table("E6_kat_exhaustive", lines)


def test_kat_single_round_latency(benchmark):
    proposals = {pid: pid for pid in range(4)}

    def one_round():
        return run_system(kat_consensus_system(proposals), RandomScheduler(3))

    result = benchmark(one_round)
    assert len(set(result.decisions.values())) == 1
