"""E8 — the scalability claim (§1/§7): total-order ledger vs the dynamic
per-account synchronization network on identical workloads.

Three tables:

* **owner-only traffic** (the consensus-number-1 regime): sweep the node
  count ``n``; the dynamic network's latency stays flat while the global
  sequencer queues;
* **mixed traffic**: add approvals and transferFrom (group coordination);
* **group-size sweep**: transferFrom cost as a function of ``k`` — the
  coordination the theory prescribes grows with the spender group, not with
  the network.
"""

from __future__ import annotations

import random

from repro.dynamic.dynamic_token import (
    DynamicTokenNode,
    assert_converged,
    measure_dynamic,
)
from repro.ledger.blockchain import build_ledger, measure_ledger
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import Operation

OPS = 60
SEED = 17


def owner_traffic(n: int, ops: int, seed: int):
    rng = random.Random(seed)
    return [
        ("transfer", rng.randrange(n), (rng.randrange(n), rng.randint(1, 3)))
        for _ in range(ops)
    ]


def mixed_traffic(n: int, ops: int, seed: int):
    rng = random.Random(seed)
    traffic = [("approve", a, ((a + 1) % n, 30)) for a in range(n)]
    for _ in range(ops):
        actor = rng.randrange(n)
        if rng.random() < 0.35:
            traffic.append(
                (
                    "transferFrom",
                    actor,
                    ((actor - 1) % n, rng.randrange(n), rng.randint(1, 2)),
                )
            )
        else:
            traffic.append(
                ("transfer", actor, (rng.randrange(n), rng.randint(1, 3)))
            )
    return traffic


def run_dynamic(n: int, traffic, seed: int):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = [DynamicTokenNode(i, network, n, supply=100 * n) for i in range(n)]
    for dest in range(1, n):
        nodes[0].submit_transfer(dest, 100)
    simulator.run()
    for kind, actor, args in traffic:
        getattr(
            nodes[actor],
            {
                "transfer": "submit_transfer",
                "approve": "submit_approve",
                "transferFrom": "submit_transfer_from",
            }[kind],
        )(*args)
    simulator.run()
    assert_converged(nodes)
    return measure_dynamic(nodes)


def run_ledger(n: int, traffic, seed: int, max_batch: int):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = build_ledger(
        network, n, ERC20TokenType(n, total_supply=100 * n), max_batch=max_batch
    )
    submissions = {}
    for dest in range(1, n):
        tx = nodes[0].submit_operation(0, Operation("transfer", (dest, 100)))
        submissions[tx] = simulator.now
    for kind, actor, args in traffic:
        tx = nodes[actor].submit_operation(actor, Operation(kind, args))
        submissions[tx] = simulator.now
    simulator.run()
    states = {node.token_state for node in nodes}
    assert len(states) == 1
    return measure_ledger(nodes, submissions)


def test_owner_only_scaling(benchmark, write_table):
    def sweep():
        rows = []
        for n in (4, 7, 10):
            traffic = owner_traffic(n, OPS, SEED)
            dynamic = run_dynamic(n, traffic, SEED)
            unbatched = run_ledger(n, traffic, SEED, max_batch=1)
            batched = run_ledger(n, traffic, SEED, max_batch=64)
            rows.append((n, dynamic, unbatched, batched))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"E8a: owner-only traffic ({OPS} transfers), latency in simulated ms",
        f"{'n':>3} | {'dyn msg/op':>10} {'dyn mean':>9} {'dyn p99':>8} | "
        f"{'led1 msg/op':>11} {'led1 mean':>10} | "
        f"{'led64 msg/op':>12} {'led64 mean':>10}",
    ]
    for n, dynamic, unbatched, batched in rows:
        lines.append(
            f"{n:>3} | {dynamic.messages_per_op:>10.1f} "
            f"{dynamic.mean_latency:>9.2f} {dynamic.p99_latency:>8.2f} | "
            f"{unbatched.messages_per_op:>11.1f} "
            f"{unbatched.mean_latency:>10.2f} | "
            f"{batched.messages_per_op:>12.1f} {batched.mean_latency:>10.2f}"
        )
        # The paper's qualitative claim: no global sequencer -> the dynamic
        # network's latency beats per-op consensus by a growing margin.
        assert dynamic.mean_latency < unbatched.mean_latency
        assert dynamic.mean_latency < batched.mean_latency
    write_table("E8a_owner_only", lines)


def test_mixed_traffic(benchmark, write_table):
    def sweep():
        rows = []
        for n in (4, 7, 10):
            traffic = mixed_traffic(n, OPS, SEED)
            dynamic = run_dynamic(n, traffic, SEED)
            unbatched = run_ledger(n, traffic, SEED, max_batch=1)
            rows.append((n, dynamic, unbatched))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "E8b: mixed traffic (35% transferFrom through spender groups)",
        f"{'n':>3} | {'dyn msg/op':>10} {'dyn mean':>9} | "
        f"{'ledger msg/op':>13} {'ledger mean':>11}",
    ]
    for n, dynamic, unbatched in rows:
        lines.append(
            f"{n:>3} | {dynamic.messages_per_op:>10.1f} "
            f"{dynamic.mean_latency:>9.2f} | "
            f"{unbatched.messages_per_op:>13.1f} "
            f"{unbatched.mean_latency:>11.2f}"
        )
        assert dynamic.mean_latency < unbatched.mean_latency
    write_table("E8b_mixed", lines)


def test_group_size_sweep(benchmark, write_table):
    """transferFrom cost as a function of the spender-group size k, at fixed
    network size: the extra messages are 2(k-1), independent of n."""

    def sweep():
        n = 10
        rows = []
        for k in (1, 2, 3, 4, 5):
            simulator = Simulator()
            network = Network(simulator, UniformLatency(0.5, 1.5), seed=SEED)
            nodes = [
                DynamicTokenNode(i, network, n, supply=1000) for i in range(n)
            ]
            # k enabled spenders on account 0: owner + (k-1) approved.
            for spender in range(1, k):
                nodes[0].submit_approve(spender, 100)
            simulator.run()
            if k == 1:
                # transferFrom needs an allowance; measure the owner's
                # degenerate self-allowance path.
                nodes[0].submit_approve(0, 100)
                simulator.run()
            before = network.stats.messages_sent
            actor = 1 if k > 1 else 0
            record = nodes[actor].submit_transfer_from(0, 2, 5)
            simulator.run()
            messages = network.stats.messages_sent - before
            assert record.response is True
            rows.append((k, messages, record.latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "E8c: one transferFrom at n=10, sweeping the spender-group size k",
        f"{'k':>3} {'messages':>9} {'latency':>9}",
    ]
    for k, messages, latency in rows:
        lines.append(f"{k:>3} {messages:>9} {latency:>9.2f}")
    # Group coordination grows with k ...
    assert rows[-1][1] > rows[1][1]
    # ... but stays a small additive term over the BRB dissemination.
    assert rows[-1][1] - rows[1][1] <= 3 * 2 * (5 - 2)
    write_table("E8c_group_sweep", lines)
