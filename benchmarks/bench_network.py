"""E8 — the scalability claim (§1/§7): total-order ledger vs the dynamic
per-account synchronization network on identical workloads.

Three tables:

* **owner-only traffic** (the consensus-number-1 regime): sweep the node
  count ``n``; the dynamic network's latency stays flat while the global
  sequencer queues;
* **mixed traffic**: add approvals and transferFrom (group coordination);
* **group-size sweep**: transferFrom cost as a function of ``k`` — the
  coordination the theory prescribes grows with the spender group, not with
  the network.

Standalone (same contract as every gated bench)::

    PYTHONPATH=src python benchmarks/bench_network.py --smoke \
        [--trace TRACE.json]

``--trace`` records the dynamic network's client-side view: each
operation becomes a zero-length span at its completion instant whose
``network`` stall is exactly the submit→apply flight time — concurrent
in-flight operations overlap freely (this is a client observation, not
lane occupancy), and the critical-path attribution still partitions the
makespan because the walk only follows one chain backward.
"""

from __future__ import annotations

import random
import sys
from dataclasses import asdict

from common import bench_main
from repro.dynamic.dynamic_token import (
    DynamicTokenNode,
    assert_converged,
    measure_dynamic,
)
from repro.ledger.blockchain import build_ledger, measure_ledger
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import Operation

OPS = 60
SEED = 17
NODE_COUNTS = (4, 7, 10)
GROUP_SIZES = (1, 2, 3, 4, 5)


def owner_traffic(n: int, ops: int, seed: int):
    rng = random.Random(seed)
    return [
        ("transfer", rng.randrange(n), (rng.randrange(n), rng.randint(1, 3)))
        for _ in range(ops)
    ]


def mixed_traffic(n: int, ops: int, seed: int):
    rng = random.Random(seed)
    traffic = [("approve", a, ((a + 1) % n, 30)) for a in range(n)]
    for _ in range(ops):
        actor = rng.randrange(n)
        if rng.random() < 0.35:
            traffic.append(
                (
                    "transferFrom",
                    actor,
                    ((actor - 1) % n, rng.randrange(n), rng.randint(1, 2)),
                )
            )
        else:
            traffic.append(
                ("transfer", actor, (rng.randrange(n), rng.randint(1, 3)))
            )
    return traffic


def _build_dynamic(n: int, traffic, seed: int):
    """Run one dynamic-network workload; returns the quiesced nodes."""
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = [DynamicTokenNode(i, network, n, supply=100 * n) for i in range(n)]
    for dest in range(1, n):
        nodes[0].submit_transfer(dest, 100)
    simulator.run()
    for kind, actor, args in traffic:
        getattr(
            nodes[actor],
            {
                "transfer": "submit_transfer",
                "approve": "submit_approve",
                "transferFrom": "submit_transfer_from",
            }[kind],
        )(*args)
    simulator.run()
    assert_converged(nodes)
    return nodes


def run_dynamic(n: int, traffic, seed: int):
    return measure_dynamic(_build_dynamic(n, traffic, seed))


def run_ledger(n: int, traffic, seed: int, max_batch: int):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = build_ledger(
        network, n, ERC20TokenType(n, total_supply=100 * n), max_batch=max_batch
    )
    submissions = {}
    for dest in range(1, n):
        tx = nodes[0].submit_operation(0, Operation("transfer", (dest, 100)))
        submissions[tx] = simulator.now
    for kind, actor, args in traffic:
        tx = nodes[actor].submit_operation(actor, Operation(kind, args))
        submissions[tx] = simulator.now
    simulator.run()
    states = {node.token_state for node in nodes}
    assert len(states) == 1
    return measure_ledger(nodes, submissions)


# ---------------------------------------------------------------------------
# the three measured sections (shared by pytest and the standalone path)
# ---------------------------------------------------------------------------


def measure_owner_only(ops: int) -> dict:
    section = {}
    for n in NODE_COUNTS:
        traffic = owner_traffic(n, ops, SEED)
        section[str(n)] = {
            "dynamic": asdict(run_dynamic(n, traffic, SEED)),
            "ledger_unbatched": asdict(
                run_ledger(n, traffic, SEED, max_batch=1)
            ),
            "ledger_batched": asdict(
                run_ledger(n, traffic, SEED, max_batch=64)
            ),
        }
    return section


def measure_mixed(ops: int) -> dict:
    section = {}
    for n in NODE_COUNTS:
        traffic = mixed_traffic(n, ops, SEED)
        section[str(n)] = {
            "dynamic": asdict(run_dynamic(n, traffic, SEED)),
            "ledger_unbatched": asdict(
                run_ledger(n, traffic, SEED, max_batch=1)
            ),
        }
    return section


def measure_group_sweep() -> dict:
    """transferFrom cost as a function of the spender-group size k, at
    fixed network size: the extra messages are 2(k-1), independent of n."""
    n = 10
    section = {}
    for k in GROUP_SIZES:
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=SEED)
        nodes = [
            DynamicTokenNode(i, network, n, supply=1000) for i in range(n)
        ]
        # k enabled spenders on account 0: owner + (k-1) approved.
        for spender in range(1, k):
            nodes[0].submit_approve(spender, 100)
        simulator.run()
        if k == 1:
            # transferFrom needs an allowance; measure the owner's
            # degenerate self-allowance path.
            nodes[0].submit_approve(0, 100)
            simulator.run()
        before = network.stats.messages_sent
        actor = 1 if k > 1 else 0
        record = nodes[actor].submit_transfer_from(0, 2, 5)
        simulator.run()
        messages = network.stats.messages_sent - before
        assert record.response is True
        section[str(k)] = {
            "messages": messages,
            "latency": record.latency,
        }
    return section


def measure(ops: int) -> dict:
    return {
        "params": {"ops": ops, "nodes": list(NODE_COUNTS), "seed": SEED},
        "owner_only": measure_owner_only(ops),
        "mixed": measure_mixed(ops),
        "group_sweep": measure_group_sweep(),
    }


def check_claims(results: dict) -> None:
    """The paper's qualitative claims, enforced on every run."""
    for n, entry in results["owner_only"].items():
        # No global sequencer -> the dynamic network's latency beats
        # per-op consensus at every network size.
        dynamic = entry["dynamic"]["mean_latency"]
        assert dynamic < entry["ledger_unbatched"]["mean_latency"], n
        assert dynamic < entry["ledger_batched"]["mean_latency"], n
    for n, entry in results["mixed"].items():
        assert (
            entry["dynamic"]["mean_latency"]
            < entry["ledger_unbatched"]["mean_latency"]
        ), n
    sweep = results["group_sweep"]
    k_lo, k_hi = str(GROUP_SIZES[1]), str(GROUP_SIZES[-1])
    # Group coordination grows with k ...
    assert sweep[k_hi]["messages"] > sweep[k_lo]["messages"]
    # ... but stays a small additive term over the BRB dissemination.
    assert sweep[k_hi]["messages"] - sweep[k_lo]["messages"] <= 3 * 2 * (
        GROUP_SIZES[-1] - 2
    )


def render_owner_only(section: dict, ops: int) -> list[str]:
    lines = [
        f"E8a: owner-only traffic ({ops} transfers), latency in simulated ms",
        f"{'n':>3} | {'dyn msg/op':>10} {'dyn mean':>9} {'dyn p99':>8} | "
        f"{'led1 msg/op':>11} {'led1 mean':>10} | "
        f"{'led64 msg/op':>12} {'led64 mean':>10}",
    ]
    for n, entry in section.items():
        dynamic = entry["dynamic"]
        unbatched = entry["ledger_unbatched"]
        batched = entry["ledger_batched"]
        lines.append(
            f"{n:>3} | {dynamic['messages_per_op']:>10.1f} "
            f"{dynamic['mean_latency']:>9.2f} "
            f"{dynamic['p99_latency']:>8.2f} | "
            f"{unbatched['messages_per_op']:>11.1f} "
            f"{unbatched['mean_latency']:>10.2f} | "
            f"{batched['messages_per_op']:>12.1f} "
            f"{batched['mean_latency']:>10.2f}"
        )
    return lines


def render_mixed(section: dict) -> list[str]:
    lines = [
        "E8b: mixed traffic (35% transferFrom through spender groups)",
        f"{'n':>3} | {'dyn msg/op':>10} {'dyn mean':>9} | "
        f"{'ledger msg/op':>13} {'ledger mean':>11}",
    ]
    for n, entry in section.items():
        dynamic = entry["dynamic"]
        unbatched = entry["ledger_unbatched"]
        lines.append(
            f"{n:>3} | {dynamic['messages_per_op']:>10.1f} "
            f"{dynamic['mean_latency']:>9.2f} | "
            f"{unbatched['messages_per_op']:>13.1f} "
            f"{unbatched['mean_latency']:>11.2f}"
        )
    return lines


def render_group_sweep(section: dict) -> list[str]:
    lines = [
        "E8c: one transferFrom at n=10, sweeping the spender-group size k",
        f"{'k':>3} {'messages':>9} {'latency':>9}",
    ]
    for k, entry in section.items():
        lines.append(
            f"{k:>3} {entry['messages']:>9} {entry['latency']:>9.2f}"
        )
    return lines


def render_table(results: dict) -> list[str]:
    ops = results["params"]["ops"]
    return (
        render_owner_only(results["owner_only"], ops)
        + [""]
        + render_mixed(results["mixed"])
        + [""]
        + render_group_sweep(results["group_sweep"])
    )


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the
    dynamic network at n=7 on mixed traffic, traced from the client's
    seat.  Each completed operation becomes a zero-length chained span
    at its apply instant whose ``network`` stall is the exact
    submit→apply flight time (``OpRecord.latency``), on a per-node
    client track — in-flight operations overlap, which is truthful
    (these are concurrent observations, not lane occupancy), and the
    per-op lifecycle records the same interval as submit→commit."""
    n = NODE_COUNTS[1]
    nodes = _build_dynamic(n, mixed_traffic(n, ops, SEED), SEED)
    for node in nodes:
        for record in sorted(
            node.records.values(), key=lambda r: r.op_id
        ):
            if record.latency is None:
                continue
            tracer.op_submit(record.op_id, record.submitted_at)
            tracer.op_commit(record.op_id, record.completed_at)
            tracer.span(
                f"client.n{node.node_id}",
                record.kind,
                "network",
                record.completed_at,
                record.completed_at,
                stalls=(("network", record.latency),),
                args={"op": record.op_id, "ok": bool(record.response)},
            )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_owner_only_scaling(benchmark, write_table):
    section = benchmark.pedantic(
        lambda: measure_owner_only(OPS), rounds=1, iterations=1
    )
    for entry in section.values():
        assert (
            entry["dynamic"]["mean_latency"]
            < entry["ledger_unbatched"]["mean_latency"]
        )
        assert (
            entry["dynamic"]["mean_latency"]
            < entry["ledger_batched"]["mean_latency"]
        )
    write_table("E8a_owner_only", render_owner_only(section, OPS))


def test_mixed_traffic(benchmark, write_table):
    section = benchmark.pedantic(
        lambda: measure_mixed(OPS), rounds=1, iterations=1
    )
    for entry in section.values():
        assert (
            entry["dynamic"]["mean_latency"]
            < entry["ledger_unbatched"]["mean_latency"]
        )
    write_table("E8b_mixed", render_mixed(section))


def test_group_size_sweep(benchmark, write_table):
    section = benchmark.pedantic(
        measure_group_sweep, rounds=1, iterations=1
    )
    k_lo, k_hi = str(GROUP_SIZES[1]), str(GROUP_SIZES[-1])
    assert section[k_hi]["messages"] > section[k_lo]["messages"]
    assert section[k_hi]["messages"] - section[k_lo]["messages"] <= (
        3 * 2 * (GROUP_SIZES[-1] - 2)
    )
    write_table("E8c_group_sweep", render_group_sweep(section))


# ---------------------------------------------------------------------------
# standalone smoke entry point (writes BENCH_network.json; not CI-gated —
# the qualitative claims in check_claims are the contract here)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_network.json",
        smoke_ops=40,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
        default_ops=OPS,
    )


if __name__ == "__main__":
    sys.exit(main())
