"""E12 — cross-round pipelining: retiring the global round barrier.

The barrier engine and cluster pay a *global round barrier*: window N+1
waits for every lane and every node to finish window N.  Cross-round
pipelining (:mod:`repro.engine.pipeline`, the pipelined router of
:mod:`repro.cluster`) replaces the barrier with per-account frontier
dependencies: an operation of window N+1 starts once every earlier
component touching its footprint has committed, and the shared
synchronization lanes overlap with execution instead of extending every
round.  This experiment measures, in virtual time, what that buys:

* **engine**: barrier vs pipelined virtual-time makespan per workload
  mix and pipeline depth, with stall attribution (sync vs frontier);
* **cluster**: barrier vs pipelined makespan at >= 4 nodes on the
  OWNER_ONLY and APPROVAL_HEAVY mixes — the headline: the pipelined
  cluster is strictly faster on both, and stall time concentrates on the
  contended components (per escalated op, stall is an order of magnitude
  above the uncontended traffic's);
* **identity**: ``pipeline_depth=1`` reproduces the historical barrier
  executor and cluster bit for bit (stats dictionaries compared).

The A/B runs pin every other knob to the ``legacy()`` preset so the
comparison isolates pipelining; a separate **default vs legacy()**
section shows what the no-knobs default construction (every fast path
on) buys over the pre-flip engine on the contended mix.

Every run is checked for serial equivalence against the sequential
specification.

Standalone (writes ``BENCH_pipeline.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_identity, render_stats_table
from repro.cluster import ClusterConfig, TokenCluster
from repro.config import EngineConfig
from repro.obs import TraceRecorder
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
)

SEED = 23
ACCOUNTS = 256
WINDOW = 128
LANES = 8
NODE_COUNTS = (4, 8)
DEPTHS = (2, 3, 4)
#: The depth the cluster headline comparison uses.
CLUSTER_DEPTH = 3

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
    "spender_heavy": SPENDER_HEAVY_MIX,
}


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(mix, ops: int):
    return TokenWorkloadGenerator(ACCOUNTS, seed=SEED, mix=mix).generate(ops)


def serial_reference(items):
    return make_token().run([(item.pid, item.operation) for item in items])


def run_engine(items, depth: int | None) -> dict:
    """One engine run on the legacy base (barrier when ``depth`` is
    None) so the A/B isolates pipelining, spec-checked."""
    config = EngineConfig.legacy(
        num_lanes=LANES,
        window=WINDOW,
        seed=SEED,
        pipeline_depth=1 if depth is None else depth,
    )
    if depth is None:
        engine = BatchExecutor(make_token(), config)
    else:
        engine = PipelinedExecutor(make_token(), config)
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_default_engine(items, legacy: bool) -> dict:
    """A no-knobs pipelined engine — every fast-path default in effect —
    or the same structural parameters pinned to the ``legacy()`` preset.
    The default-vs-legacy headline comparison, spec-checked."""
    preset = EngineConfig.legacy if legacy else EngineConfig
    engine = PipelinedExecutor(
        make_token(), preset(num_lanes=LANES, window=WINDOW, seed=SEED)
    )
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_cluster(items, nodes: int, depth: int) -> dict:
    """One cluster run on the legacy base, spec-checked; adds the node
    sync-wait total."""
    cluster = TokenCluster(
        make_token(),
        ClusterConfig.legacy(
            num_nodes=nodes,
            lanes_per_node=LANES,
            window=WINDOW,
            seed=SEED,
            pipeline_depth=depth,
        ),
    )
    state, responses, stats = cluster.run_workload(items)
    ref_state, ref_responses = serial_reference(items)
    assert state == ref_state, "cluster diverged from the sequential spec"
    assert responses == ref_responses, "cluster responses diverged"
    summary = stats.as_dict()
    summary["sync_wait_time"] = sum(
        bill.sync_wait_time for bill in stats.node_bills
    )
    return summary


def measure(ops: int) -> dict:
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes": LANES,
            "node_counts": list(NODE_COUNTS),
            "depths": list(DEPTHS),
            "cluster_depth": CLUSTER_DEPTH,
            "seed": SEED,
        },
        "engine": {},
        "cluster": {},
        "identity": {},
    }

    for name, mix in MIXES.items():
        items = make_items(mix, ops)
        barrier = run_engine(items, None)
        entry = {"barrier": barrier, "pipelined": {}}
        for depth in DEPTHS:
            entry["pipelined"][str(depth)] = run_engine(items, depth)
        results["engine"][name] = entry

    # Bit-for-bit identity of the depth-1 path with the barrier path,
    # checked on the contended mix (stats dictionaries compared whole).
    items = make_items(APPROVAL_HEAVY_MIX, ops)
    results["identity"]["engine_depth1_identical"] = (
        run_engine(items, 1) == results["engine"]["approval_heavy"]["barrier"]
    )

    for name in ("owner_only", "approval_heavy"):
        items = make_items(MIXES[name], ops)
        entry: dict = {}
        for nodes in NODE_COUNTS:
            barrier = run_cluster(items, nodes, 1)
            piped = run_cluster(items, nodes, CLUSTER_DEPTH)
            entry[str(nodes)] = {
                "barrier": barrier,
                "pipelined": piped,
                "makespan_ratio": barrier["makespan"] / piped["makespan"],
            }
        results["cluster"][name] = entry

    items = make_items(APPROVAL_HEAVY_MIX, ops)
    results["identity"]["cluster_depth1_identical"] = (
        run_cluster(items, 4, 1)
        == results["cluster"]["approval_heavy"]["4"]["barrier"]
    )

    # The flip's headline: a no-knobs default construction (DAG
    # scheduling + pipelining + team lanes + lane GC all on) strictly
    # beats the legacy() preset on the contended mix, same structural
    # parameters.
    fast = run_default_engine(items, legacy=False)
    slow = run_default_engine(items, legacy=True)
    results["default_vs_legacy"] = {
        "approval_heavy": {
            "default": fast,
            "legacy": slow,
            "speedup": slow["virtual_time"] / fast["virtual_time"],
        }
    }

    # Per-op commit latency (submit -> commit on the traced virtual
    # timeline), from a dedicated traced run of the pipelined engine at
    # the headline depth — the runs above stay untraced, so their stats
    # dicts are bit-identical with or without the observability layer.
    tracer = TraceRecorder()
    engine = PipelinedExecutor(
        make_token(),
        pipeline_depth=CLUSTER_DEPTH,
        num_lanes=LANES,
        window=WINDOW,
        seed=SEED,
        tracer=tracer,
    )
    engine.run_workload(make_items(APPROVAL_HEAVY_MIX, ops))
    results["op_latency"] = {
        "pipelined_engine": tracer.metrics.histogram("op_latency").summary()
    }
    return results


def stall_concentration(cluster_entry: dict) -> tuple[float, float]:
    """(stall per escalated op, stall per uncontended op) for one run.

    Contended stall = the sync-lane wait the nodes actually paid plus the
    frontier-gate stall on nodes executing sync-ordered components;
    uncontended stall = the remaining frontier-gate stall.
    """
    piped = cluster_entry["pipelined"]
    escalated = piped["escalated_ops"]
    rest = piped["ops_executed"] - escalated
    contended = (
        piped["sync_wait_time"] + piped["frontier_stall_time_contended"]
    )
    uncontended = (
        piped["frontier_stall_time"] - piped["frontier_stall_time_contended"]
    )
    per_escalated = contended / escalated if escalated else 0.0
    per_uncontended = uncontended / rest if rest else 0.0
    return per_escalated, per_uncontended


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    # pipeline_depth=1 is the historical barrier path, bit for bit.
    assert results["identity"]["engine_depth1_identical"]
    assert results["identity"]["cluster_depth1_identical"]
    # The pipelined cluster beats the barrier cluster in virtual-time
    # makespan on OWNER_ONLY and APPROVAL_HEAVY at every node count >= 4.
    for mix_name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            assert comparison["makespan_ratio"] > 1.0, (
                mix_name,
                nodes,
                comparison["makespan_ratio"],
            )
    # ... and decisively on the contended mix (sync overlaps execution).
    assert results["cluster"]["approval_heavy"]["4"]["makespan_ratio"] > 1.25
    # The engine sheds the barrier too where synchronization dominates.
    approval = results["engine"]["approval_heavy"]
    assert (
        approval["pipelined"][str(CLUSTER_DEPTH)]["virtual_time"]
        < approval["barrier"]["virtual_time"]
    )
    # Stall concentrates on the contended components: per escalated op,
    # at least 5x the uncontended traffic's stall; the consensus-number-1
    # mix (no contended components) pays zero contended stall anywhere.
    for nodes in map(str, NODE_COUNTS):
        per_escalated, per_uncontended = stall_concentration(
            results["cluster"]["approval_heavy"][nodes]
        )
        assert per_escalated > 5 * per_uncontended, (
            nodes,
            per_escalated,
            per_uncontended,
        )
        owner = results["cluster"]["owner_only"][nodes]["pipelined"]
        assert owner["escalated_ops"] == 0
        assert owner["frontier_stall_time_contended"] == 0.0
        assert owner["sync_wait_time"] == 0.0
    engine_approval = approval["pipelined"][str(CLUSTER_DEPTH)]
    assert (
        engine_approval["stall_time_contended"]
        >= 0.9 * engine_approval["stall_time"]
    )
    # The no-knobs default strictly beats the legacy() preset, and it
    # really runs the fast paths (DAG width, team lanes, depth > 1).
    headline = results["default_vs_legacy"]["approval_heavy"]
    assert headline["speedup"] > 1.0, headline["speedup"]
    assert headline["default"]["pipeline_depth"] > 1
    assert headline["default"]["max_dag_width"] >= 2
    assert headline["default"]["team_ops"] > 0


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E12: cross-round pipelining vs the global round barrier "
        f"({params['ops']} ops, {params['accounts']} accounts, "
        f"{params['lanes']} lanes, virtual time)",
        "",
        f"engine (window {params['window']}):",
    ]
    lines += render_stats_table(
        list(results["engine"].items()),
        [("barrier", "barrier.virtual_time", ".1f")]
        + [
            (f"depth {d}", f"pipelined.{d}.virtual_time", ".1f")
            for d in DEPTHS
        ],
        label_header="mix",
        separators=(0,),
    )
    lines.append("")
    lines.append(
        f"cluster (depth {params['cluster_depth']}, makespan and speedup):"
    )
    for name, entry in results["cluster"].items():
        for nodes, comparison in entry.items():
            per_escalated, per_uncontended = stall_concentration(comparison)
            lines.append(
                f"  {name:>15} n={nodes}: "
                f"barrier {comparison['barrier']['makespan']:>7.2f}  "
                f"pipelined {comparison['pipelined']['makespan']:>7.2f}  "
                f"({comparison['makespan_ratio']:.2f}x)  "
                f"stall/op contended {per_escalated:>6.3f} "
                f"vs uncontended {per_uncontended:>6.3f}"
            )
    lines += render_identity(
        "pipeline_depth=1 bit-identical to the barrier path",
        {
            "engine": results["identity"]["engine_depth1_identical"],
            "cluster": results["identity"]["cluster_depth1_identical"],
        },
    )
    headline = results["default_vs_legacy"]["approval_heavy"]
    lines.append("")
    lines.append(
        "default vs legacy() (approval_heavy, identical structural "
        "params): "
        f"default {headline['default']['virtual_time']:.1f}  "
        f"legacy {headline['legacy']['virtual_time']:.1f}  "
        f"({headline['speedup']:.2f}x)"
    )
    latency = results["op_latency"]["pipelined_engine"]
    lines.append(
        f"op commit latency (pipelined engine, depth "
        f"{results['params']['cluster_depth']}): "
        f"p50 {latency['p50']:.2f}  p99 {latency['p99']:.2f}  "
        f"mean {latency['mean']:.2f}  over {latency['count']} ops"
    )
    return lines


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the
    pipelined engine at the headline depth on the contended mix — the
    trace shows sync waits overlapping later rounds' execution."""
    engine = PipelinedExecutor(
        make_token(),
        pipeline_depth=CLUSTER_DEPTH,
        num_lanes=LANES,
        window=WINDOW,
        seed=SEED,
        tracer=tracer,
    )
    engine.run_workload(make_items(APPROVAL_HEAVY_MIX, ops))


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_pipeline_scaling(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=512), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E12_pipeline", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_pipeline.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_pipeline.json",
        smoke_ops=512,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
