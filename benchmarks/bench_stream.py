"""E12 — open-loop saturation: offered load vs latency SLOs.

Every other bench is closed-loop: the whole workload is fed at virtual
time zero and the drain is measured.  Production token traffic is an
*open loop* — operations arrive on their own Poisson/bursty schedule
whether or not the system keeps up — and a saturating system looks fine
in aggregate long after its tail windows have collapsed.  This bench
drives timed Zipf-skewed arrivals (:mod:`repro.workloads.arrivals`)
into three layers:

* the **barrier engine** (:class:`repro.engine.BatchExecutor`),
* the **pipelined engine** (:class:`repro.engine.PipelinedExecutor`),
* the **cluster** (:class:`repro.cluster.TokenCluster`),

each at two offered-load levels calibrated against its own measured
closed-loop capacity: ``lo`` (well under capacity — latency must stay
bounded) and ``hi`` (well over — the queue grows without bound, and the
achieved throughput *is* the saturation throughput).  Each driven run
is traced; per-window commit counts and latency percentiles come from a
:class:`repro.obs.TimeSeries` (conservation-checked against the
unwindowed totals), and an :class:`repro.obs.SLOMonitor` turns the
windows into a verdict: the ``lo`` run holds a p99 objective the ``hi``
run must visibly burn through.

Latency is commit − arrival on the virtual timeline; there is no wall
clock anywhere.

Standalone (writes ``BENCH_stream.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_stats_table
from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.obs import SLOMonitor, TimeSeries, TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    StreamDriver,
    TokenWorkloadGenerator,
    WorkloadMix,
    poisson_arrivals,
)

SEED = 29
ACCOUNTS = 48
WINDOW = 32
LANES = 8
PIPELINE_DEPTH = 4
CLUSTER_NODES = 4
CLUSTER_LANES = 4
#: Heavy-tailed account popularity (Victor & Lüders [27]) — the skew
#: knob lives in the workload generator, orthogonal to arrival timing.
ZIPF_S = 0.9
#: Offered-load multipliers over each layer's measured capacity.
LEVELS = {"lo": 0.6, "hi": 2.5}
#: Virtual-time windows per driven run (width = makespan / WINDOWS).
WINDOWS = 12
#: Per-window p99 objective: this multiple of the lo run's overall p99.
SLO_MARGIN = 3.0
SLO_HORIZON = 8
SLO_BUDGET = 0.25

#: The three driven layers, in table order.
LAYERS = ("engine", "pipelined", "cluster")


def make_items(ops: int):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=SEED, mix=WorkloadMix(), zipf_s=ZIPF_S
    ).generate(ops)


def make_target(layer: str, tracer: TraceRecorder | None = None):
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    if layer == "engine":
        return BatchExecutor(
            token, num_lanes=LANES, window=WINDOW, seed=SEED, tracer=tracer
        )
    if layer == "pipelined":
        return PipelinedExecutor(
            token,
            pipeline_depth=PIPELINE_DEPTH,
            num_lanes=LANES,
            window=WINDOW,
            seed=SEED,
            tracer=tracer,
        )
    if layer == "cluster":
        return TokenCluster(
            token,
            num_nodes=CLUSTER_NODES,
            lanes_per_node=CLUSTER_LANES,
            window=WINDOW,
            seed=SEED,
            tracer=tracer,
        )
    raise ValueError(f"unknown layer {layer!r}")


def closed_loop_capacity(layer: str, ops: int) -> float:
    """The layer's drain throughput (ops per virtual-time unit) on the
    same workload, fed all at once — the saturation reference the
    offered-load levels are calibrated against."""
    target = make_target(layer)
    _, _, stats = target.run_workload(make_items(ops))
    return stats.throughput


def drive(
    layer: str, rate: float, ops: int
) -> tuple[dict, TimeSeries]:
    """One driven run at ``rate`` offered ops per virtual-time unit;
    returns the level's result dict (sans SLO verdict) and its
    conservation-checked series."""
    tracer = TraceRecorder()
    target = make_target(layer, tracer=tracer)
    arrivals = poisson_arrivals(make_items(ops), rate, seed=SEED)
    report = StreamDriver(target, arrivals).run()
    width = max(1.0, tracer.makespan / WINDOWS)
    series = TimeSeries.from_trace(tracer, width).check()
    committed = tracer.metrics.counter("ops_committed").value
    entry = {
        "offered_rate": rate,
        "stream": report.as_dict(),
        "throughput": committed / report.makespan,
        "latency": tracer.metrics.histogram("op_latency").summary(),
        "width": series.width,
        "windows": series.window_count,
        "window_committed": series.counter_series("ops_committed"),
        "window_p50": series.percentile_series("op_latency", 0.5),
        "window_p99": series.percentile_series("op_latency", 0.99),
        "series": series.as_dict(),
    }
    return entry, series


def measure(ops: int) -> dict:
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes": LANES,
            "pipeline_depth": PIPELINE_DEPTH,
            "cluster_nodes": CLUSTER_NODES,
            "zipf_s": ZIPF_S,
            "levels": dict(LEVELS),
            "windows": WINDOWS,
            "slo_margin": SLO_MARGIN,
            "slo_horizon": SLO_HORIZON,
            "slo_budget": SLO_BUDGET,
            "seed": SEED,
        },
        "layers": {},
    }
    for layer in LAYERS:
        capacity = closed_loop_capacity(layer, ops)
        runs: dict[str, tuple[dict, TimeSeries]] = {
            level: drive(layer, multiplier * capacity, ops)
            for level, multiplier in LEVELS.items()
        }
        # The objective is calibrated off the underloaded run: hold a
        # per-window p99 within SLO_MARGIN of lo's overall p99.  The
        # same target judges both levels, so the hi run's verdict is a
        # saturation signal, not a moved goalpost.
        target_p99 = max(1.0, SLO_MARGIN * runs["lo"][0]["latency"]["p99"])
        monitor = SLOMonitor(
            target_p99, horizon=SLO_HORIZON, budget=SLO_BUDGET
        )
        levels = {}
        for level, (entry, series) in runs.items():
            entry["slo"] = monitor.scan(series).as_dict()
            levels[level] = entry
        results["layers"][layer] = {
            "capacity": capacity,
            "slo_target_p99": target_p99,
            "levels": levels,
        }
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    for layer in LAYERS:
        entry = results["layers"][layer]
        assert entry["capacity"] > 0, layer
        lo = entry["levels"]["lo"]
        hi = entry["levels"]["hi"]
        # Underloaded: every arrival is admitted (no backpressure), and
        # the system keeps up with the offered rate.
        assert lo["stream"]["dropped"] == 0, layer
        assert lo["stream"]["admitted"] == lo["stream"]["offered"], layer
        # Overloaded: achieved throughput saturates strictly below the
        # offered rate — that ceiling is the saturation throughput.
        assert hi["throughput"] < 0.95 * hi["offered_rate"], layer
        # Saturation shows up as latency: the overloaded tail dwarfs the
        # underloaded one, and the SLO calibrated on lo burns out on hi.
        assert hi["latency"]["p99"] > lo["latency"]["p99"], layer
        assert not hi["slo"]["met"], layer
        assert (
            hi["slo"]["breach_windows"] > lo["slo"]["breach_windows"]
        ), layer
        # The windowed views are present and shaped consistently (their
        # conservation sums were already enforced by TimeSeries.check()
        # inside measure()).
        for level in (lo, hi):
            assert level["windows"] >= 2, layer
            assert len(level["window_p99"]) == level["windows"], layer
            assert (
                len(level["window_committed"]) == level["windows"]
            ), layer


#: Eight-level block ramp for the per-window sparklines.
SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Render ``values`` as unicode block bars, scaled to their peak."""
    peak = max(values, default=0.0)
    if peak <= 0:
        return " " * len(values)
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[round(value / peak * top)] for value in values
    )


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E12: open-loop saturation sweep "
        f"({params['ops']} ops, {params['accounts']} accounts, "
        f"zipf s={params['zipf_s']}, Poisson arrivals, virtual time)",
    ]
    lines += render_stats_table(
        [
            (f"{layer} {level}", results["layers"][layer]["levels"][level])
            for layer in LAYERS
            for level in LEVELS
        ],
        [
            ("offered op/t", "offered_rate", ".3f"),
            ("achieved op/t", "throughput", ".3f"),
            ("dropped", "stream.dropped", "d"),
            ("p50", "latency.p50", ".2f"),
            ("p99", "latency.p99", ".2f"),
            ("breaches", "slo.breach_windows", "d"),
            ("max burn", "slo.max_burn", ".2f"),
        ],
        label_header="layer / load",
        separators=(2,),
    )
    for layer in LAYERS:
        entry = results["layers"][layer]
        lines.append("")
        lines.append(
            f"{layer}: capacity {entry['capacity']:.3f} op/t, "
            f"SLO p99 <= {entry['slo_target_p99']:.2f} per window "
            f"(budget {params['slo_budget']:.0%} of "
            f"{params['slo_horizon']} windows)"
        )
        for level in LEVELS:
            run = entry["levels"][level]
            lines.append(
                f"  {level} committed/window "
                f"|{sparkline(run['window_committed'])}| "
                f"peak {max(run['window_committed']):.0f}"
            )
            lines.append(
                f"  {level} p99/window       "
                f"|{sparkline(run['window_p99'])}| "
                f"peak {max(run['window_p99']):.1f}"
            )
    return lines


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the
    pipelined engine driven well past saturation — queue growth shows up
    as an ever-wider gap between the ``submit`` instants and the lane
    spans draining them."""
    capacity = closed_loop_capacity("pipelined", ops)
    target = make_target("pipelined", tracer=tracer)
    arrivals = poisson_arrivals(
        make_items(ops), LEVELS["hi"] * capacity, seed=SEED
    )
    StreamDriver(target, arrivals).run()


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_stream_saturation(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=400), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E12_stream", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_stream.json)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_stream.json",
        smoke_ops=240,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
        default_ops=800,
    )


if __name__ == "__main__":
    sys.exit(main())
