"""E11 — tiered synchronization lanes: pay k-consensus, not global consensus.

The paper's Theorems 2–4 price an ERC20 state by its largest enabled-
spender set: consensus number *k*, not *n*.  This experiment makes the
engine and cluster collect that discount (:mod:`repro.sync`) and compares,
in virtual time and messages, two ways of ordering the same contended
traffic:

* **always-global** (``team_threshold = 0``): every contended component
  through one total-order lane sized to all ``n`` processes — the
  blockchain discipline, ``O(n²)`` messages per batch behind a single
  sequencer;
* **tiered** (``team_threshold = K``): each contended component through a
  team lane among just its spender bound (``O(k²)`` messages, many teams
  concurrent), with the global lane kept only as the Tier ∞ fallback for
  unboundable or oversized components.

Workloads: ``APPROVAL_HEAVY_MIX`` with a bounded spender pool (mean
spender-set size ``k ≤ 4`` while ``n ≥ 16`` — the administrated-token
shape), a k-shared asset-transfer contract (static owner map, the [16]
object whose consensus number is exactly *k*), the multi-contract mix
(whose ERC721 stream exercises the Tier ∞ fallback), and a bounded-mempool
run surfacing backpressure drops.  Every run is checked for serial
equivalence against the sequential specification.

Standalone (writes ``BENCH_sync.json``, used by CI)::

    PYTHONPATH=src python benchmarks/bench_sync.py --smoke
"""

from __future__ import annotations

import sys

from common import bench_main, render_stats_table
from repro.cluster import ClusterConfig, TokenCluster
from repro.config import EngineConfig
from repro.engine import BatchExecutor, ConsensusEscalator
from repro.obs import TraceRecorder
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    MultiContractWorkloadGenerator,
    TokenWorkloadGenerator,
    WorkloadItem,
    standard_multi_contract,
)

SEED = 23
#: n — the process/account count; the always-global lane is sized to it.
ACCOUNTS = 24
WINDOW = 16
LANES = 8
#: Spender pools bound every account's potential-spender set to <= 4.
SPENDER_POOL = 4
#: Largest team the tiered configuration provisions a lane for —
#: sourced from the config surface, not restated, so the bench always
#: measures the threshold the default engine actually ships with.
THRESHOLD = EngineConfig().team_threshold
CLUSTER_NODES = 4


def make_token() -> ERC20TokenType:
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(ops: int) -> list[WorkloadItem]:
    return TokenWorkloadGenerator(
        ACCOUNTS,
        seed=SEED,
        mix=APPROVAL_HEAVY_MIX,
        spender_pool=SPENDER_POOL,
    ).generate(ops)


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def run_engine(object_type, items, threshold: int) -> dict:
    """One engine run on the legacy base (so the A/B isolates the team
    threshold), serial-equivalence-checked against the spec."""
    engine = BatchExecutor(
        object_type,
        EngineConfig.legacy(
            num_lanes=LANES,
            window=WINDOW,
            seed=SEED,
            team_threshold=threshold,
        ),
        escalator=ConsensusEscalator(num_replicas=ACCOUNTS, seed=SEED),
    )
    state, responses, stats = engine.run_workload(items)
    ref_state, ref_responses = serial_reference(object_type, items)
    assert state == ref_state, "engine diverged from the sequential spec"
    assert responses == ref_responses, "engine responses diverged"
    return stats.as_dict()


def run_cluster(items, threshold: int) -> dict:
    token = make_token()
    cluster = TokenCluster(
        token,
        ClusterConfig.legacy(
            num_nodes=CLUSTER_NODES,
            lanes_per_node=LANES,
            window=WINDOW,
            seed=SEED,
            team_threshold=threshold,
        ),
    )
    state, responses, stats = cluster.run_workload(items)
    ref_state, ref_responses = serial_reference(make_token(), items)
    assert state == ref_state, "cluster diverged from the sequential spec"
    assert responses == ref_responses, "cluster responses diverged"
    return stats.as_dict()


def run_shared_asset(ops: int, threshold: int) -> dict:
    """A k-shared asset transfer [16]: static owner teams of size 3."""
    groups = [
        frozenset(
            {pid for pid in range(base, min(base + 3, ACCOUNTS))}
        )
        for base in range(0, ACCOUNTS, 3)
    ]
    owner_map = [groups[account // 3] for account in range(ACCOUNTS)]
    factory = lambda: AssetTransferType(  # noqa: E731
        [50] * ACCOUNTS, owner_map=owner_map, num_processes=ACCOUNTS
    )
    import random

    rng = random.Random(SEED)
    items = []
    for _ in range(ops):
        pid = rng.randrange(ACCOUNTS)
        # Transfers from an account of the caller's own owner group: the
        # shared accounts are genuinely k-shared, k = 3.
        base = (pid // 3) * 3
        source = base + rng.randrange(min(3, ACCOUNTS - base))
        from repro.spec.operation import Operation

        items.append(
            WorkloadItem(
                pid=pid,
                operation=Operation(
                    "transfer",
                    (source, rng.randrange(ACCOUNTS), rng.randint(0, 5)),
                ),
            )
        )
    return run_engine(factory(), items, threshold)


def run_multi_contract(ops: int, threshold: int) -> dict:
    """The three-contract mix, one engine per contract (hot-spot skew so
    the ERC721 stream races on a few tokens and must use Tier ∞)."""
    object_types, generator = standard_multi_contract(
        ACCOUNTS, seed=SEED, hotspot_fraction=0.4
    )
    per_contract = MultiContractWorkloadGenerator.split(generator.generate(ops))
    summary = {"messages": 0, "virtual_time": 0.0, "contracts": {}}
    for name, items in sorted(per_contract.items()):
        stats = run_engine(object_types[name], items, threshold)
        summary["contracts"][name] = {
            "ops": stats["ops_executed"],
            "escalation_messages": stats["escalation_messages"],
            "team_ops": stats["team_ops"],
            "global_ops": stats["global_ops"],
            "virtual_time": stats["virtual_time"],
        }
        summary["messages"] += stats["escalation_messages"]
        summary["virtual_time"] += stats["virtual_time"]
    return summary


def run_backpressure(ops: int) -> dict:
    """A bounded router mempool under the same mix: drops must surface."""
    capacity = max(8, ops // 8)
    token = make_token()
    cluster = TokenCluster(
        token,
        ClusterConfig.legacy(
            num_nodes=CLUSTER_NODES,
            lanes_per_node=LANES,
            window=WINDOW,
            seed=SEED,
            team_threshold=THRESHOLD,
            mempool_capacity=capacity,
        ),
    )
    items = make_items(ops)
    admitted = cluster.feed(items)
    cluster.run()
    stats = cluster.stats.as_dict()
    return {
        "capacity": capacity,
        "submitted": len(items),
        "admitted": len(admitted),
        "dropped_ops": stats["dropped_ops"],
        "ops_executed": stats["ops_executed"],
    }


def measure(ops: int) -> dict:
    items = make_items(ops)
    results: dict = {
        "params": {
            "ops": ops,
            "accounts": ACCOUNTS,
            "window": WINDOW,
            "lanes": LANES,
            "spender_pool": SPENDER_POOL,
            "team_threshold": THRESHOLD,
            "cluster_nodes": CLUSTER_NODES,
            "seed": SEED,
        },
        "engine": {
            "global": run_engine(make_token(), items, 0),
            "tiered": run_engine(make_token(), items, THRESHOLD),
        },
        "threshold_sweep": {},
        "cluster": {
            "global": run_cluster(items, 0),
            "tiered": run_cluster(items, THRESHOLD),
        },
        "shared_asset": {
            "global": run_shared_asset(ops // 2, 0),
            "tiered": run_shared_asset(ops // 2, THRESHOLD),
        },
        "multi_contract": {
            "global": run_multi_contract(ops, 0),
            "tiered": run_multi_contract(ops, THRESHOLD),
        },
        "backpressure": run_backpressure(ops),
    }
    for threshold in (0, 2, 4, 8):
        stats = run_engine(make_token(), items, threshold)
        results["threshold_sweep"][str(threshold)] = {
            "escalation_messages": stats["escalation_messages"],
            "team_ops": stats["team_ops"],
            "global_ops": stats["global_ops"],
            "virtual_time": stats["virtual_time"],
            "mean_team_size": stats["mean_team_size"],
        }
    # Per-op commit latency (submit -> commit on the traced virtual
    # timeline), from a dedicated traced run of the tiered engine — the
    # runs above stay untraced, so their stats dicts are bit-identical
    # with or without the observability layer.
    tracer = TraceRecorder()
    traced_run(ops, tracer)
    results["op_latency"] = {
        "tiered_engine": tracer.metrics.histogram("op_latency").summary()
    }
    return results


def check_claims(results: dict) -> None:
    """The acceptance criteria, enforced."""
    assert results["params"]["accounts"] >= 16  # n >= 16 processes
    tiered = results["engine"]["tiered"]
    always_global = results["engine"]["global"]
    # The tiered engine actually uses team lanes, sized k <= 4 on average
    # (the workload's spender pools guarantee the bound).
    assert tiered["team_ops"] > 0
    assert 0 < tiered["mean_team_size"] <= SPENDER_POOL
    # Strictly lower message bill AND virtual-time makespan than paying
    # global consensus for every contended component.
    assert tiered["escalation_messages"] < always_global["escalation_messages"]
    assert tiered["virtual_time"] < always_global["virtual_time"]
    # The same discount holds distributed: owner-node team lanes beat the
    # shared lane on messages and end-to-end makespan.
    cluster_tiered = results["cluster"]["tiered"]
    cluster_global = results["cluster"]["global"]
    assert cluster_tiered["team_ops"] > 0
    assert (
        cluster_tiered["escalation_messages"]
        < cluster_global["escalation_messages"]
    )
    assert cluster_tiered["makespan"] < cluster_global["makespan"]
    # k-shared asset transfer: the static owner map is an exact bound, so
    # every team lane has exactly 3 participants (components chaining two
    # owner groups together exceed the threshold and legitimately fall
    # back to Tier ∞).
    shared = results["shared_asset"]["tiered"]
    if shared["escalated_ops"]:
        assert shared["team_ops"] > 0
        assert set(shared["k_histogram"]) == {"3"}
        assert shared["escalation_messages"] < (
            results["shared_asset"]["global"]["escalation_messages"]
        )
    # Multi-contract: the ERC721 stream has no static spender bound and
    # must fall back to Tier ∞ — and the mix still wins overall.
    multi_tiered = results["multi_contract"]["tiered"]
    assert multi_tiered["contracts"]["erc721"]["team_ops"] == 0
    assert multi_tiered["contracts"]["erc721"]["global_ops"] > 0
    assert multi_tiered["contracts"]["erc20"]["team_ops"] > 0
    assert (
        multi_tiered["messages"]
        < results["multi_contract"]["global"]["messages"]
    )
    # The threshold sweep is monotone at the endpoints: 0 = historical
    # always-global bill, the working threshold strictly cheaper.
    sweep = results["threshold_sweep"]
    assert (
        sweep["0"]["escalation_messages"]
        == always_global["escalation_messages"]
    )
    assert sweep["0"]["team_ops"] == 0
    # Backpressure is surfaced, never silent: drops are counted and the
    # executed+dropped ledger covers every submission.
    bp = results["backpressure"]
    assert bp["dropped_ops"] == bp["submitted"] - bp["admitted"]
    assert bp["ops_executed"] == bp["admitted"]


def render_table(results: dict) -> list[str]:
    params = results["params"]
    lines = [
        "E11: tiered sync lanes vs always-global escalation "
        f"({params['ops']} ops, n={params['accounts']} processes, "
        f"spender pools of {params['spender_pool']}, "
        f"threshold {params['team_threshold']}, virtual time)",
    ]
    lines += render_stats_table(
        [
            (f"{scope} {name}", results[scope][name])
            for scope in ("engine", "cluster")
            for name in ("global", "tiered")
        ],
        [
            ("sync msgs", "escalation_messages", "d"),
            ("virtual time", ("virtual_time", "makespan"), ".1f"),
            ("team ops", "team_ops", "d"),
            ("global ops", "global_ops", "d"),
            ("mean k", "mean_team_size", ".2f"),
        ],
        label_header="configuration",
    )
    lines.append("")
    lines.append("threshold sweep (engine, APPROVAL_HEAVY + spender pools):")
    for threshold, entry in results["threshold_sweep"].items():
        lines.append(
            f"  threshold {threshold:>2}: msgs {entry['escalation_messages']:>7}  "
            f"team/global {entry['team_ops']:>4}/{entry['global_ops']:<4}  "
            f"mean k {entry['mean_team_size']:.2f}  "
            f"vt {entry['virtual_time']:.1f}"
        )
    lines.append("")
    lines.append("k-shared asset transfer (owner teams of 3, [16]):")
    for name in ("global", "tiered"):
        stats = results["shared_asset"][name]
        lines.append(
            f"  {name:>7}: msgs {stats['escalation_messages']:>7}  "
            f"escalated {stats['escalated_ops']:>4}  "
            f"team/global {stats['team_ops']:>4}/{stats['global_ops']:<4}"
        )
    lines.append("")
    lines.append("multi-contract mix (per-contract engines):")
    for name in ("global", "tiered"):
        entry = results["multi_contract"][name]
        per = "  ".join(
            f"{contract}: {stats['escalation_messages']}m"
            f" ({stats['team_ops']}t/{stats['global_ops']}g)"
            for contract, stats in sorted(entry["contracts"].items())
        )
        lines.append(f"  {name:>7}: total {entry['messages']:>7} | {per}")
    latency = results["op_latency"]["tiered_engine"]
    lines.append("")
    lines.append(
        f"op commit latency (tiered engine, threshold "
        f"{params['team_threshold']}): "
        f"p50 {latency['p50']:.2f}  p99 {latency['p99']:.2f}  "
        f"mean {latency['mean']:.2f}  over {latency['count']} ops"
    )
    bp = results["backpressure"]
    lines.append("")
    lines.append(
        f"backpressure (router mempool capacity {bp['capacity']}): "
        f"{bp['submitted']} submitted, {bp['admitted']} admitted, "
        f"{bp['dropped_ops']} dropped, {bp['ops_executed']} executed"
    )
    return lines


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (collected by `pytest benchmarks/`)
# ---------------------------------------------------------------------------


def test_tiered_sync(benchmark, write_table):
    results = benchmark.pedantic(
        lambda: measure(ops=600), rounds=1, iterations=1
    )
    check_claims(results)
    write_table("E11_sync", render_table(results))


# ---------------------------------------------------------------------------
# standalone smoke entry point (used by CI; writes BENCH_sync.json)
# ---------------------------------------------------------------------------


def traced_run(ops: int, tracer) -> None:
    """The representative traced configuration (``--trace``): the tiered
    engine on the bounded-spender contended mix — team-lane batches show
    up as per-team sync tracks alongside the execution lanes."""
    engine = BatchExecutor(
        make_token(),
        EngineConfig.legacy(
            num_lanes=LANES,
            window=WINDOW,
            seed=SEED,
            team_threshold=THRESHOLD,
        ),
        escalator=ConsensusEscalator(num_replicas=ACCOUNTS, seed=SEED),
        tracer=tracer,
    )
    engine.run_workload(make_items(ops))


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        argv,
        description=__doc__,
        default_out="BENCH_sync.json",
        smoke_ops=500,
        measure=measure,
        check_claims=check_claims,
        render_table=render_table,
        traced_run=traced_run,
    )


if __name__ == "__main__":
    sys.exit(main())
