"""E3 — Theorem 3 / Figure 1: the commutativity case analysis, and why the
construction cannot exceed k.

Regenerates the proof's case split as a machine-checked matrix over a
synchronization state, then demonstrates the upper-bound phenomenon: running
Algorithm 1's decision rule with a (k+1)-th process that is not an enabled
spender breaks on some schedule (the p_w argument made executable).
"""

from __future__ import annotations

from repro.analysis.commutativity import (
    Invocation,
    PairKind,
    analyze_pair,
    erc20_case_label,
)
from repro.objects.erc20 import ERC20Token, ERC20TokenType, TokenState
from repro.objects.register import register_array
from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import TokenConsensus
from repro.runtime.executor import System
from repro.runtime.explorer import ScheduleExplorer
from repro.spec.operation import op


def build_matrix():
    token = ERC20TokenType(4, total_supply=0)
    state = TokenState.create([10, 10, 0, 0], {(0, 1): 10, (0, 2): 10})
    invocations = [
        Invocation(0, op("transfer", 3, 10)),
        Invocation(1, op("transferFrom", 0, 1, 10)),
        Invocation(2, op("transferFrom", 0, 2, 10)),
        Invocation(1, op("transfer", 2, 5)),
        Invocation(0, op("approve", 1, 3)),
        Invocation(3, op("balanceOf", 0)),
        Invocation(3, op("transferFrom", 0, 3, 10)),  # p_w: not enabled
    ]
    rows = []
    for i in range(len(invocations)):
        for j in range(i + 1, len(invocations)):
            analysis = analyze_pair(
                token, state, invocations[i], invocations[j]
            )
            rows.append(
                (
                    str(invocations[i]),
                    str(invocations[j]),
                    analysis.kind,
                    erc20_case_label(invocations[i], invocations[j]),
                )
            )
    return rows


def test_case_matrix(benchmark, write_table):
    rows = benchmark(build_matrix)
    lines = [
        "E3: Theorem 3 case analysis at a synchronization state",
        f"{'first':<34}{'second':<34}{'kind':<11}case",
    ]
    conflicts = 0
    for first, second, kind, label in rows:
        lines.append(f"{first:<34}{second:<34}{kind.value:<11}{label}")
        if kind is PairKind.CONFLICT:
            conflicts += 1
            # Every conflict is on account 0's state among its enabled
            # spenders: a transfer/transferFrom race (Cases 1-3) or an
            # approve racing an enabled spender's transferFrom (Case 4,
            # second sub-case).
            assert "(0," in first or "(0," in second or "transfer(3" in first
            names = {first.split(".")[1].split("(")[0],
                     second.split(".")[1].split("(")[0]}
            assert names <= {"transfer", "transferFrom", "approve"}
            assert "transferFrom" in names or names == {"transfer"}
    lines.append(f"total pairs: {len(rows)}; genuine conflicts: {conflicts}")
    assert conflicts >= 2  # the owner/spender and spender/spender races
    write_table("E3_case_matrix", lines)


def oversubscribed_system(proposals):
    """Algorithm 1's decision rule run by k+1 processes where only k are
    enabled spenders: the extra process pw races with a doomed transferFrom
    and then applies the same scan."""
    k = len(proposals) - 1
    state = TokenState.create([2, 0, 0, 0], {(0, 1): 2})  # k=2 spenders: 0,1
    token = ERC20Token(4, initial_state=state)
    protocol = TokenConsensus(token, account=0)
    registers = register_array(3)
    participants = [0, 1, 2]  # p2 is NOT an enabled spender

    def propose(pid):
        def program():
            yield registers[pid].write(proposals[pid])
            if pid == 0:
                yield token.transfer(protocol.dest, 2)
            else:
                yield token.transfer_from(0, protocol.dest, 2)
            for j in (1, 2):
                allowance = yield token.allowance(0, j)
                if allowance == 0:
                    decision = yield registers[j].read()
                    return decision
            decision = yield registers[0].read()
            return decision

        return program

    return System(
        programs=[propose(pid) for pid in participants],
        objects=[token, *registers],
        pids=participants,
    )


def test_oversubscription_fails(benchmark, write_table):
    proposals = {0: "a", 1: "b", 2: "c"}

    def explore():
        explorer = ScheduleExplorer(lambda: oversubscribed_system(proposals))
        return explorer.explore(checks=[consensus_checks(proposals)])

    report = benchmark.pedantic(explore, rounds=1, iterations=1)
    lines = [
        "E3: k'=3 processes on a k=2 synchronization state (p2 not enabled)",
        f"configurations explored: {report.configs}",
        f"violations found: {len(report.violations)}",
    ]
    lines += [f"  {v}" for v in report.violations[:3]]
    assert not report.ok, "the upper bound must bite: some schedule fails"
    write_table("E3_oversubscription", lines)
