"""E9 — the valency machinery (Theorem 3's proof technique, executable).

Times the critical-configuration search on Algorithm 1 and the k-AT race,
and verifies the structural claims: bivalent initial configurations, critical
configurations whose pending operations are the token race, and univalent
successors deciding the stepping process.
"""

from __future__ import annotations

from repro.analysis.valency import ValencyAnalyzer
from repro.protocols.kat_consensus import kat_consensus_system
from repro.protocols.register_consensus import doomed_register_system
from repro.protocols.token_consensus import algorithm1_system


def test_critical_state_search(benchmark, write_table):
    def search():
        results = {}
        for name, factory in (
            ("algorithm1 k=2", lambda: algorithm1_system({0: 0, 1: 1})),
            ("k-AT race k=2", lambda: kat_consensus_system({0: 0, 1: 1})),
        ):
            analyzer = ValencyAnalyzer(factory)
            bivalent = analyzer.initial_is_bivalent()
            criticals = analyzer.find_critical_configurations(max_results=4)
            results[name] = (bivalent, criticals)
        return results

    results = benchmark.pedantic(search, rounds=1, iterations=1)
    lines = ["E9: critical-configuration search"]
    for name, (bivalent, criticals) in results.items():
        lines.append(f"\n{name}: initial bivalent = {bivalent}, "
                     f"critical configs found = {len(criticals)}")
        assert bivalent
        assert criticals
        critical = criticals[0]
        for pid, pending in sorted(critical.pending.items()):
            lines.append(f"  pending p{pid}: {pending}")
        for pid, valence in sorted(critical.successor_valences.items()):
            lines.append(f"  p{pid} steps first -> {valence}")
            assert valence.outcomes == {pid}
        pending_ops = " ".join(critical.pending.values())
        assert "transfer" in pending_ops  # the race is on the token/AT object
    write_table("E9_critical_states", lines)


def test_register_protocol_stays_broken(benchmark, write_table):
    def search():
        analyzer = ValencyAnalyzer(lambda: doomed_register_system({0: 2, 1: 1}))
        from repro.protocols.base import consensus_checks
        report = analyzer.explorer.explore(
            checks=[consensus_checks({0: 2, 1: 1})]
        )
        return analyzer.valence(()), report

    valence, report = benchmark.pedantic(search, rounds=1, iterations=1)
    lines = [
        "E9: register-only consensus attempt (FLP demonstration)",
        f"initial valence: {valence}",
        f"configurations: {report.configs}",
        f"agreement violations found: {len(report.violations)}",
    ]
    assert valence.is_bivalent
    assert not report.ok
    write_table("E9_flp_demo", lines)


def test_valency_search_scaling(benchmark):
    """Wall time of the memoized full-tree exploration for k=3."""

    def explore_k3():
        analyzer = ValencyAnalyzer(
            lambda: algorithm1_system({0: 0, 1: 1, 2: 2})
        )
        return analyzer.valence(())

    valence = benchmark.pedantic(explore_k3, rounds=1, iterations=1)
    assert valence.outcomes == {0, 1, 2}
