"""Shared driver and renderers for the standalone bench entry points.

Every ``benchmarks/bench_<name>.py`` exposes the same standalone
contract — ``--ops``, ``--smoke``, ``--out`` (the JSON consumed by the
CI bench-regression gate) and ``--trace`` (a Chrome-trace-event JSON of
one representative traced run, loadable in Perfetto or
``chrome://tracing``).  :func:`bench_main` is that contract implemented
once: parse, measure, enforce the bench's claims, write the JSON, print
the table, and — when asked — re-run the bench's representative
configuration under a :class:`repro.obs.TraceRecorder` and export the
trace with its makespan attribution embedded in ``otherData``.

The table renderers here are driven by
:class:`repro.obs.MetricsRegistry`: a row is any stats summary (an
``as_dict()`` mapping or a ready registry), a column is a dotted metric
name, and alignment is computed from the formatted cells — so benches
share one tabulation path instead of five hand-aligned f-string blocks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.config import ClusterConfig, EngineConfig
from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    critical_path_report,
    utilization_report,
    write_chrome_trace,
)

#: A table column: (header, metric name(s), format spec).  The metric
#: entry may be a tuple of candidate dotted names; the first one present
#: in the row's registry wins (e.g. engine rows carry ``virtual_time``
#: where cluster rows carry ``makespan``).
Column = tuple[str, "str | tuple[str, ...]", str]


def build_parser(
    description: str | None, default_out: str, default_ops: int = 1200
) -> argparse.ArgumentParser:
    """The shared standalone-bench CLI: --ops, --smoke, --out, --trace."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--ops", type=int, default=default_ops, help="ops per run"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small, fast configuration"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(default_out),
        help="output JSON path",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="TRACE_JSON",
        help="also run the bench's representative configuration under a "
        "virtual-time tracer and write a Chrome-trace-event JSON "
        "(open in Perfetto) with the makespan attribution embedded",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="MAX_SPANS",
        help="with --trace: retain at most MAX_SPANS spans (ring-buffer "
        "sampling for long runs); the occupancy/utilization totals stay "
        "exact, the critical-path attribution (which needs every span) "
        "is replaced by the utilization report",
    )
    return parser


def bench_main(
    argv: list[str] | None,
    *,
    description: str | None,
    default_out: str,
    smoke_ops: int,
    measure: Callable[[int], dict],
    check_claims: Callable[[dict], None],
    render_table: Callable[[dict], list[str]],
    traced_run: Callable[[int, TraceRecorder], None] | None = None,
    default_ops: int = 1200,
) -> int:
    """The standalone entry point shared by every bench.

    ``measure``/``check_claims``/``render_table`` are the bench's own
    hooks, unchanged; ``traced_run(ops, tracer)`` re-runs one
    representative configuration with the tracer attached (kept separate
    from ``measure`` so the gated JSON is produced by untraced runs and
    stays bit-identical whether or not ``--trace`` was passed).
    """
    parser = build_parser(description, default_out, default_ops)
    args = parser.parse_args(argv)
    if args.ops < 1:
        parser.error("--ops must be >= 1")
    ops = smoke_ops if args.smoke else args.ops
    results = measure(ops)
    # Every bench JSON carries the active config surface, so a committed
    # baseline is self-describing: the regression gate refuses a run
    # whose config block disagrees with the baseline's — a silent
    # default flip can never skew one number in one place.
    results["config"] = {
        "engine": EngineConfig().as_dict(),
        "cluster": ClusterConfig().as_dict(),
        "engine_legacy": EngineConfig.legacy().as_dict(),
        "cluster_legacy": ClusterConfig.legacy().as_dict(),
    }
    check_claims(results)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print("\n".join(render_table(results)))
    print(f"\nwrote {args.out}")
    if args.trace_sample is not None and args.trace is None:
        parser.error("--trace-sample requires --trace")
    if args.trace is not None:
        if traced_run is None:
            parser.error("this benchmark has no traced configuration")
        export_trace(
            traced_run, ops, args.trace, max_spans=args.trace_sample
        )
    return 0


def export_trace(
    traced_run: Callable[[int, TraceRecorder], None],
    ops: int,
    path: Path,
    max_spans: int | None = None,
) -> None:
    """Run ``traced_run`` under a fresh tracer and write the Chrome
    trace.  A full trace embeds the critical-path attribution (verified
    to partition the makespan exactly) in ``otherData.attribution``; a
    *sampled* run (ring buffer overflowed) embeds the exact utilization
    report in ``otherData.utilization`` instead — the walk needs every
    span, the occupancy totals do not."""
    tracer = TraceRecorder(max_spans=max_spans)
    traced_run(ops, tracer)
    print()
    if tracer.sampled:
        report = utilization_report(tracer).check()
        write_chrome_trace(
            tracer, path, metadata={"utilization": report.as_dict()}
        )
        print("\n".join(report.render()))
    else:
        report = critical_path_report(tracer)
        report.check()
        write_chrome_trace(
            tracer, path, metadata={"attribution": report.as_dict()}
        )
        print("\n".join(report.render()))
    retained = (
        f"{len(tracer.spans)} of {tracer.spans_recorded} spans retained"
        if tracer.sampled
        else f"{len(tracer.spans)} spans"
    )
    print(
        f"wrote {path} ({retained}, "
        f"{len(tracer.instants)} instants, "
        f"{len(tracer.tracks())} tracks)"
    )


# ---------------------------------------------------------------------------
# registry-driven table renderers
# ---------------------------------------------------------------------------


def _as_registry(source: MetricsRegistry | Mapping) -> MetricsRegistry:
    if isinstance(source, MetricsRegistry):
        return source
    return MetricsRegistry.from_summary(source)


def _cell(registry: MetricsRegistry, metric, fmt: str) -> str:
    names = (metric,) if isinstance(metric, str) else metric
    for name in names:
        if name in registry:
            value = registry.value(name)
            if fmt.endswith("d"):
                value = int(value)
            return format(value, fmt)
    raise KeyError(f"none of {names} present in row registry")


def render_stats_table(
    entries: Sequence[tuple[str, MetricsRegistry | Mapping]],
    columns: Sequence[Column],
    *,
    label_header: str = "",
    separators: Sequence[int] = (),
) -> list[str]:
    """One aligned metrics table: a header row plus one row per entry.

    ``entries`` are ``(row_label, stats)`` pairs where stats is a
    registry or any nested summary mapping; ``columns`` name the dotted
    metrics to show.  ``separators`` lists column indices after which a
    ``|`` divider is drawn.  Widths come from the formatted cells, so
    the table is always aligned regardless of magnitudes.
    """
    rows = [
        (
            label,
            [
                _cell(_as_registry(source), metric, fmt)
                for _, metric, fmt in columns
            ],
        )
        for label, source in entries
    ]
    widths = [
        max(len(header), *(len(cells[i]) for _, cells in rows))
        for i, (header, _, _) in enumerate(columns)
    ]
    label_width = max(len(label_header), *(len(label) for label, _ in rows))

    def line(label: str, cells: Sequence[str]) -> str:
        parts = [f"{label:>{label_width}} |"]
        for i, (cell, width) in enumerate(zip(cells, widths)):
            parts.append(f"{cell:>{width}}")
            if i in separators:
                parts.append("|")
        return " ".join(parts)

    header_cells = [header for header, _, _ in columns]
    return [line(label_header, header_cells)] + [
        line(label, cells) for label, cells in rows
    ]


def render_backpressure(count: int, source: str) -> list[str]:
    """The shared backpressure footer: drops must be visible, because a
    bench that silently shed load would flatter every number above."""
    return [
        "",
        f"backpressure: {count} {source}"
        " (0 = nothing dropped; throughput covers the full workload)",
    ]


def render_identity(claim: str, flags: Mapping[str, bool]) -> list[str]:
    """The shared bit-identity footer (``flag-off reproduces the
    historical path``), one ``name flag`` pair per checked layer."""
    return [
        "",
        f"{claim}: " + ", ".join(f"{k} {v}" for k, v in flags.items()),
    ]


if __name__ == "__main__":
    sys.exit("benchmarks/common.py is a library, not an entry point")
