#!/usr/bin/env python3
"""Cluster quickstart: the paper's consensus-number-1 claim, distributed.

Deploys an ERC20 token on a virtual-time cluster (:mod:`repro.cluster`):
N shard-owning nodes, a routing edge, a shard-ownership lease protocol,
and a shared total-order lane that only contended cross-node conflicts
ever touch —

    clients -> router -> owner nodes          (point-to-point, no coordination)
                  |  \\-> lease handoffs       (3 messages per migrated shard)
                  \\---> total-order lane      (contended cross-node races only)

Three traffic patterns show the three coordination classes: owner-local
traffic (zero coordination messages), a cross-shard settlement chain
(resolved by a lease handoff), and a spender race spanning two owners
(the only traffic that pays for consensus).

Run:  python examples/cluster_quickstart.py
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, TokenCluster, owner_local_workload
from repro.engine import BatchExecutor
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
)

RULE = "=" * 72
ACCOUNTS = 256
WINDOW = 128
OPS = 512


def show(title: str, stats) -> None:
    print(f"  {title}")
    print(
        f"    ops={stats.ops_executed}  rounds={stats.rounds}  "
        f"owner-local={stats.owner_local_rate:.0%}  "
        f"escalated={stats.escalation_rate:.0%}"
    )
    print(
        f"    makespan={stats.makespan:.1f}  "
        f"throughput={stats.throughput:.2f} ops/t  "
        f"messages: {stats.cluster_messages} cluster / "
        f"{stats.lease_messages} lease / "
        f"{stats.escalation_messages} consensus"
    )


def fresh_cluster(nodes: int = 4) -> tuple[ERC20TokenType, TokenCluster]:
    # The shipped ClusterConfig defaults keep DAG scheduling, pipelining
    # and team lanes on; ClusterConfig.legacy(...) would pin the
    # historical barrier cluster instead, bit for bit.
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    config = ClusterConfig(
        num_nodes=nodes, lanes_per_node=8, window=WINDOW
    )
    return token, TokenCluster(token, config)


def main() -> None:
    print(RULE)
    print("1. Owner-local traffic: independent owners, independent nodes")
    print(RULE)
    token, cluster = fresh_cluster()
    items = owner_local_workload(cluster.shard_map, ACCOUNTS, OPS, seed=7)
    _, _, stats = cluster.run_workload(items)
    show("4 nodes, every op inside one node's shards:", stats)
    assert stats.escalation_messages == 0 and stats.lease_migrations == 0
    print(
        "  Every operation anchors on an account its node owns: the round"
        " trip is\n  one forward and one reply — zero consensus messages,"
        " zero lease\n  migrations, for any cluster size.\n"
    )

    print(RULE)
    print("2. Random owner traffic: the cluster vs one 8-lane engine")
    print(RULE)
    items = TokenWorkloadGenerator(
        ACCOUNTS, seed=7, mix=OWNER_ONLY_MIX
    ).generate(OPS)
    engine = BatchExecutor(
        ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS),
        num_lanes=8,
        window=WINDOW,
    )
    _, _, engine_stats = engine.run_workload(items)
    token, cluster = fresh_cluster()
    _, _, stats = cluster.run_workload(items)
    show("4 nodes x 8 lanes:", stats)
    print(
        f"    single-node engine: {engine_stats.throughput:.2f} ops/t"
        f"  ->  cluster speedup "
        f"{stats.throughput / engine_stats.throughput:.2f}x"
    )
    print(
        f"  Cross-shard settlement chains were resolved by"
        f" {stats.lease_migrations} lease handoffs\n  "
        f"({stats.lease_messages} messages) — ownership migrates to the"
        " busier node instead of\n  paying a consensus round.\n"
    )

    print(RULE)
    print("3. Spender races: only contended cross-node conflicts pay")
    print(RULE)
    items = TokenWorkloadGenerator(
        ACCOUNTS, seed=7, mix=SPENDER_HEAVY_MIX
    ).generate(OPS)
    token, cluster = fresh_cluster()
    _, _, stats = cluster.run_workload(items)
    show("4 nodes, approve/transferFrom-heavy:", stats)
    print(
        "  Synchronization groups confined to one owner are sequenced"
        " locally for\n  free; only the races spanning two owners went"
        " through the shared\n  total-order lane — and only they paid its"
        " quadratic message bill."
    )


if __name__ == "__main__":
    main()
