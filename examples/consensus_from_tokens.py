#!/usr/bin/env python3
"""Algorithm 1 in action: wait-free consensus from an ERC20 token.

Demonstrates the paper's Theorem 2 construction end to end:

1. deploy a token (consensus number 1);
2. escalate into a synchronization state ``q ∈ S_k`` via approvals (Eq. 12 —
   note this preparation itself is not wait-free);
3. run Algorithm 1 among the k enabled spenders under several adversarial
   schedules, including crashes;
4. exhaustively model-check the construction for k = 2 and 3 (every
   interleaving, every crash pattern with one crash).

Run:  python examples/consensus_from_tokens.py
"""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


def run_one(k: int) -> None:
    proposals = {pid: f"proposal-of-p{pid}" for pid in range(k)}
    print(f"\n--- k = {k}: race among {k} enabled spenders ---")

    # The owner running solo wins its own race.
    result = run_system(algorithm1_system(proposals), SoloScheduler(range(k)))
    print(f"solo owner schedule  -> decided {set(result.decisions.values())}")

    # Random schedules: different winners, always agreement.
    winners = set()
    for seed in range(12):
        result = run_system(algorithm1_system(proposals), RandomScheduler(seed))
        values = set(result.decisions.values())
        assert len(values) == 1, "agreement must hold"
        winners |= values
    print(f"12 random schedules  -> winners observed: {len(winners)} distinct")

    # Crashy schedules: wait-freedom for the survivors.
    survivors_decided = 0
    for seed in range(12):
        scheduler = RandomScheduler(
            seed, crash_probability=0.2, crash_budget=k - 1
        )
        result = run_system(algorithm1_system(proposals), scheduler)
        correct = set(range(k)) - result.crashed
        assert set(result.decisions) == correct
        survivors_decided += len(result.decisions)
    print(f"12 crashy schedules  -> every survivor decided "
          f"({survivors_decided} decisions total)")


def model_check(k: int, crash_budget: int) -> None:
    proposals = {pid: pid for pid in range(k)}
    explorer = ScheduleExplorer(
        lambda: algorithm1_system(proposals), crash_budget=crash_budget
    )
    report = explorer.explore(checks=[consensus_checks(proposals)])
    status = "OK" if report.ok else f"{len(report.violations)} VIOLATIONS"
    print(
        f"k={k} crash_budget={crash_budget}: "
        f"{report.configs} configurations, "
        f"{report.executions} distinct completions -> {status}; "
        f"reachable decisions = {sorted(report.outcomes)}"
    )
    assert report.ok


def main() -> None:
    print("=" * 72)
    print("Algorithm 1: consensus from an ERC20 token in a synchronization")
    print("state (Theorem 2)")
    print("=" * 72)

    for k in (1, 2, 3, 5):
        run_one(k)

    print("\n--- exhaustive model checking (every interleaving) ---")
    model_check(2, crash_budget=0)
    model_check(2, crash_budget=1)
    model_check(3, crash_budget=0)
    print("\nAll checks passed: the construction is wait-free consensus.")


if __name__ == "__main__":
    main()
