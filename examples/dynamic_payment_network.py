#!/usr/bin/env python3
"""The paper's §7 vision, running: a consensus-free token network whose
synchronization adapts per account to the current state.

Simulates (virtual time) two deployments executing the same workload:

* **total-order ledger** — every operation goes through a global 3-phase
  quorum protocol (today's blockchains);
* **dynamic token network** — `transfer`/`approve` ride on plain reliable
  broadcast; `transferFrom` coordinates only within the source account's
  enabled-spender group σ_q(a).

Prints messages/op and latency for both, plus the evolution of the
synchronization groups.

Run:  python examples/dynamic_payment_network.py
"""

from __future__ import annotations

import random

from repro.dynamic.dynamic_token import (
    DynamicTokenNode,
    assert_converged,
    measure_dynamic,
)
from repro.ledger.blockchain import build_ledger, measure_ledger
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import Operation


def build_traffic(n: int, ops: int, seed: int):
    """A mixed workload: funding, approvals, then owner+spender traffic."""
    rng = random.Random(seed)
    traffic = []
    for actor in range(n):
        traffic.append(("approve", actor, ((actor + 1) % n, 25)))
    for _ in range(ops):
        actor = rng.randrange(n)
        if rng.random() < 0.3:
            source = (actor - 1) % n
            traffic.append(
                (
                    "transferFrom",
                    actor,
                    (source, rng.randrange(n), rng.randint(1, 3)),
                )
            )
        else:
            traffic.append(
                ("transfer", actor, (rng.randrange(n), rng.randint(1, 3)))
            )
    return traffic


def run_dynamic(n: int, traffic, seed: int):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = [
        DynamicTokenNode(i, network, n, supply=100 * n, track_groups=(i == 0))
        for i in range(n)
    ]
    for dest in range(1, n):
        nodes[0].submit_transfer(dest, 100)
    simulator.run()
    for kind, actor, args in traffic:
        if kind == "transfer":
            nodes[actor].submit_transfer(*args)
        elif kind == "approve":
            nodes[actor].submit_approve(*args)
        else:
            nodes[actor].submit_transfer_from(*args)
    simulator.run()
    assert_converged(nodes)
    return measure_dynamic(nodes), nodes[0].tracker


def run_ledger(n: int, traffic, seed: int):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = build_ledger(
        network, n, ERC20TokenType(n, total_supply=100 * n), max_batch=1
    )
    submissions = {}
    for dest in range(1, n):
        tx = nodes[0].submit_operation(0, Operation("transfer", (dest, 100)))
        submissions[tx] = simulator.now
    for kind, actor, args in traffic:
        operation = Operation(kind, args)
        tx = nodes[actor].submit_operation(actor, operation)
        submissions[tx] = simulator.now
    simulator.run()
    return measure_ledger(nodes, submissions)


def main() -> None:
    n, ops, seed = 7, 80, 11
    traffic = build_traffic(n, ops, seed)

    print("=" * 72)
    print(f"Same workload ({len(traffic)} ops, {n} nodes), two architectures")
    print("=" * 72)

    dynamic_stats, tracker = run_dynamic(n, traffic, seed)
    ledger_stats = run_ledger(n, traffic, seed)

    print(f"\n{'':24} {'dynamic (§7)':>14} {'total order':>14}")
    print(f"{'operations':<24} {dynamic_stats.operations:>14} {ledger_stats.operations:>14}")
    print(
        f"{'messages / op':<24} {dynamic_stats.messages_per_op:>14.1f} "
        f"{ledger_stats.messages_per_op:>14.1f}"
    )
    print(
        f"{'mean latency (ms)':<24} {dynamic_stats.mean_latency:>14.2f} "
        f"{ledger_stats.mean_latency:>14.2f}"
    )
    print(
        f"{'p99 latency (ms)':<24} {dynamic_stats.p99_latency:>14.2f} "
        f"{ledger_stats.p99_latency:>14.2f}"
    )
    print(
        f"{'makespan (ms)':<24} {dynamic_stats.makespan:>14.2f} "
        f"{ledger_stats.makespan:>14.2f}"
    )

    print("\nSynchronization groups over time (node 0's view):")
    histogram = tracker.level_histogram()
    for level in sorted(histogram):
        print(f"  group size {level}: {histogram[level]:>5} account-samples")
    print(f"  largest group ever needed: {tracker.max_level_seen()} "
          f"(out of {n} nodes)")

    print("\nThe dynamic network pays coordination only where the theory says")
    print("it must: inside each account's enabled-spender group — never")
    print("globally.  The total-order baseline pays the full quorum protocol")
    print("for every single transfer.")


if __name__ == "__main__":
    main()
