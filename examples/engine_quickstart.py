#!/usr/bin/env python3
"""Engine quickstart: the paper's trichotomy as an execution strategy.

Feeds ERC20 traffic through the commutativity-aware engine
(:mod:`repro.engine`) and shows the pipeline —

    mempool -> classify -> shard -> execute -> escalate

— on three workloads: the paper's Example 1 (watch the approve /
transferFrom race get escalated to consensus), a conflict-free owner-only
workload (the consensus-number-1 regime: parallel lanes, zero messages),
and a spender-heavy workload (synchronization groups paying for total
order).

Run:  python examples/engine_quickstart.py
"""

from __future__ import annotations

from repro.config import EngineConfig
from repro.engine import BatchExecutor
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    example1_trace,
)

RULE = "=" * 72


def show(title: str, stats) -> None:
    print(f"  {title}")
    print(
        f"    ops={stats.ops_executed}  rounds={stats.waves}  "
        f"fast-path={stats.fast_path_rate:.0%}  "
        f"escalated={stats.escalation_rate:.0%}"
    )
    print(
        f"    virtual time={stats.virtual_time:.1f}  "
        f"(serial would be {stats.serial_virtual_time:.1f})  "
        f"speedup={stats.speedup:.2f}x  "
        f"consensus messages={stats.escalation_messages}"
    )


def main() -> None:
    print(RULE)
    print("1. Example 1 (paper §4) through the engine")
    print(RULE)
    token = ERC20TokenType(3, total_supply=10)
    engine = BatchExecutor(
        token, EngineConfig(num_lanes=2, window=4, validate=True)
    )
    state, responses, stats = engine.run_workload(example1_trace())
    print(f"  responses: {responses}  (paper: [True, True, False, True])")
    print(f"  final balances: {list(state.balances)}  (paper: [8, 2, 0])")
    show("execution:", stats)
    print(
        "  Charlie's transferFroms race Bob's approval on one allowance"
        " cell ->\n  that synchronization group paid for total order;"
        " Alice's opening\n  transfer merely kept its queue position, free"
        " of consensus.\n"
    )

    print(RULE)
    print("2. Owner-only traffic: the consensus-number-1 regime")
    print(RULE)
    token = ERC20TokenType(32, total_supply=3200)
    engine = BatchExecutor(token, num_lanes=8, window=64, validate=True)
    items = TokenWorkloadGenerator(32, seed=7, mix=OWNER_ONLY_MIX).generate(400)
    _, _, stats = engine.run_workload(items)
    show("8 lanes, 400 ops:", stats)
    assert stats.escalation_messages == 0
    print(
        "  Every operation is a transfer by its account's single owner or"
        " a read:\n  no pair ever contends, so the engine never touches"
        " consensus.\n"
    )

    print(RULE)
    print("3. Spender-heavy traffic: synchronization groups pay for order")
    print(RULE)
    token = ERC20TokenType(32, total_supply=3200)
    engine = BatchExecutor(token, num_lanes=8, window=64, validate=True)
    items = TokenWorkloadGenerator(
        32, seed=7, mix=SPENDER_HEAVY_MIX
    ).generate(400)
    _, _, stats = engine.run_workload(items)
    show("8 lanes, 400 ops (shipped defaults):", stats)
    # The historical PR 1-8 behavior — chain-atomic scheduling, barrier
    # rounds, always-global escalation — is one preset away, bit for bit.
    legacy = BatchExecutor(
        ERC20TokenType(32, total_supply=3200),
        EngineConfig.legacy(num_lanes=8, window=64, validate=True),
    )
    _, _, legacy_stats = legacy.run_workload(items)
    show("same run, EngineConfig.legacy():", legacy_stats)
    print(
        "  approve/transferFrom races (Theorem 3, Case 4) and multi-spender"
        "\n  accounts form synchronization groups: exactly those operations"
        "\n  are escalated — by default to right-sized team lanes"
        "\n  (team_threshold=4), under legacy() to the global broadcast and"
        "\n  its quadratic message bill."
    )


if __name__ == "__main__":
    main()
