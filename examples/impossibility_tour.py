#!/usr/bin/env python3
"""A tour of the impossibility machinery (Theorem 3 and its toolbox).

1. The commutativity case analysis: mechanically regenerate the case split
   of Theorem 3's proof (which operation pairs commute, which are read-only,
   which genuinely conflict) at a synchronization state.
2. The erratum: the paper's literal predicate U admits states where
   Algorithm 1 violates validity; the explorer finds the bad schedule.
3. FLP in miniature: a register-only consensus attempt and the interleaving
   that breaks it.

Run:  python examples/impossibility_tour.py
"""

from __future__ import annotations

from repro.analysis.commutativity import (
    Invocation,
    analyze_pair,
    erc20_case_label,
)
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.protocols.base import consensus_checks
from repro.protocols.register_consensus import doomed_register_system
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.explorer import ScheduleExplorer
from repro.spec.operation import op


def demo_case_analysis() -> None:
    print("--- Theorem 3's case analysis, machine-checked ---")
    token = ERC20TokenType(3, total_supply=0)
    # A synchronization state: account 0 with 10 tokens, spenders 1 and 2.
    state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
    pairs = [
        (
            Invocation(1, op("balanceOf", 0)),
            Invocation(2, op("transferFrom", 0, 2, 10)),
        ),
        (
            Invocation(0, op("approve", 1, 3)),
            Invocation(1, op("approve", 0, 3)),
        ),
        (
            Invocation(0, op("transfer", 1, 10)),
            Invocation(0, op("transfer", 2, 10)),
        ),
        (
            Invocation(1, op("transferFrom", 0, 1, 10)),
            Invocation(2, op("transferFrom", 0, 2, 10)),
        ),
        (
            Invocation(0, op("transfer", 1, 10)),
            Invocation(2, op("transferFrom", 0, 2, 10)),
        ),
        (
            Invocation(0, op("approve", 1, 3)),
            Invocation(1, op("transferFrom", 0, 1, 10)),
        ),
    ]
    print(f"{'pair':<58} {'kind':<10} case")
    for first, second in pairs:
        analysis = analyze_pair(token, state, first, second)
        rendered = f"{first} / {second}"
        print(
            f"{rendered:<58} {analysis.kind.value:<10} "
            f"{erc20_case_label(first, second)}"
        )
    print(
        "\nOnly races between enabled spenders of the SAME account conflict —"
    )
    print("exactly the pairs the proof's decision steps must be.")


def demo_erratum() -> None:
    print("\n--- the U-predicate erratum (reproduction note 1) ---")
    state = TokenState.create([10, 0], {(0, 1): 11})
    print("state: balance(a0) = 10, allowance(a0, p1) = 11")
    print("the paper's U holds (|sigma| <= 2 branch), but p1's transferFrom")
    print("of its full allowance can never succeed (11 > 10)...")
    proposals = {0: "owner-value", 1: "spender-value"}
    factory = lambda: algorithm1_system(proposals, state=state, strict=False)
    report = ScheduleExplorer(factory).explore(
        checks=[consensus_checks(proposals)]
    )
    print(f"exhaustive exploration: {len(report.violations)} violations, e.g.")
    print(f"  {report.violations[0]}")
    print("the strengthened predicate U* (0 < allowance <= balance) excludes")
    print("this state; under U* the explorer finds no violation (see tests).")


def demo_flp() -> None:
    print("\n--- FLP in miniature: registers cannot solve consensus ---")
    proposals = {0: 2, 1: 1}
    report = ScheduleExplorer(
        lambda: doomed_register_system(proposals)
    ).explore(checks=[consensus_checks(proposals)])
    print("a natural write/read/decide protocol over atomic registers:")
    print(f"  {report.executions} distinct completions explored")
    print(f"  violations found: {len(report.violations)}")
    print(f"  e.g. {report.violations[0]}")
    print("no decision rule survives every interleaving — consensus number")
    print("of registers is 1, the floor of the hierarchy the token climbs.")


def main() -> None:
    print("=" * 72)
    print("Impossibility machinery tour")
    print("=" * 72)
    demo_case_analysis()
    demo_erratum()
    demo_flp()


if __name__ == "__main__":
    main()
