#!/usr/bin/env python3
"""§6 extensions: consensus races on ERC721 (NFTs) and ERC777 (operators).

1. A one-of-a-kind NFT with several approved operators becomes a consensus
   object: everyone races ``transferFrom`` on the same ``tokenId`` and the
   winner is read off ``ownerOf`` — e.g. a decentralized auction settlement
   where the winning bid is whichever settlement transaction lands.
2. An ERC777 holder's operators race with ``operatorSend``; with unbounded
   operator rights, the unique-transfer predicate holds automatically.

Both constructions are exhaustively model-checked for small k.

Run:  python examples/nft_race.py
"""

from __future__ import annotations

from repro.analysis.valency import ValencyAnalyzer
from repro.protocols.base import consensus_checks
from repro.protocols.erc721_consensus import erc721_consensus_system
from repro.protocols.erc777_consensus import erc777_consensus_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler


def demo_erc721() -> None:
    print("--- ERC721: the NFT settlement race ---")
    bids = {0: "artist keeps it", 1: "bid: 5 ETH", 2: "bid: 7 ETH"}
    winners = {}
    for seed in range(10):
        system = erc721_consensus_system(bids)
        result = run_system(system, RandomScheduler(seed))
        values = set(result.decisions.values())
        assert len(values) == 1
        winners[seed] = values.pop()
    print("settlements across 10 network schedules:")
    for seed, winner in winners.items():
        print(f"  schedule {seed}: token settles on {winner!r}")

    report = ScheduleExplorer(
        lambda: erc721_consensus_system(bids), crash_budget=0
    ).explore(checks=[consensus_checks(bids)])
    print(
        f"exhaustive check (k=3): {report.configs} configurations, "
        f"{'OK' if report.ok else 'VIOLATIONS'}"
    )
    assert report.ok


def demo_erc777() -> None:
    print("\n--- ERC777: the operator race ---")
    proposals = {0: "holder", 1: "operator-1", 2: "operator-2"}
    report = ScheduleExplorer(
        lambda: erc777_consensus_system(proposals, balance=42)
    ).explore(checks=[consensus_checks(proposals)])
    print(
        f"exhaustive check (k=3, balance 42): {report.configs} "
        f"configurations, {'OK' if report.ok else 'VIOLATIONS'}; "
        f"reachable outcomes: {sorted(report.outcomes)}"
    )
    assert report.ok
    print("note: no allowance bookkeeping was needed — operators may spend")
    print("the whole balance, so the unique-winner property is automatic.")


def demo_valency() -> None:
    print("\n--- the proof machinery, watching the NFT race ---")
    analyzer = ValencyAnalyzer(
        lambda: erc721_consensus_system({0: "A", 1: "B"})
    )
    print(f"initial configuration bivalent: {analyzer.initial_is_bivalent()}")
    criticals = analyzer.find_critical_configurations(max_results=1)
    critical = criticals[0]
    print("critical configuration found; pending operations:")
    for pid, pending in sorted(critical.pending.items()):
        print(f"  p{pid}: {pending}")
    print("each successor is univalent:")
    for pid, valence in sorted(critical.successor_valences.items()):
        print(f"  if p{pid} steps first -> {valence}")


def main() -> None:
    print("=" * 72)
    print("Token standards beyond ERC20 (paper §6)")
    print("=" * 72)
    demo_erc721()
    demo_erc777()
    demo_valency()


if __name__ == "__main__":
    main()
