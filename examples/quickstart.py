#!/usr/bin/env python3
"""Quickstart: the paper's Example 1 plus the headline analysis.

Walks through the exact execution of Example 1 (§4) on the sequential ERC20
object, printing the state after every operation, then shows the library's
core analysis entry points: enabled spenders, the Q_k partition, and the
(dynamic!) consensus number of the token at each state.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ERC20Token, classify, enabled_spenders, token_consensus_number
from repro.workloads import EXAMPLE1_RESPONSES, example1_trace

NAMES = {0: "Alice", 1: "Bob", 2: "Charlie"}


def describe(token: ERC20Token) -> str:
    state = token.state
    classification = classify(state)
    spenders = {
        NAMES[a]: sorted(NAMES[p] for p in enabled_spenders(state, a))
        for a in range(3)
    }
    return (
        f"    balances = {list(state.balances)}  "
        f"(Alice, Bob, Charlie)\n"
        f"    enabled spenders σ_q = {spenders}\n"
        f"    partition cell Q_k: k(q) = {classification.level}; "
        f"certified consensus number = {token_consensus_number(state)}"
    )


def main() -> None:
    print("=" * 72)
    print("Example 1 (paper §4): Alice deploys an ERC20 token, supply 10")
    print("=" * 72)

    token = ERC20Token(num_accounts=3, total_supply=10, deployer=0)
    print("q0: initial state")
    print(describe(token))

    steps = example1_trace()
    commentary = [
        "Alice sends Bob 3 tokens",
        "Bob approves Charlie for up to 5 tokens",
        "Charlie tries to take 5 from Bob — Bob only has 3, so this FAILS",
        "Charlie moves 1 token from Bob to Alice using his allowance",
    ]
    for index, (item, comment, expected) in enumerate(
        zip(steps, commentary, EXAMPLE1_RESPONSES), start=1
    ):
        response = token.invoke(item.pid, item.operation)
        assert response == expected, "the trace must match the paper"
        print(
            f"\nq{index}: {NAMES[item.pid]}: {item.operation}  ->  {response}"
        )
        print(f"    ({comment})")
        print(describe(token))

    print()
    print("=" * 72)
    print("The headline result, visible above: after Bob's approve, Bob's")
    print("account has TWO enabled spenders (Bob and Charlie), so the token's")
    print("consensus number rose from 1 to 2 — and it dropped back related to")
    print("how the allowance was consumed.  The synchronization power of the")
    print("ERC20 object is a property of its *state*.")
    print("=" * 72)


if __name__ == "__main__":
    main()
