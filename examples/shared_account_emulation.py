#!/usr/bin/env python3
"""Algorithm 2 in action: a restricted ERC20 token built from k-AT.

Demonstrates the paper's Theorem 4 construction:

1. build the emulated token ``T|_{Q_k}`` from a k-shared asset-transfer
   object plus allowance registers;
2. replay the paper's Example 1 through the emulation and compare against
   the sequential Definition 3 specification, operation by operation;
3. show the Q_k confinement: approving a spender beyond ``k`` is rejected;
4. exhibit the literal algorithm's quirks the reproduction uncovered
   (allowance leak on failed transfers; the over-strict approve guard).

Run:  python examples/shared_account_emulation.py
"""

from __future__ import annotations

from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.restricted import restrict_to_potential_qk
from repro.protocols.token_from_kat import EmulatedToken, run_sequential
from repro.spec.operation import Operation

NAMES = {0: "Alice", 1: "Bob", 2: "Charlie", 3: "Dora"}


def main() -> None:
    print("=" * 72)
    print("Algorithm 2: the token T|Q_k emulated from k-AT + registers")
    print("=" * 72)

    n, k = 4, 2
    initial = TokenState.deploy(n, 10)
    spec = restrict_to_potential_qk(ERC20TokenType(n), k)
    spec_state = initial
    emulated = EmulatedToken(initial, k=k, variant="corrected")

    script = [
        (0, "transfer", "transfer", (1, 3)),
        (1, "approve", "approve", (2, 5)),
        (2, "transferFrom", "transfer_from", (1, 2, 5)),
        (2, "transferFrom", "transfer_from", (1, 0, 1)),
        (1, "approve", "approve", (3, 2)),  # beyond k=2 -> rejected
        (0, "balanceOf", "balance_of", (1,)),
        (0, "allowance", "allowance", (1, 2)),
        (0, "totalSupply", "total_supply", ()),
    ]
    print(f"\nDifferential replay (n={n} accounts, k={k}):")
    print(f"{'caller':<8} {'operation':<28} {'spec':>6} {'emulated':>9}")
    for pid, spec_name, method, args in script:
        spec_state, expected = spec.apply(
            spec_state, pid, Operation(spec_name, args)
        )
        actual = run_sequential(emulated, pid, method, *args)
        rendered = f"{spec_name}{args}"
        print(
            f"{NAMES[pid]:<8} {rendered:<28} {str(expected):>6} {str(actual):>9}"
        )
        assert actual == expected, "the emulation must track the spec"

    print("\nNote the 5th row: Bob already has one approved spender, so the")
    print(f"emulation (confined to Q_{k}) rejects approving a second one —")
    print("the k-AT substrate simply cannot synchronize more processes.")

    print("\n--- the literal algorithm's quirks (reproduction notes 3/4) ---")
    leaky_state = TokenState.create([0, 3, 0, 0], {(1, 2): 5})
    literal = EmulatedToken(leaky_state, k=2, variant="literal")
    response = run_sequential(literal, 2, "transfer_from", 1, 2, 5)
    leaked = run_sequential(literal, 2, "allowance", 1, 2)
    print(f"literal transferFrom with balance 3 < allowance 5 -> {response}")
    print(f"allowance afterwards: {leaked}  (leaked! the paper's line 10")
    print("decrements before the balance check and never restores)")

    corrected = EmulatedToken(leaky_state, k=2, variant="corrected")
    run_sequential(corrected, 2, "transfer_from", 1, 2, 5)
    restored = run_sequential(corrected, 2, "allowance", 1, 2)
    print(f"corrected variant restores the allowance: {restored}")


if __name__ == "__main__":
    main()
