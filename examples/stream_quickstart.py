#!/usr/bin/env python3
"""Streaming quickstart: drive an open-loop arrival stream, window it.

Every other example feeds its workload at virtual time zero; this one
opens the loop.  A Poisson arrival process stamps a Zipf-skewed ERC20
workload with seeded arrival times, a :class:`repro.workloads.
StreamDriver` feeds it into the pipelined engine at ~2.5x the engine's
measured capacity, and the run's telemetry is windowed two ways:

* **live** — a :class:`repro.obs.TimeSeries` attached to the tracer's
  metrics registry before driving, collecting per-window commit counts
  and latency histograms as they happen;
* **post-hoc** — ``TimeSeries.from_trace`` rebuilding the same windows
  (plus per-window busy/stall occupancy) from the completed trace.

Both satisfy the conservation guarantee — window sums reproduce the
unwindowed totals exactly, ``check()`` raises otherwise — and an
:class:`repro.obs.SLOMonitor` turns the windows into a verdict: under
sustained overload the per-window p99 climbs without bound, so the
error budget burns out and ``report.met`` flips false.

Latency is commit − arrival in virtual time; no wall clock anywhere.

Run:  python examples/stream_quickstart.py
"""

from __future__ import annotations

from repro.engine import PipelinedExecutor
from repro.obs import SLOMonitor, TimeSeries, TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    StreamDriver,
    TokenWorkloadGenerator,
    poisson_arrivals,
)

RULE = "=" * 72
BLOCKS = " ▁▂▃▄▅▆▇█"

ACCOUNTS = 48
OPS = 320
OVERLOAD = 2.5


def sparkline(values: list[float]) -> str:
    peak = max(values, default=0.0)
    if peak <= 0:
        return " " * len(values)
    top = len(BLOCKS) - 1
    return "".join(BLOCKS[round(v / peak * top)] for v in values)


def make_engine(tracer: TraceRecorder | None = None) -> PipelinedExecutor:
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    return PipelinedExecutor(
        token, num_lanes=8, pipeline_depth=4, seed=29, tracer=tracer
    )


def make_items(ops: int):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=29, zipf_s=0.9
    ).generate(ops)


def main() -> None:
    print(RULE)
    print("open-loop streaming quickstart: arrivals, windows, SLOs")
    print(RULE)

    # Closed-loop capacity first: the saturation reference.
    _, _, closed = make_engine().run_workload(make_items(OPS))
    capacity = closed.throughput
    rate = OVERLOAD * capacity
    print(f"\nclosed-loop capacity {capacity:.3f} op/t; offering "
          f"{rate:.3f} op/t ({OVERLOAD}x — a sustained overload)")

    # Drive the stream.  The live series attaches before the first
    # arrival so its windows cover the whole run.
    tracer = TraceRecorder()
    live = TimeSeries(width=12.0).attach(tracer.metrics)
    engine = make_engine(tracer=tracer)
    arrivals = poisson_arrivals(make_items(OPS), rate, seed=29)
    report = StreamDriver(engine, arrivals).run()
    print(f"offered {report.offered}, admitted {len(report.admitted)}, "
          f"dropped {report.dropped}; drained at t={report.makespan:.1f} "
          f"(last arrival t={arrivals[-1].time:.1f})")
    achieved = len(report.admitted) / report.makespan
    print(f"achieved {achieved:.3f} op/t — the saturation throughput; "
          f"the other {rate - achieved:.3f} op/t became queueing delay")

    # Conservation, both derivations: window sums == unwindowed totals.
    live.check()
    post = TimeSeries.from_trace(tracer, 12.0).check()
    print(f"\nboth series pass check(): {live.window_count} live / "
          f"{post.window_count} post-hoc windows conserve every total")

    committed = post.counter_series("ops_committed")
    p99s = post.percentile_series("op_latency", 0.99)
    print(f"  committed/window |{sparkline(committed)}| "
          f"peak {max(committed):.0f}")
    print(f"  p99/window       |{sparkline(p99s)}| peak {max(p99s):.1f}")
    busy = post.occupancy_series("execute")
    print(f"  execute occupancy|{sparkline(busy)}| "
          f"peak {max(busy):.1f} vt")

    # The verdict: a p99 objective sized for a healthy system, burned
    # through by the overload.
    monitor = SLOMonitor(target_p99=10.0, horizon=8, budget=0.25)
    verdict = monitor.scan(post, tracer=tracer)
    print(f"\nSLO p99 <= {monitor.target_p99:g}: "
          f"{len(verdict.breaches)} of {len(verdict.windows)} windows "
          f"breached, max burn {verdict.max_burn:.2f}x budget, "
          f"met={verdict.met}")
    print(f"breach instants recorded on the trace's 'slo' track: "
          f"{sum(1 for i in tracer.instants if i.track == 'slo')}")
    print(RULE)


if __name__ == "__main__":
    main()
