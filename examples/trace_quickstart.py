#!/usr/bin/env python3
"""Observability quickstart: trace a run, attribute its makespan.

Attaches a :class:`repro.obs.TraceRecorder` to the DAG-scheduling engine
on the chain-heavy administrated-token mix, then shows the three things
the observability layer produces from one traced run:

* **spans** — every operation's virtual-time execution interval on its
  lane, every sync phase, every recorded wait;
* **a Chrome trace** — the same spans exported as Chrome trace-event
  JSON, loadable in Perfetto or ``chrome://tracing`` (one track per
  lane, the engine's instants as markers);
* **makespan attribution** — a backward walk over the chained spans
  that partitions the end-to-end virtual time into execute / sync wait /
  frontier stall / lease wait / dispatch stall / network, summing to the
  makespan *exactly* (the report's ``check()`` enforces it).

The tracer is strictly optional: without one, the engine records nothing
and every stats dict is bit-identical to the untraced run.

Run:  python examples/trace_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.engine import BatchExecutor
from repro.obs import TraceRecorder, critical_path_report, write_chrome_trace
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import CHAIN_HEAVY_MIX, TokenWorkloadGenerator

RULE = "=" * 72

ACCOUNTS = 96
OPS = 384


def main() -> None:
    print(RULE)
    print("repro.obs quickstart: span tracing and makespan attribution")
    print(RULE)

    tracer = TraceRecorder()
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    engine = BatchExecutor(
        token, num_lanes=8, dag_scheduling=True, seed=7, tracer=tracer
    )
    items = TokenWorkloadGenerator(
        ACCOUNTS,
        seed=7,
        mix=CHAIN_HEAVY_MIX,
        hotspot_fraction=0.35,
        hotspot_accounts=4,
    ).generate(OPS)
    _, _, stats = engine.run_workload(items)

    print(f"\nran {stats.ops_executed} ops of the chain-heavy mix in "
          f"{stats.virtual_time:.1f} units of virtual time")
    print(f"recorded {len(tracer.spans)} spans and "
          f"{len(tracer.instants)} instants on "
          f"{len(tracer.tracks())} tracks")
    print(f"every submitted op reached commit: "
          f"{not tracer.unterminated()}")

    # One operation's recorded lifecycle, stage by stage.
    seq = next(iter(tracer.op_seqs))
    lifecycle = tracer.lifecycle(seq)
    print(f"\nlifecycle of op {seq} (virtual timestamps):")
    for stage, ts in lifecycle.items():
        print(f"  {stage:>9} @ {ts:.2f}")

    # The attribution report: the makespan, partitioned.
    report = critical_path_report(tracer)
    report.check()  # totals sum to the makespan exactly, or this raises
    print()
    print("\n".join(report.render()))

    # The Chrome trace: drop the file onto https://ui.perfetto.dev
    out = Path(tempfile.mkdtemp(prefix="repro_obs_")) / "trace.json"
    document = write_chrome_trace(
        tracer, out, metadata={"attribution": report.as_dict()}
    )
    events = document["traceEvents"]
    print(f"\nwrote {out}")
    print(f"  {len(events)} trace events; load it in Perfetto or "
          "chrome://tracing")
    print("  first event: "
          f"{json.dumps(events[0], sort_keys=True)}")

    # Per-op latency percentiles come from the tracer's metrics registry.
    latency = tracer.metrics.histogram("op_latency").summary()
    print(f"\nop commit latency: p50 {latency['p50']:.2f}  "
          f"p99 {latency['p99']:.2f}  mean {latency['mean']:.2f}  "
          f"over {latency['count']} ops")
    print(RULE)


if __name__ == "__main__":
    main()
