"""Bench-regression gate: compare a smoke run against its committed baseline.

Every CI bench job runs its benchmark with ``--smoke --out BENCH_<name>.json``
and then calls this script, which compares the run's *headline metrics*
(message bills, virtual-time makespans, escalation rates, throughput)
against the baseline committed under ``benchmarks/baselines/``.  A metric
drifting outside the tolerance band fails the job — the point is to catch
silent performance regressions (a scheduling change that doubles the
consensus bill, a lease policy that stops migrating) that the functional
suites cannot see.

The simulations are deterministic (seeded virtual-time discrete-event
runs), so on an unchanged tree every metric reproduces *exactly*; the
tolerance band (default ±25%, tighter for counters that must stay zero)
only leaves room for intentional small shifts.  Anything outside the band
should be a conscious decision:

**Re-baselining** (after a change that legitimately moves the numbers)::

    PYTHONPATH=src python scripts/check_bench.py --update-baselines

re-runs every benchmark in smoke mode and rewrites the committed
baselines under ``benchmarks/baselines/`` — both the metric JSON
(``BENCH_<name>.json``) and the baseline trace (``TRACE_<name>.json``).
Commit the updated JSON together with the change that caused it, with a
line in the commit message saying *why* the numbers moved.

**Explaining a failure**: with ``--explain``, a gate failure re-runs the
bench under the virtual-time tracer and diffs it against the committed
baseline trace (:mod:`repro.obs.diff`), printing the top category movers
behind the drift — *that* a metric moved becomes *where the time went*.
``--explain-out PATH`` writes the same lines for CI to upload as an
artifact.

Usage::

    python scripts/check_bench.py \
        <engine|cluster|sync|pipeline|dag|stream|faults> \
        --run BENCH_<name>.json [--baseline PATH] [--tolerance 0.25] \
        [--explain [--explain-out PATH]]
    python scripts/check_bench.py --update-baselines [bench ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: Headline metrics per bench, as dotted paths into the result JSON.
#: ``zero`` metrics are invariants (must match the baseline exactly —
#: in practice: stay zero); the rest use the relative tolerance band.
METRICS: dict[str, dict[str, list[str]]] = {
    "engine": {
        "band": [
            "mixes.owner_only.speedup",
            "mixes.owner_only.sharded.throughput",
            "mixes.default.sharded.virtual_time",
            "mixes.spender_heavy.sharded.escalation_rate",
            "mixes.spender_heavy.sharded.escalation_messages",
            "mixes.approval_heavy.sharded.escalation_messages",
            "op_latency.sharded_engine.p50",
            "op_latency.sharded_engine.p99",
        ],
        "zero": [
            "mixes.owner_only.sharded.escalation_messages",
        ],
    },
    "stream": {
        "band": [
            "layers.engine.capacity",
            "layers.engine.levels.hi.throughput",
            "layers.engine.levels.hi.latency.p99",
            "layers.pipelined.capacity",
            "layers.pipelined.levels.hi.throughput",
            "layers.pipelined.levels.hi.latency.p99",
            "layers.cluster.capacity",
            "layers.cluster.levels.hi.throughput",
            "layers.cluster.levels.lo.latency.p99",
            "layers.cluster.levels.hi.slo.breach_windows",
        ],
        "zero": [
            "layers.engine.levels.lo.stream.dropped",
            "layers.pipelined.levels.lo.stream.dropped",
            "layers.cluster.levels.lo.stream.dropped",
        ],
    },
    "cluster": {
        "band": [
            "mixes.owner_only.cluster.4.makespan",
            "mixes.owner_only.cluster.4.throughput",
            "mixes.owner_only.cluster.4.cluster_messages",
            "mixes.spender_heavy.cluster.4.escalation_rate",
            "mixes.spender_heavy.cluster.4.escalation_messages",
            "mixes.default.cluster.4.lease_migrations",
            "owner_local.4.makespan",
            "op_latency.cluster_4.p50",
            "op_latency.cluster_4.p99",
        ],
        "zero": [
            "owner_local.4.escalation_messages",
            "owner_local.4.lease_migrations",
        ],
    },
    "sync": {
        "band": [
            "engine.global.escalation_messages",
            "engine.tiered.escalation_messages",
            "engine.tiered.virtual_time",
            "engine.tiered.escalation_rate",
            "cluster.global.makespan",
            "cluster.tiered.makespan",
            "multi_contract.tiered.messages",
            "op_latency.tiered_engine.p50",
            "op_latency.tiered_engine.p99",
        ],
        "zero": [],
    },
    "pipeline": {
        "band": [
            "engine.approval_heavy.barrier.virtual_time",
            "engine.approval_heavy.pipelined.3.virtual_time",
            "default_vs_legacy.approval_heavy.speedup",
            "cluster.owner_only.4.makespan_ratio",
            "cluster.approval_heavy.4.makespan_ratio",
            "cluster.approval_heavy.4.pipelined.makespan",
            "cluster.approval_heavy.4.pipelined.escalation_messages",
            "op_latency.pipelined_engine.p50",
            "op_latency.pipelined_engine.p99",
        ],
        "zero": [
            "cluster.owner_only.4.pipelined.escalation_messages",
        ],
    },
    "dag": {
        "band": [
            "engine.chain_heavy.atomic.virtual_time",
            "engine.chain_heavy.dag.virtual_time",
            "default_vs_legacy.chain_heavy.speedup",
            "default_vs_legacy.approval_heavy.speedup",
            "engine.chain_heavy.ratio",
            "engine.chain_heavy.dag.dag_speedup",
            "engine.approval_heavy.dag.virtual_time",
            "cluster.chain_heavy.4.ratio",
            "cluster.approval_heavy.4.dag.makespan",
            "cluster.chain_heavy.4.dag.units_dispatched",
            "op_latency.dag_engine.p50",
            "op_latency.dag_engine.p99",
        ],
        "zero": [
            "cluster.chain_heavy.4.atomic.units_dispatched",
        ],
    },
    "faults": {
        "band": [
            "reference.makespan",
            "schedules.single_crash.makespan",
            "schedules.crash_restart.makespan",
            "schedules.crash_restart.ops_replayed",
            "schedules.crash_restart.revocations",
            "schedules.crash_restart.recovery_makespan",
            "schedules.rolling.ops_replayed",
            "availability.2.makespan_ratio",
            "flash_crowd.makespan_ratio",
        ],
        "zero": [
            "schedules.armed_idle.ops_replayed",
            "schedules.armed_idle.revocations",
            "schedules.single_crash.ops_lost",
            "schedules.crash_restart.ops_lost",
            "schedules.rolling.ops_lost",
            "flash_crowd.ops_lost",
        ],
    },
}

DEFAULT_TOLERANCE = 0.25


def _bench_env(root: Path) -> dict[str, str]:
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return env


def update_baselines(benches: list[str]) -> int:
    """Re-run each benchmark in smoke mode and rewrite its committed
    baseline JSON *and* baseline trace — the one-command re-baselining
    path after a change that legitimately moves the numbers.  The trace
    (``TRACE_<bench>.json``) is what ``--explain`` diffs a failing run
    against, so the two baselines must always be regenerated together."""
    root = Path(__file__).resolve().parent.parent
    env = _bench_env(root)
    for bench in benches:
        baselines = root / "benchmarks" / "baselines"
        baseline = baselines / f"BENCH_{bench}.json"
        trace = baselines / f"TRACE_{bench}.json"
        print(f"re-baselining {bench} -> {baseline} + {trace}")
        result = subprocess.run(
            [
                sys.executable,
                str(root / "benchmarks" / f"bench_{bench}.py"),
                "--smoke",
                "--out",
                str(baseline),
                "--trace",
                str(trace),
            ],
            env=env,
            cwd=root,
        )
        if result.returncode != 0:
            print(f"re-baselining {bench} FAILED ({result.returncode})")
            return result.returncode
    print(f"updated {len(benches)} baseline(s); review and commit them")
    return 0


def explain_failure(
    bench: str, top: int = 3, out: Path | None = None
) -> list[str]:
    """Re-run the failing bench traced and diff it against the committed
    baseline trace: the gate said *that* a metric drifted, the trace diff
    says *where the virtual time went*.  Returns the explanation lines
    (also printed); a missing baseline trace degrades to a note rather
    than masking the original gate failure."""
    root = Path(__file__).resolve().parent.parent
    baseline_trace = (
        root / "benchmarks" / "baselines" / f"TRACE_{bench}.json"
    )
    if not baseline_trace.exists():
        lines = [
            f"no baseline trace for {bench} ({baseline_trace} missing); "
            "run --update-baselines to create it"
        ]
        print(lines[0])
        return lines
    lines = [
        f"explaining the {bench} regression: re-running traced and "
        f"diffing against {baseline_trace.name}"
    ]
    print(lines[0])
    with tempfile.TemporaryDirectory() as tmp:
        run_out = Path(tmp) / f"BENCH_{bench}.json"
        run_trace = Path(tmp) / f"TRACE_{bench}.json"
        result = subprocess.run(
            [
                sys.executable,
                str(root / "benchmarks" / f"bench_{bench}.py"),
                "--smoke",
                "--out",
                str(run_out),
                "--trace",
                str(run_trace),
            ],
            env=_bench_env(root),
            cwd=root,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            lines.append(
                f"traced re-run FAILED ({result.returncode}); no "
                f"explanation available"
            )
            lines.extend(result.stdout.splitlines()[-5:])
            print("\n".join(lines[1:]))
            return lines
        sys.path.insert(0, str(root / "src"))
        from repro.obs import explain_regression

        explanation = explain_regression(
            json.loads(baseline_trace.read_text()),
            json.loads(run_trace.read_text()),
            labels=("baseline", "run"),
        )
        if explanation.exact:
            explanation.check()
        lines.extend(explanation.render(top=top))
    print("\n".join(lines[1:]))
    if out is not None:
        out.write_text("\n".join(lines) + "\n")
        print(f"wrote {out}")
    return lines


#: Sentinel returned by :func:`lookup` for an absent or non-numeric
#: metric; :func:`compare` turns it into a per-key failure message
#: instead of an opaque KeyError traceback.
_MISSING = object()


def lookup(data: dict, path: str):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return _MISSING
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        return _MISSING
    return node


def _resolve(
    path: str, baseline: dict, run: dict, failures: list[str]
) -> "tuple[float, float] | None":
    """Look a metric up on both sides; on a missing/non-numeric key,
    append one self-explanatory failure per side and return None."""
    base, got = lookup(baseline, path), lookup(run, path)
    if base is _MISSING:
        failures.append(
            f"{path}: missing from the committed baseline — the METRICS "
            "list was extended (or the baseline predates it); "
            "re-baseline this bench and commit the updated JSON"
        )
    if got is _MISSING:
        failures.append(
            f"{path}: missing from the run output — the benchmark no "
            "longer emits this metric (or emits it non-numeric); update "
            "the METRICS list or restore the metric"
        )
    if base is _MISSING or got is _MISSING:
        return None
    return base, got


def _flatten(node, prefix: str = "") -> dict:
    """Flatten a nested dict to dotted-path -> leaf value."""
    if not isinstance(node, dict):
        return {prefix: node}
    flat: dict = {}
    for key, value in node.items():
        path = f"{prefix}.{key}" if prefix else key
        flat.update(_flatten(value, path))
    return flat


def compare_config(baseline: dict, run: dict) -> list[str]:
    """The self-describing-baseline check: every bench JSON embeds the
    active config surface (``EngineConfig``/``ClusterConfig`` defaults
    and their ``legacy()`` presets), and the gate refuses a run whose
    config block disagrees with the baseline's — a default flip must
    re-baseline, never silently move one number."""
    base_cfg, run_cfg = baseline.get("config"), run.get("config")
    if base_cfg is None and run_cfg is None:
        return []
    if base_cfg is None:
        return [
            "config: the committed baseline carries no config block "
            "(predates the unified config API); re-baseline this bench"
        ]
    if run_cfg is None:
        return [
            "config: the run output carries no config block — the "
            "benchmark bypassed bench_main's config recording"
        ]
    base_flat, run_flat = _flatten(base_cfg), _flatten(run_cfg)
    return [
        f"config.{key}: baseline {base_flat.get(key, '<absent>')!r}, "
        f"run {run_flat.get(key, '<absent>')!r} — the active config "
        "surface changed; re-baseline and commit the updated JSON"
        for key in sorted(set(base_flat) | set(run_flat))
        if base_flat.get(key, _MISSING) != run_flat.get(key, _MISSING)
    ]


def compare(
    bench: str, baseline: dict, run: dict, tolerance: float
) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    failures: list[str] = compare_config(baseline, run)
    spec = METRICS[bench]
    for path in spec["band"]:
        resolved = _resolve(path, baseline, run, failures)
        if resolved is None:
            continue
        base, got = resolved
        bound = tolerance * max(abs(base), 1e-9)
        if abs(got - base) > bound:
            failures.append(
                f"{path}: baseline {base:g}, run {got:g} "
                f"(drift {got - base:+g}, allowed ±{bound:g})"
            )
    for path in spec["zero"]:
        resolved = _resolve(path, baseline, run, failures)
        if resolved is None:
            continue
        base, got = resolved
        if got != base:
            failures.append(
                f"{path}: invariant metric changed — baseline {base:g}, "
                f"run {got:g}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a bench smoke run against its committed baseline"
    )
    parser.add_argument(
        "bench",
        nargs="*",
        metavar="bench",
        help=f"one of {', '.join(sorted(METRICS))}: the bench to gate "
        "(exactly one), or the benches to re-baseline (default: all) "
        "with --update-baselines",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="re-run the benchmarks in smoke mode and rewrite their "
        "committed baselines instead of gating",
    )
    parser.add_argument(
        "--run", type=Path, default=None, help="the smoke run's JSON output"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: benchmarks/baselines/BENCH_<name>.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance band (default %(default)s)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="on gate failure, re-run the bench traced and diff it "
        "against the committed baseline trace "
        "(benchmarks/baselines/TRACE_<name>.json), printing the top "
        "category movers behind the drift",
    )
    parser.add_argument(
        "--explain-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --explain: also write the explanation lines to PATH "
        "(CI uploads this as the failure artifact)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    for bench in args.bench:
        if bench not in METRICS:
            parser.error(
                f"unknown bench {bench!r} (choose from "
                f"{', '.join(sorted(METRICS))})"
            )
    if args.update_baselines:
        return update_baselines(args.bench or sorted(METRICS))
    if len(args.bench) != 1:
        parser.error("gating takes exactly one bench name")
    if args.run is None:
        parser.error("--run is required when gating")
    bench = args.bench[0]
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "baselines"
        / f"BENCH_{bench}.json"
    )
    baseline = json.loads(baseline_path.read_text())
    run = json.loads(args.run.read_text())
    failures = compare(bench, baseline, run, args.tolerance)
    spec = METRICS[bench]
    checked = len(spec["band"]) + len(spec["zero"])
    if failures:
        print(
            f"bench-regression gate FAILED for {bench} "
            f"({len(failures)}/{checked} metrics out of band):"
        )
        for failure in failures:
            print(f"  - {failure}")
        if args.explain:
            print()
            explain_failure(bench, out=args.explain_out)
        print(
            "\nIf the drift is intentional, re-baseline (see "
            "scripts/check_bench.py docstring) and commit the updated JSON."
        )
        return 1
    print(
        f"bench-regression gate OK for {bench}: {checked} headline "
        f"metrics within ±{args.tolerance:.0%} of "
        f"{baseline_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
