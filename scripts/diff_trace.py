"""Diff two exported traces and explain where the time moved.

The CLI face of :mod:`repro.obs.diff`: load two Chrome-trace-event
documents (typically a committed ``benchmarks/baselines/TRACE_*.json``
and a fresh ``--trace`` run of the same bench), reduce each to its run
profile, and print the ranked regression explanation — makespan delta
first, then the categories that moved it, each annotated with the track
that moved most and the per-op lifecycle stages that slowed.

For two full traces the per-category deltas re-partition the makespan
delta exactly (checked before printing); if either trace is sampled the
diff falls back to the exact additive occupancy totals and says so.

Usage::

    python scripts/diff_trace.py BASE_TRACE.json RUN_TRACE.json \
        [--top 3] [--json OUT.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Self-sufficient import path: CI invokes gate scripts without
# PYTHONPATH=src, and check_bench.py --explain shells out to the same
# code path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.obs import explain_regression  # noqa: E402


def diff_files(
    base_path: Path, run_path: Path, top: int | None
) -> tuple[list[str], dict]:
    """Diff two trace files; returns (render lines, as_dict payload)."""
    base = json.loads(base_path.read_text())
    run = json.loads(run_path.read_text())
    explanation = explain_regression(
        base, run, labels=(base_path.name, run_path.name)
    )
    if explanation.exact:
        explanation.check()
    return explanation.render(top=top), explanation.as_dict()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two exported traces and rank where the "
        "virtual time moved"
    )
    parser.add_argument(
        "base", type=Path, help="baseline trace JSON (the reference run)"
    )
    parser.add_argument(
        "run", type=Path, help="trace JSON of the run to explain"
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N largest category movers (default: all)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="OUT",
        help="also write the full explanation (categories, per-track "
        "deltas, lifecycle stages) as JSON",
    )
    parser.add_argument(
        "--fail-on-pct",
        type=float,
        default=None,
        metavar="N",
        help="exit 1 when any category's delta exceeds N%% of the "
        "baseline makespan (a budget on where the time is allowed to "
        "move, stricter than the gate's aggregate makespan band)",
    )
    args = parser.parse_args(argv)
    if args.top is not None and args.top < 1:
        parser.error("--top must be >= 1")
    if args.fail_on_pct is not None and args.fail_on_pct <= 0:
        parser.error("--fail-on-pct must be > 0")
    try:
        lines, payload = diff_files(args.base, args.run, args.top)
    except (OSError, json.JSONDecodeError, ReproError) as exc:
        print(f"trace diff FAILED: {exc}")
        return 1
    print("\n".join(lines))
    if args.json is not None:
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if args.fail_on_pct is not None:
        # The budget is relative to the baseline makespan (clamped to
        # 1 vt so a degenerate baseline cannot make it vacuous).
        budget = (
            args.fail_on_pct
            / 100.0
            * max(payload["base"]["makespan"], 1.0)
        )
        over = [
            delta
            for delta in payload["categories"]
            if abs(delta["delta"]) > budget
        ]
        if over:
            print(
                f"\ntrace diff FAILED --fail-on-pct {args.fail_on_pct:g}: "
                f"category deltas over {budget:.2f} vt "
                f"({args.fail_on_pct:g}% of the baseline makespan):"
            )
            for delta in over:
                print(
                    f"  - {delta['category']}: {delta['base']:.2f} -> "
                    f"{delta['run']:.2f} vt ({delta['delta']:+.2f})"
                )
            return 1
        print(
            f"\ntrace diff within budget: no category moved more than "
            f"{budget:.2f} vt ({args.fail_on_pct:g}% of the baseline "
            f"makespan)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
