"""CI series validator: windowed telemetry that provably sums up.

The ``stream`` job in the bench matrix runs the open-loop smoke bench
(``benchmarks/bench_stream.py``) and then this script on the resulting
``BENCH_stream.json``.  Every driven run embeds its
:meth:`repro.obs.TimeSeries.as_dict` export — dense per-window arrays
*plus* the unwindowed source totals — so the conservation guarantee can
be re-verified from the artifact alone, without re-running anything:

* **shape** — every per-window array (counters, gauges, histogram
  summaries, occupancy) is exactly ``windows`` long, with a positive
  window width;
* **conservation** — each counter's window sum equals its source
  total, each histogram's per-window counts sum to the source count
  (and the per-window ``mean * count`` masses to the source total),
  and each occupancy category's window sum equals the recorder's
  ``category_totals()`` entry — all within floating-point tolerance;
* **sanity** — no negative counts or occupancy, and every non-empty
  histogram window has ``min <= p50 <= p99 <= p999 <= max``.

A series document that fails any of these is lying about *when* the
run did its work, which is the entire point of the windowed export.

Usage::

    PYTHONPATH=src python scripts/validate_series.py BENCH_stream.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Relative tolerance for the conservation sums (floating-point
#: re-association across windows, not measurement slack).
TOLERANCE = 1e-6

#: Keys that make a mapping a TimeSeries.as_dict() export.
SERIES_KEYS = frozenset(
    {"width", "origin", "windows", "counters", "histograms", "totals"}
)


def find_series(node, path: str = "$"):
    """Yield ``(json_path, series_dict)`` for every embedded series
    export anywhere in the document (a bench JSON nests one per driven
    run; a bare export is itself one)."""
    if isinstance(node, dict):
        if SERIES_KEYS <= set(node):
            yield path, node
            return
        for key, value in node.items():
            yield from find_series(value, f"{path}.{key}")
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from find_series(value, f"{path}[{index}]")


def _close(actual: float, expected: float) -> bool:
    return abs(actual - expected) <= TOLERANCE * max(abs(expected), 1.0)


def _check_shape(series: dict, label: str) -> list[str]:
    failures: list[str] = []
    windows = series["windows"]
    if not isinstance(windows, int) or windows < 1:
        return [f"{label}: window count must be a positive integer"]
    if not series["width"] > 0:
        failures.append(f"{label}: window width must be positive")
    for group in ("counters", "gauges", "histograms", "occupancy"):
        for name, values in series.get(group, {}).items():
            if len(values) != windows:
                failures.append(
                    f"{label}: {group}[{name!r}] holds {len(values)} "
                    f"windows, the series declares {windows}"
                )
    return failures


def _check_counters(series: dict, label: str) -> list[str]:
    failures: list[str] = []
    totals = series["totals"].get("counters", {})
    for name, values in series.get("counters", {}).items():
        negative = [value for value in values if value < 0]
        if negative:
            failures.append(
                f"{label}: counter {name!r} has negative window "
                f"increments: {negative}"
            )
        if name not in totals:
            failures.append(
                f"{label}: counter {name!r} has windows but no source "
                f"total to conserve against"
            )
            continue
        if not _close(sum(values), totals[name]):
            failures.append(
                f"{label}: counter {name!r} windows sum to "
                f"{sum(values)!r}, source total is {totals[name]!r}"
            )
    return failures


def _check_histograms(series: dict, label: str) -> list[str]:
    failures: list[str] = []
    totals = series["totals"].get("histograms", {})
    for name, summaries in series.get("histograms", {}).items():
        count = 0.0
        mass = 0.0
        for index, summary in enumerate(summaries):
            if summary is None:
                continue
            count += summary["count"]
            mass += summary["mean"] * summary["count"]
            ordered = (
                summary["min"],
                summary["p50"],
                summary["p99"],
                summary["p999"],
                summary["max"],
            )
            if any(a > b + TOLERANCE for a, b in zip(ordered, ordered[1:])):
                failures.append(
                    f"{label}: histogram {name!r} window {index} has "
                    f"disordered quantiles min/p50/p99/p999/max = "
                    f"{ordered}"
                )
        if name not in totals:
            failures.append(
                f"{label}: histogram {name!r} has windows but no source "
                f"total to conserve against"
            )
            continue
        expected = totals[name]
        if not _close(count, expected["count"]):
            failures.append(
                f"{label}: histogram {name!r} window counts sum to "
                f"{count!r}, source count is {expected['count']!r}"
            )
        if not _close(mass, expected["total"]):
            failures.append(
                f"{label}: histogram {name!r} window masses sum to "
                f"{mass!r}, source total is {expected['total']!r}"
            )
    return failures


def _check_occupancy(series: dict, label: str) -> list[str]:
    failures: list[str] = []
    totals = series["totals"].get("occupancy", {})
    for category, values in series.get("occupancy", {}).items():
        negative = [value for value in values if value < 0]
        if negative:
            failures.append(
                f"{label}: occupancy {category!r} has negative windows: "
                f"{negative}"
            )
        if category not in totals:
            failures.append(
                f"{label}: occupancy {category!r} has windows the "
                f"source never recorded"
            )
            continue
        if not _close(sum(values), totals[category]):
            failures.append(
                f"{label}: occupancy {category!r} windows sum to "
                f"{sum(values)!r}, source total is {totals[category]!r}"
            )
    return failures


def validate(path: Path) -> list[str]:
    """Return a list of human-readable violations (empty = valid)."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not readable JSON: {exc}"]
    found = list(find_series(document))
    if not found:
        return [f"{path}: no embedded TimeSeries export found"]
    failures: list[str] = []
    for label, series in found:
        shape = _check_shape(series, label)
        failures.extend(shape)
        if shape:
            continue  # sums over misshapen arrays would just cascade
        failures.extend(_check_counters(series, label))
        failures.extend(_check_histograms(series, label))
        failures.extend(_check_occupancy(series, label))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="re-verify the conservation sums of every TimeSeries "
        "export embedded in the given JSON file(s)"
    )
    parser.add_argument(
        "series",
        type=Path,
        nargs="+",
        help="JSON file(s) holding TimeSeries exports (a bench JSON or "
        "a bare as_dict() dump)",
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.series:
        failures = validate(path)
        if failures:
            status = 1
            print(f"series validation FAILED for {path}:")
            for failure in failures:
                print(f"  - {failure}")
            continue
        found = list(find_series(json.loads(path.read_text())))
        windows = sum(series["windows"] for _, series in found)
        print(
            f"series OK: {path} ({len(found)} series, {windows} windows, "
            f"conservation sums verified)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
