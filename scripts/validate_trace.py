"""CI trace validator: schema plus exact makespan attribution.

The ``obs`` job in the bench matrix runs a traced smoke bench
(``--trace out.json``) and then this script, which enforces the two
observability invariants end to end:

* the exported document is valid Chrome trace-event JSON (checked by
  :func:`repro.obs.validate_chrome_trace` — required keys per event
  phase, numeric timestamps, non-negative durations), so the artifact
  actually loads in Perfetto / ``chrome://tracing``;
* the makespan attribution embedded in ``otherData.attribution``
  *partitions* the virtual-time makespan: the per-category totals sum
  to the makespan exactly (within floating-point tolerance).  An
  instrumentation change that double-charges or drops a wait breaks
  this sum before it misleads anyone reading the report.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import TraceExportError, validate_chrome_trace

#: Relative tolerance for the attribution sum (floating-point
#: accumulation over the backward walk, not measurement slack).
TOLERANCE = 1e-6


def validate(path: Path) -> list[str]:
    """Return a list of human-readable violations (empty = valid)."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not readable JSON: {exc}"]
    try:
        validate_chrome_trace(document)
    except TraceExportError as exc:
        return [f"{path}: invalid Chrome trace-event JSON: {exc}"]
    failures: list[str] = []
    attribution = document.get("otherData", {}).get("attribution")
    if attribution is None:
        return failures  # a bare trace without an embedded report is fine
    makespan = attribution["makespan"]
    attributed = sum(attribution["totals"].values())
    bound = TOLERANCE * max(abs(makespan), 1.0)
    if abs(attributed - makespan) > bound:
        failures.append(
            f"attribution totals do not partition the makespan: "
            f"sum {attributed!r} vs makespan {makespan!r} "
            f"(|difference| {abs(attributed - makespan):g} > {bound:g})"
        )
    negative = {
        category: total
        for category, total in attribution["totals"].items()
        if total < 0
    }
    if negative:
        failures.append(f"negative category totals: {negative}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate an exported Chrome trace and its embedded "
        "makespan attribution"
    )
    parser.add_argument(
        "trace", type=Path, nargs="+", help="trace JSON file(s) to check"
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.trace:
        failures = validate(path)
        if failures:
            status = 1
            print(f"trace validation FAILED for {path}:")
            for failure in failures:
                print(f"  - {failure}")
            continue
        document = json.loads(path.read_text())
        events = len(document["traceEvents"])
        attribution = document.get("otherData", {}).get("attribution")
        detail = (
            f", attribution sums to makespan "
            f"{attribution['makespan']:.4f}"
            if attribution is not None
            else ""
        )
        print(f"trace OK: {path} ({events} events{detail})")
    return status


if __name__ == "__main__":
    sys.exit(main())
