"""CI trace validator: schema plus exact makespan attribution.

The ``obs`` job in the bench matrix runs a traced smoke bench
(``--trace out.json``) and then this script, which enforces the
observability invariants end to end:

* the exported document is valid Chrome trace-event JSON (checked by
  :func:`repro.obs.validate_chrome_trace` — required keys per event
  phase, numeric timestamps, non-negative durations), so the artifact
  actually loads in Perfetto / ``chrome://tracing``;
* the makespan attribution embedded in ``otherData.attribution``
  *partitions* the virtual-time makespan: the per-category totals sum
  to the makespan exactly (within floating-point tolerance).  An
  instrumentation change that double-charges or drops a wait breaks
  this sum before it misleads anyone reading the report;
* each span's display-only ``wait:*`` boxes *tile* the interval before
  it — the rendered stalls are exactly the recorded stalls, back to
  back, ending at the span's start;
* **sampled** traces (``otherData.sampled`` true, from a ring-buffer
  recorder) are accepted with their own rules: the retained span count
  must actually be below the recorded count (a full trace claiming to
  be sampled is rejected), the exact ``category_totals`` must be
  present and must bound the occupancy recomputed from the retained
  spans, and a critical-path ``attribution`` must be *absent* — the
  walk needs every span, so a sampled document carrying one is lying;
* traces carrying a ``faults`` track (fault-injected runs; see
  :mod:`repro.faults`) must keep it well-formed: only the known
  crash / declared-dead / revoke / rejoin instants and off-chain
  ``recovery`` spans, each tagged with its node, rejoins only after a
  crash of the same node, and every recovery span anchored at a
  recorded failure event.  Absent the track, the check is a no-op.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py out.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from repro.obs import TraceExportError, validate_chrome_trace
from repro.obs.export import SCALE

#: Relative tolerance for the attribution sum (floating-point
#: accumulation over the backward walk, not measurement slack).
TOLERANCE = 1e-6


def _spans(document: dict):
    """The real span events: "X" phase, not a display-only wait box."""
    for event in document["traceEvents"]:
        if event["ph"] == "X" and not event["name"].startswith("wait:"):
            yield event


def _occupancy_from_events(document: dict) -> dict[str, float]:
    """Recompute the additive occupancy totals from the retained span
    events (chained spans' durations by category plus their recorded
    stall amounts) — the cross-check against ``category_totals``."""
    totals: dict[str, float] = {}
    for event in _spans(document):
        args = event.get("args", {})
        if args.get("chain") is False:
            continue
        category = event.get("cat", "execute")
        totals[category] = totals.get(category, 0.0) + (
            event["dur"] / SCALE
        )
        for stall_category, amount in args.get("stalls", []):
            totals[stall_category] = (
                totals.get(stall_category, 0.0) + float(amount)
            )
    return totals


def _check_wait_tiling(document: dict) -> list[str]:
    """Each span's ``wait:*`` boxes must tile ``[start − Σstalls,
    start)`` back to back on the span's own track — the rendered waits
    are the recorded ones, not an approximation."""
    failures: list[str] = []
    waits: dict[tuple, list[dict]] = {}
    for event in document["traceEvents"]:
        if event["ph"] == "X" and event["name"].startswith("wait:"):
            waits.setdefault(
                (event["pid"], event["tid"]), []
            ).append(event)
    for event in _spans(document):
        stalls = event.get("args", {}).get("stalls")
        if not stalls:
            continue
        track_waits = waits.get((event["pid"], event["tid"]), [])
        cursor = event["ts"] - sum(
            float(amount) for _, amount in stalls
        ) * SCALE
        for stall_category, amount in reversed(stalls):
            amount = float(amount)
            if amount <= 0:
                continue
            bound = TOLERANCE * max(abs(cursor), 1.0)
            if not any(
                wait["name"] == f"wait:{stall_category}"
                and abs(wait["ts"] - cursor) <= bound
                and abs(wait["dur"] - amount * SCALE) <= bound
                for wait in track_waits
            ):
                failures.append(
                    f"span {event['name']!r} records a "
                    f"{stall_category} stall of {amount:g} vt but no "
                    f"wait box tiles [{cursor:g}, "
                    f"{cursor + amount * SCALE:g}) on its track"
                )
            cursor += amount * SCALE
    return failures


def _check_sampled(document: dict) -> list[str]:
    """The sampled-trace schema: honest span accounting, exact embedded
    occupancy totals, and no critical-path attribution."""
    failures: list[str] = []
    other = document.get("otherData", {})
    retained = other.get("spans_retained")
    recorded = other.get("spans_recorded")
    if not isinstance(retained, int) or not isinstance(recorded, int):
        return [
            "a sampled trace must carry integer spans_retained / "
            "spans_recorded counts"
        ]
    actual = sum(1 for _ in _spans(document))
    if actual != retained:
        failures.append(
            f"spans_retained says {retained} but the document holds "
            f"{actual} span events"
        )
    if retained >= recorded:
        failures.append(
            f"a full trace claiming to be sampled: spans_retained "
            f"{retained} >= spans_recorded {recorded} (nothing was "
            f"evicted, so the trace must not be marked sampled)"
        )
    totals = other.get("category_totals")
    if not isinstance(totals, dict):
        failures.append(
            "a sampled trace must embed its exact category_totals "
            "(the occupancy accounting that survives eviction)"
        )
        return failures
    negative = {
        category: amount
        for category, amount in totals.items()
        if amount < 0
    }
    if negative:
        failures.append(f"negative category totals: {negative}")
    recomputed = _occupancy_from_events(document)
    for category, amount in recomputed.items():
        embedded = totals.get(category, 0.0)
        bound = TOLERANCE * max(abs(embedded), 1.0)
        if amount > embedded + bound:
            failures.append(
                f"retained spans overflow the exact totals for "
                f"{category}: recomputed {amount!r} > embedded "
                f"{embedded!r} (the accumulators must bound every "
                f"retained subset)"
            )
    if "attribution" in other:
        failures.append(
            "a sampled trace cannot carry a critical-path attribution "
            "(the walk needs the full span set); embed the utilization "
            "report instead"
        )
    return failures


def _check_full(document: dict) -> list[str]:
    """A full trace with sampling bookkeeping must be internally honest:
    every recorded span present, embedded totals matching the events."""
    failures: list[str] = []
    other = document.get("otherData", {})
    retained = other.get("spans_retained")
    recorded = other.get("spans_recorded")
    if isinstance(retained, int) and isinstance(recorded, int):
        if retained != recorded:
            failures.append(
                f"an unsampled trace must retain every span: "
                f"spans_retained {retained} != spans_recorded {recorded}"
            )
        actual = sum(1 for _ in _spans(document))
        if actual != retained:
            failures.append(
                f"spans_retained says {retained} but the document holds "
                f"{actual} span events"
            )
    totals = other.get("category_totals")
    if isinstance(totals, dict):
        recomputed = _occupancy_from_events(document)
        for category in set(totals) | set(recomputed):
            embedded = totals.get(category, 0.0)
            amount = recomputed.get(category, 0.0)
            bound = TOLERANCE * max(abs(embedded), 1.0)
            if abs(amount - embedded) > bound:
                failures.append(
                    f"embedded category_totals diverge from the span "
                    f"events for {category}: embedded {embedded!r} vs "
                    f"recomputed {amount!r}"
                )
    return failures


#: The instant vocabulary of the ``faults`` track (repro.faults /
#: cluster fail-over): anything else on the track is a schema error.
_FAULT_INSTANTS = (
    re.compile(r"^node (\d+) crashed$"),
    re.compile(r"^node (\d+) declared dead$"),
    re.compile(r"^revoke shard \d+ -> node (\d+)$"),
    re.compile(r"^node (\d+) rejoined$"),
)


def _check_faults(document: dict) -> list[str]:
    """The ``faults`` track schema: known instants only, off-chain
    ``recovery`` spans tagged with their node, rejoins preceded by a
    crash of the same node, and recovery spans anchored at a recorded
    failure (declared-dead or rejoin) instant.  No track, no check."""
    track_ids = {
        (event["pid"], event["tid"])
        for event in document["traceEvents"]
        if event["ph"] == "M"
        and event.get("args", {}).get("name") == "faults"
    }
    if not track_ids:
        return []
    failures: list[str] = []
    crashed: dict[int, float] = {}
    failure_instants: dict[int, list[float]] = {}
    spans = []
    for event in document["traceEvents"]:
        if (event["pid"], event["tid"]) not in track_ids:
            continue
        if event["ph"] == "X":
            spans.append(event)
            continue
        if event["ph"] != "i":
            continue
        name = event["name"]
        match = next(
            (m for p in _FAULT_INSTANTS if (m := p.match(name))), None
        )
        if match is None:
            failures.append(f"unknown instant on the faults track: {name!r}")
            continue
        node = event.get("args", {}).get("node")
        if not isinstance(node, int):
            failures.append(f"faults instant {name!r} lacks an args.node")
            continue
        if name.endswith("crashed"):
            crashed.setdefault(node, event["ts"])
        elif name.endswith("declared dead") or name.endswith("rejoined"):
            failure_instants.setdefault(node, []).append(event["ts"])
        if name.endswith("rejoined") and crashed.get(node, float("inf")) > (
            event["ts"] + TOLERANCE
        ):
            failures.append(
                f"node {node} rejoined at {event['ts']:g} without a "
                f"prior crash instant"
            )
    for span in spans:
        name = span["name"]
        match = re.match(r"^recovery node (\d+)$", name)
        args = span.get("args", {})
        if match is None or span.get("cat") != "recovery":
            failures.append(
                f"unexpected span on the faults track: {name!r} "
                f"(cat {span.get('cat')!r})"
            )
            continue
        if args.get("chain") is not False:
            failures.append(
                f"recovery span {name!r} must be off-chain (chain=False):"
                f" recovery overlaps execution, it does not serialize it"
            )
        node = int(match.group(1))
        anchors = failure_instants.get(node, [])
        if not any(
            abs(span["ts"] - ts) <= TOLERANCE * max(abs(ts), 1.0)
            for ts in anchors
        ):
            failures.append(
                f"recovery span for node {node} starts at {span['ts']:g} "
                f"but no declared-dead/rejoin instant anchors it"
            )
    return failures


def validate(path: Path) -> list[str]:
    """Return a list of human-readable violations (empty = valid)."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not readable JSON: {exc}"]
    try:
        validate_chrome_trace(document)
    except TraceExportError as exc:
        return [f"{path}: invalid Chrome trace-event JSON: {exc}"]
    failures: list[str] = []
    other = document.get("otherData", {})
    failures.extend(_check_wait_tiling(document))
    failures.extend(_check_faults(document))
    if "sampled" in other:
        failures.extend(
            _check_sampled(document)
            if other["sampled"]
            else _check_full(document)
        )
    attribution = other.get("attribution")
    if attribution is None:
        return failures  # a bare trace without an embedded report is fine
    makespan = attribution["makespan"]
    attributed = sum(attribution["totals"].values())
    bound = TOLERANCE * max(abs(makespan), 1.0)
    if abs(attributed - makespan) > bound:
        failures.append(
            f"attribution totals do not partition the makespan: "
            f"sum {attributed!r} vs makespan {makespan!r} "
            f"(|difference| {abs(attributed - makespan):g} > {bound:g})"
        )
    negative = {
        category: total
        for category, total in attribution["totals"].items()
        if total < 0
    }
    if negative:
        failures.append(f"negative category totals: {negative}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate an exported Chrome trace and its embedded "
        "makespan attribution"
    )
    parser.add_argument(
        "trace", type=Path, nargs="+", help="trace JSON file(s) to check"
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.trace:
        failures = validate(path)
        if failures:
            status = 1
            print(f"trace validation FAILED for {path}:")
            for failure in failures:
                print(f"  - {failure}")
            continue
        document = json.loads(path.read_text())
        events = len(document["traceEvents"])
        other = document.get("otherData", {})
        attribution = other.get("attribution")
        if attribution is not None:
            detail = (
                f", attribution sums to makespan "
                f"{attribution['makespan']:.4f}"
            )
        elif other.get("sampled"):
            detail = (
                f", sampled ({other.get('spans_retained')} of "
                f"{other.get('spans_recorded')} spans retained, "
                f"exact category totals)"
            )
        else:
            detail = ""
        print(f"trace OK: {path} ({events} events{detail})")
    return status


if __name__ == "__main__":
    sys.exit(main())
