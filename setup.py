"""Legacy setup shim.

Allows editable installs in offline environments whose setuptools lacks the
`wheel` package required by the PEP 660 editable-install path
(`pip install -e . --no-build-isolation` then falls back to `setup.py
develop`).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
