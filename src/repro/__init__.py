"""repro — a reproduction of *On the Synchronization Power of Token Smart
Contracts* (Alpos, Cachin, Marson, Zanolini; ICDCS 2021).

The library models token smart contracts (ERC20 and the §6 standards) as
sequential shared objects, provides a deterministic asynchronous
shared-memory runtime with exhaustive schedule exploration, implements the
paper's Algorithm 1 (consensus from tokens) and Algorithm 2 (tokens from
k-shared asset transfer), the state-classification machinery (enabled
spenders, the Q_k partition, synchronization states S_k), valency analysis,
and a message-passing layer realizing the paper's §7 proposal of
dynamically-synchronized token networks.

Quickstart::

    from repro import ERC20Token, classify

    token = ERC20Token(num_accounts=3, total_supply=10)   # Alice deploys
    token.invoke(0, token.transfer(1, 3).operation)       # Alice -> Bob: 3
    token.invoke(1, token.approve(2, 5).operation)        # Bob approves Charlie
    print(classify(token.state).level)                    # 2: Bob's account
                                                          # now has 2 spenders

See README.md and DESIGN.md for the full tour.
"""

from repro.analysis import (
    CachedPairAnalyzer,
    classify,
    enabled_spenders,
    is_synchronization_state,
    make_synchronization_state,
    synchronization_level,
    token_consensus_number,
    token_consensus_number_bounds,
    unique_transfer,
    unique_transfer_strict,
)
from repro.objects import (
    AssetTransfer,
    AtomicRegister,
    ConsensusObject,
    ERC20Token,
    ERC20TokenType,
    ERC721Token,
    ERC777Token,
    ERC1155Token,
    SharedObject,
    TokenState,
    register_array,
)
from repro.protocols import (
    EmulatedToken,
    KATConsensus,
    SafeEmulatedToken,
    TokenConsensus,
    algorithm1_system,
    consensus_checks,
    kat_consensus_system,
)
from repro.config import ClusterConfig, EngineConfig
from repro.engine import (
    BatchExecutor,
    ConsensusEscalator,
    Mempool,
    OpClassifier,
    PipelinedExecutor,
    ShardPlanner,
)
from repro.cluster import ClusterStats, ShardMap, TokenCluster
from repro.runtime import (
    RandomScheduler,
    RoundRobinScheduler,
    ScheduleExplorer,
    System,
    run_system,
)
from repro.spec import History, Operation, check_linearizability, op

__version__ = "1.0.0"

__all__ = [
    "CachedPairAnalyzer",
    "classify",
    "BatchExecutor",
    "ClusterConfig",
    "ConsensusEscalator",
    "EngineConfig",
    "Mempool",
    "OpClassifier",
    "PipelinedExecutor",
    "ShardPlanner",
    "ClusterStats",
    "ShardMap",
    "TokenCluster",
    "enabled_spenders",
    "is_synchronization_state",
    "make_synchronization_state",
    "synchronization_level",
    "token_consensus_number",
    "token_consensus_number_bounds",
    "unique_transfer",
    "unique_transfer_strict",
    "AssetTransfer",
    "AtomicRegister",
    "ConsensusObject",
    "ERC20Token",
    "ERC20TokenType",
    "ERC721Token",
    "ERC777Token",
    "ERC1155Token",
    "SharedObject",
    "TokenState",
    "register_array",
    "EmulatedToken",
    "KATConsensus",
    "SafeEmulatedToken",
    "TokenConsensus",
    "algorithm1_system",
    "consensus_checks",
    "kat_consensus_system",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScheduleExplorer",
    "System",
    "run_system",
    "History",
    "Operation",
    "check_linearizability",
    "op",
    "__version__",
]
