"""State classification, commutativity, valency, and hierarchy analysis
(paper §5)."""

from repro.analysis.commutativity import (
    CachedPairAnalyzer,
    Invocation,
    PairAnalysis,
    PairKind,
    analyze_pair,
    commutes,
    conflict_matrix,
    conflicting_pairs,
    erc20_case_label,
)
from repro.analysis.hierarchy import (
    KNOWN_HIERARCHY,
    ConsensusNumberEntry,
    kat_consensus_number,
    token_consensus_number,
    token_consensus_number_bounds,
)
from repro.analysis.partition import (
    StateClassification,
    classify,
    in_partition_cell,
    is_synchronization_state,
    make_synchronization_state,
    synchronization_accounts,
    synchronization_level,
    unique_transfer,
    unique_transfer_strict,
)
from repro.analysis.reachability import (
    RaisingApproval,
    escalation_plan,
    level_trajectory,
    raising_approvals,
    verify_level_change_ops,
)
from repro.analysis.spenders import (
    accounts_with_spender_count,
    enabled_spenders,
    max_spenders,
    spender_map,
)
from repro.analysis.valency import (
    CriticalConfiguration,
    Valence,
    ValencyAnalyzer,
)

__all__ = [
    "CachedPairAnalyzer",
    "Invocation",
    "PairAnalysis",
    "PairKind",
    "analyze_pair",
    "commutes",
    "conflict_matrix",
    "conflicting_pairs",
    "erc20_case_label",
    "KNOWN_HIERARCHY",
    "ConsensusNumberEntry",
    "kat_consensus_number",
    "token_consensus_number",
    "token_consensus_number_bounds",
    "StateClassification",
    "classify",
    "in_partition_cell",
    "is_synchronization_state",
    "make_synchronization_state",
    "synchronization_accounts",
    "synchronization_level",
    "unique_transfer",
    "unique_transfer_strict",
    "RaisingApproval",
    "escalation_plan",
    "level_trajectory",
    "raising_approvals",
    "verify_level_change_ops",
    "accounts_with_spender_count",
    "enabled_spenders",
    "max_spenders",
    "spender_map",
    "CriticalConfiguration",
    "Valence",
    "ValencyAnalyzer",
]
