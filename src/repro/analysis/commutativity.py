"""Mechanical commutativity / read-only analysis (Theorem 3's case analysis).

Theorem 3's impossibility proof rests on two observations about decision
steps from a critical state:

* **commuting steps** — if the two pending operations commute, the states
  reached by executing them in either order are identical, contradicting
  their different valences;
* **read-only steps** — if one operation does not change the object's state,
  the other process cannot distinguish the two orders.

This module decides both properties *semantically*, by executing the
sequential specification, and regenerates the proof's case split (Cases 1–4
and the commuting/read-only base cases illustrated in Figure 1) as a
machine-checked matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Sequence

from repro.spec.object_type import SequentialObjectType
from repro.spec.operation import Operation


class PairKind(Enum):
    """Classification of an ordered pair of invocations at a state."""

    #: Both orders yield identical states and responses.
    COMMUTE = "commute"
    #: At least one of the two invocations leaves the state unchanged.
    READ_ONLY = "read-only"
    #: Neither commuting nor read-only: a genuine synchronization conflict —
    #: the only kind of pair that can be a pair of decision steps (Thm 3).
    CONFLICT = "conflict"


@dataclass(frozen=True, slots=True)
class Invocation:
    """A (process, operation) pair for analysis purposes."""

    pid: int
    operation: Operation

    def __str__(self) -> str:
        return f"p{self.pid}.{self.operation}"


@dataclass(frozen=True, slots=True)
class PairAnalysis:
    """Outcome of analyzing one pair of invocations at a state."""

    first: Invocation
    second: Invocation
    kind: PairKind
    #: Final states under first-then-second and second-then-first orders.
    state_fs: Any
    state_sf: Any
    #: Responses (r_first, r_second) under each order.
    responses_fs: tuple[Any, Any]
    responses_sf: tuple[Any, Any]

    @property
    def states_equal(self) -> bool:
        return self.state_fs == self.state_sf


def commutes(
    object_type: SequentialObjectType,
    state: Any,
    first: Invocation,
    second: Invocation,
) -> bool:
    """True when executing the pair in either order yields the same final
    state *and* the same response for each invocation."""
    return (
        analyze_pair(object_type, state, first, second).kind
        is PairKind.COMMUTE
    )


def analyze_pair(
    object_type: SequentialObjectType,
    state: Any,
    first: Invocation,
    second: Invocation,
) -> PairAnalysis:
    """Full both-orders analysis of a pair of invocations at ``state``."""
    # Order: first then second.
    mid_fs, r1_fs = object_type.apply(state, first.pid, first.operation)
    end_fs, r2_fs = object_type.apply(mid_fs, second.pid, second.operation)
    # Order: second then first.
    mid_sf, r2_sf = object_type.apply(state, second.pid, second.operation)
    end_sf, r1_sf = object_type.apply(mid_sf, first.pid, first.operation)

    same_states = end_fs == end_sf
    same_responses = (r1_fs == r1_sf) and (r2_fs == r2_sf)
    if same_states and same_responses:
        kind = PairKind.COMMUTE
    elif object_type.is_read_only(state, first.pid, first.operation) or (
        object_type.is_read_only(state, second.pid, second.operation)
    ):
        kind = PairKind.READ_ONLY
    else:
        kind = PairKind.CONFLICT
    return PairAnalysis(
        first=first,
        second=second,
        kind=kind,
        state_fs=end_fs,
        state_sf=end_sf,
        responses_fs=(r1_fs, r2_fs),
        responses_sf=(r1_sf, r2_sf),
    )


def conflict_matrix(
    object_type: SequentialObjectType,
    state: Any,
    invocations: Sequence[Invocation],
) -> dict[tuple[int, int], PairAnalysis]:
    """Pairwise analysis of all distinct invocation pairs (indices into
    ``invocations``); the matrix is symmetric so only ``i < j`` is stored."""
    matrix: dict[tuple[int, int], PairAnalysis] = {}
    for i in range(len(invocations)):
        for j in range(i + 1, len(invocations)):
            matrix[(i, j)] = analyze_pair(
                object_type, state, invocations[i], invocations[j]
            )
    return matrix


def conflicting_pairs(
    object_type: SequentialObjectType,
    state: Any,
    invocations: Sequence[Invocation],
) -> list[PairAnalysis]:
    """Only the pairs classified as genuine conflicts — Theorem 3's candidate
    decision-step pairs."""
    return [
        analysis
        for analysis in conflict_matrix(object_type, state, invocations).values()
        if analysis.kind is PairKind.CONFLICT
    ]


class CachedPairAnalyzer:
    """Memoizing wrapper around :func:`analyze_pair`.

    States are immutable and hashable by construction (see
    :mod:`repro.spec.object_type`), so a full pair analysis — four ``apply``
    calls — can be memoized on ``(state, first, second)``.  The execution
    engine (:mod:`repro.engine`) uses this as the semantic oracle that
    validates its static footprint classifier; mempool windows re-analyze
    the same invocation pairs at the same state many times, which is where
    the cache pays off.
    """

    def __init__(self, object_type: SequentialObjectType) -> None:
        self.object_type = object_type
        self._cache: dict[tuple[Any, Invocation, Invocation], PairAnalysis] = {}
        self.hits = 0
        self.misses = 0

    def analyze(
        self, state: Any, first: Invocation, second: Invocation
    ) -> PairAnalysis:
        key = (state, first, second)
        found = self._cache.get(key)
        if found is None:
            self.misses += 1
            found = analyze_pair(self.object_type, state, first, second)
            self._cache[key] = found
        else:
            self.hits += 1
        return found

    def kind(
        self, state: Any, first: Invocation, second: Invocation
    ) -> PairKind:
        # The kind is symmetric in the pair; reuse a mirrored entry if one
        # is already cached.
        mirrored = self._cache.get((state, second, first))
        if mirrored is not None:
            self.hits += 1
            return mirrored.kind
        return self.analyze(state, first, second).kind

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


def erc20_case_label(first: Invocation, second: Invocation) -> str:
    """Label a pair of ERC20 invocations with the paper's Theorem 3 case.

    Cases: (1) transfer/transfer, (2) transferFrom/transferFrom,
    (3) transfer vs transferFrom, (4) approve vs transferFrom.  Pairs with a
    read-only method, approve/approve, and approve/transfer are the base
    cases handled before the enumeration.
    """
    read_only = {"balanceOf", "allowance", "totalSupply"}
    names = {first.operation.name, second.operation.name}
    if names & read_only:
        return "read-only method"
    if names == {"transfer"}:
        return "Case 1: transfer/transfer"
    if names == {"transferFrom"}:
        return "Case 2: transferFrom/transferFrom"
    if names == {"transfer", "transferFrom"}:
        return "Case 3: transfer/transferFrom"
    if names == {"approve", "transferFrom"}:
        return "Case 4: approve/transferFrom"
    if names == {"approve"} or names == {"approve", "transfer"}:
        return "commuting base case (approve/approve or approve/transfer)"
    return "other"
