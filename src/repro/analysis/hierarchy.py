"""The consensus hierarchy (paper §3.1, Definition 2 and Theorem 1).

``CN(O)`` is the largest ``n`` such that consensus among ``n`` processes is
wait-free implementable from objects of type ``O`` plus atomic registers
(Definition 2).  Theorem 1 (Herlihy): an object with a strictly larger
consensus number cannot be wait-free implemented from a weaker one.

This module is a *bookkeeping registry*: for the object types built in this
library it records the known consensus numbers with pointers to the
witnesses implemented here (lower bounds = protocols, upper bounds =
theorems/simulations), and offers the comparison helpers used by experiments
and documentation:

======================  ================  =====================================
object                  consensus number  witness in this library
======================  ================  =====================================
atomic register         1                 FLP demo (`protocols.register_consensus`)
asset transfer (1-AT)   1                 [16]; `hierarchy` records the citation
k-shared AT             k                 `protocols.kat_consensus` (lower);
                                          [16] (upper)
ERC20 token at q ∈ S_k  k                 Algorithm 1 (lower, Thm 2);
                                          Thm 3 (upper) — *state-dependent!*
ERC20 token, restricted k                 Algorithm 2 / Thm 4 (upper via k-AT)
  to Q_k
consensus object        ∞                 universal (Herlihy)
======================  ================  =====================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.partition import classify
from repro.objects.erc20 import TokenState


@dataclass(frozen=True, slots=True)
class ConsensusNumberEntry:
    """Known consensus number of an object family."""

    object_family: str
    consensus_number: float  # math.inf for unbounded
    lower_bound_witness: str
    upper_bound_witness: str


#: Static entries for the object families the paper discusses.
KNOWN_HIERARCHY: tuple[ConsensusNumberEntry, ...] = (
    ConsensusNumberEntry(
        "atomic register",
        1,
        "trivial (solo run)",
        "FLP / Herlihy; demo: repro.protocols.register_consensus",
    ),
    ConsensusNumberEntry(
        "asset transfer (single-owner)",
        1,
        "trivial (solo run)",
        "Guerraoui et al. [16], Theorem 2 there",
    ),
    ConsensusNumberEntry(
        "k-shared asset transfer",
        float("nan"),  # parametric: use kat_consensus_number(k)
        "repro.protocols.kat_consensus (race on shared account)",
        "Guerraoui et al. [16]",
    ),
    ConsensusNumberEntry(
        "consensus object",
        math.inf,
        "direct",
        "universal construction (Herlihy)",
    ),
)


def kat_consensus_number(k: int) -> int:
    """``CN(k-AT) = k`` [16]."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return k


def token_consensus_number(state: TokenState) -> int:
    """The *dynamic* consensus number of the ERC20 token object at ``q``.

    By Eq. 17, ``CN(T_{S_k}) = k``; by Theorem 3, ``CN(T_{Q_k}) ≤ k``.  For a
    concrete state the exact value this library certifies is:

    * ``k(q)`` when ``q ∈ S_{k(q)}`` (strengthened predicate — both bounds
      are then witnessed by running code), else
    * the largest ``k' ≤ k(q)`` with ``q ∈ S_{k'}``, as a certified lower
      bound, with ``k(q)`` the Theorem 3 upper bound.

    Returns the certified lower bound (which equals the exact value whenever
    a synchronization witness exists; in particular at the deployed initial
    state it returns 1, matching the paper's conclusion that a fresh ERC20
    contract needs no synchronization at all).
    """
    classification = classify(state)
    return max(1, classification.sync_level_strict)


def token_consensus_number_bounds(state: TokenState) -> tuple[int, int]:
    """``(lower, upper)`` bounds certified for ``CN(T_q)``:
    lower from Theorem 2 (largest strict ``S_k`` membership, at least 1),
    upper from Theorem 3 (``k(q)``)."""
    classification = classify(state)
    return max(1, classification.sync_level_strict), classification.level
