"""State partition ``Q_k``, predicate ``U``, synchronization states ``S_k``
(paper Eqs. 11, 13, 14).

* ``Q_k = {q : max_a |σ_q(a)| = k}`` — the partition cell of states whose
  maximal enabled-spender set has exactly ``k`` members (Eq. 11).

* ``U(a, q)`` — "unique transfers" (Eq. 13): with ``σ = σ_q(a)``,

      U(a,q)  ⟺  β(a) > 0 ∧ (|σ| ≤ 2 ∨ ∀ p_i ≠ p_j ∈ σ \\ {ω(a)} :
                                      α(a,p_i) + α(a,p_j) > β(a))

* ``S_k = {q : ∃a, |σ_q(a)| = k ∧ U(a, q)}`` (Eq. 14) — the
  *k-synchronization states* from which Algorithm 1 solves consensus among
  the ``k`` spenders.

**Erratum (strengthened predicate).**  The literal ``U`` does not require
``α(a, p) ≤ β(a)``.  A spender whose allowance exceeds the balance fails its
``transferFrom`` even when it runs first, after which Algorithm 1 can decide
the content of a register that was never written (a validity violation —
mechanically exhibited in ``tests/protocols/test_algorithm1_erratum.py``).
:func:`unique_transfer_strict` adds the missing requirement
``0 < α(a,p) ≤ β(a)`` for every non-owner enabled spender; Theorem 2's
construction is verified by exploration under this strengthened predicate.
See DESIGN.md, Reproduction notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.analysis.spenders import enabled_spenders, max_spenders, spender_map
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import TokenState


def synchronization_level(state: TokenState) -> int:
    """``k(q) = max_a |σ_q(a)|``: the index of the cell ``Q_k`` containing
    ``q``.  Always ≥ 1, since the owner is always an enabled spender."""
    return max_spenders(state)


def in_partition_cell(state: TokenState, k: int) -> bool:
    """Membership ``q ∈ Q_k`` (Eq. 11)."""
    if k < 1:
        raise InvalidArgumentError("k must be at least 1")
    return synchronization_level(state) == k


def unique_transfer(state: TokenState, account: int) -> bool:
    """The paper's literal predicate ``U(a, q)`` (Eq. 13)."""
    if state.balance(account) <= 0:
        return False
    spenders = enabled_spenders(state, account)
    if len(spenders) <= 2:
        return True
    owner = account
    others = sorted(spenders - {owner})
    return all(
        state.allowance(account, pi) + state.allowance(account, pj)
        > state.balance(account)
        for pi, pj in combinations(others, 2)
    )


def unique_transfer_strict(state: TokenState, account: int) -> bool:
    """Strengthened ``U*(a, q)``: literal ``U`` plus
    ``0 < α(a,p) ≤ β(a)`` for every enabled non-owner spender, which makes the
    "first completing transfer succeeds" argument of Theorem 2 sound."""
    if not unique_transfer(state, account):
        return False
    owner = account
    balance = state.balance(account)
    for pid in enabled_spenders(state, account) - {owner}:
        allowance = state.allowance(account, pid)
        if not 0 < allowance <= balance:
            return False
    return True


def is_synchronization_state(
    state: TokenState, k: int, strict: bool = True
) -> bool:
    """Membership ``q ∈ S_k`` (Eq. 14).

    Args:
        strict: Use the strengthened predicate ``U*`` (default), under which
            Algorithm 1 is correct; ``False`` uses the paper's literal ``U``.
    """
    predicate = unique_transfer_strict if strict else unique_transfer
    return any(
        len(enabled_spenders(state, account)) == k and predicate(state, account)
        for account in range(state.num_accounts)
    )


def synchronization_accounts(
    state: TokenState, k: int, strict: bool = True
) -> tuple[int, ...]:
    """All witness accounts for ``q ∈ S_k``: accounts with exactly ``k``
    enabled spenders satisfying the (strengthened) unique-transfer predicate."""
    predicate = unique_transfer_strict if strict else unique_transfer
    return tuple(
        account
        for account in range(state.num_accounts)
        if len(enabled_spenders(state, account)) == k and predicate(state, account)
    )


@dataclass(frozen=True, slots=True)
class StateClassification:
    """Full classification of a token state by the paper's taxonomy."""

    #: k(q): index of the partition cell Q_k containing q.
    level: int
    #: σ_q as a tuple of spender sets indexed by account.
    spenders: tuple[frozenset[int], ...]
    #: Largest k with q ∈ S_k under the strengthened predicate (0 if none).
    sync_level_strict: int
    #: Largest k with q ∈ S_k under the paper's literal predicate (0 if none).
    sync_level_literal: int
    #: Witness accounts for sync_level_strict.
    witnesses: tuple[int, ...]


def classify(state: TokenState) -> StateClassification:
    """Classify a state: its ``Q_k`` cell, σ map, and ``S_k`` memberships."""
    spenders = spender_map(state)
    level = max(len(s) for s in spenders)

    def best_sync_level(strict: bool) -> int:
        for k in range(level, 0, -1):
            if is_synchronization_state(state, k, strict=strict):
                return k
        return 0

    strict_level = best_sync_level(strict=True)
    return StateClassification(
        level=level,
        spenders=spenders,
        sync_level_strict=strict_level,
        sync_level_literal=best_sync_level(strict=False),
        witnesses=(
            synchronization_accounts(state, strict_level, strict=True)
            if strict_level > 0
            else ()
        ),
    )


def make_synchronization_state(
    num_accounts: int,
    k: int,
    account: int = 0,
    balance: int | None = None,
) -> TokenState:
    """Construct a canonical state in ``S_k`` (strict) for testing and for
    Algorithm 1 setups.

    The witness ``account`` holds ``balance`` tokens (default ``k``) and has
    approved ``k - 1`` distinct other processes, each with an allowance
    ``α`` such that ``α ≤ β`` and pairwise ``α_i + α_j > β`` — we use
    ``α = β`` for every spender, the simplest assignment satisfying ``U*``.
    """
    if not 1 <= k <= num_accounts:
        raise InvalidArgumentError("need 1 <= k <= num_accounts")
    if not 0 <= account < num_accounts:
        raise InvalidArgumentError("witness account out of range")
    amount = k if balance is None else balance
    if amount <= 0:
        raise InvalidArgumentError("witness balance must be positive")
    balances = [0] * num_accounts
    balances[account] = amount
    spenders = [pid for pid in range(num_accounts) if pid != account][: k - 1]
    allowances = {(account, pid): amount for pid in spenders}
    return TokenState.create(balances, allowances)
