"""Reachability between synchronization levels (paper Eq. 12 and §5.2).

The paper observes that for every ``q ∈ Q_k`` there is a valid transition

    (q, p, approve, TRUE, q')   with   q' ∈ Q_{k+1}           (Eq. 12)

"the only way to do so is by letting the owner of a k-spender account
approve a new spender", and conversely that reaching a synchronization state
from ``q0`` requires a *specific sequence of successful approve operations*
— hence cannot be done wait-free (the approving owner may crash), which is
why ``CN(T_{S_n}) = n`` does not contradict ``CN(T_{q0}) = 1``.

This module provides:

* :func:`raising_approvals` — the approve steps realizing Eq. 12 from a state;
* :func:`level_trajectory` — the sequence ``k(q_0), k(q_1), …`` along an
  execution, used by experiment E5;
* :func:`escalation_plan` — a schedule of operations taking ``q0`` into a
  target ``S_k`` (the non-wait-free preparation phase);
* :func:`verify_level_change_ops` — checks that along an execution the level
  increases **only** at successful ``approve`` steps (the other operations can
  only preserve or lower it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.partition import synchronization_level
from repro.analysis.spenders import (
    accounts_with_spender_count,
    enabled_spenders,
)
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class RaisingApproval:
    """A witness for Eq. 12: an approve step lifting ``q ∈ Q_k`` to ``Q_{k+1}``."""

    pid: int
    operation: Operation
    account: int
    new_spender: int


def raising_approvals(state: TokenState) -> tuple[RaisingApproval, ...]:
    """All single `approve` steps that raise the synchronization level.

    Eq. 12 asserts at least one exists whenever some account with the maximal
    spender count has a positive balance and a non-enabled process left; each
    witness approves a *new* spender on a maximal account.
    """
    level = synchronization_level(state)
    witnesses: list[RaisingApproval] = []
    for account in accounts_with_spender_count(state, level):
        if state.balance(account) == 0:
            continue  # zero-balance accounts stay owner-only (Eq. 10 convention)
        owner = account
        current = enabled_spenders(state, account)
        for pid in range(state.num_accounts):
            if pid in current:
                continue
            operation = Operation("approve", (pid, state.balance(account)))
            witnesses.append(
                RaisingApproval(
                    pid=owner,
                    operation=operation,
                    account=account,
                    new_spender=pid,
                )
            )
    return tuple(witnesses)


def level_trajectory(
    token_type: ERC20TokenType,
    invocations: Iterable[tuple[int, Operation]],
    initial_state: TokenState | None = None,
) -> list[tuple[int, TokenState]]:
    """Evolution of ``k(q)`` along a sequential execution.

    Returns the list of ``(level, state)`` pairs including the initial state,
    so an execution of ``m`` operations yields ``m + 1`` entries.
    """
    state = (
        token_type.initial_state() if initial_state is None else initial_state
    )
    trajectory = [(synchronization_level(state), state)]
    for pid, operation in invocations:
        state, _ = token_type.apply(state, pid, operation)
        trajectory.append((synchronization_level(state), state))
    return trajectory


def verify_level_change_ops(
    token_type: ERC20TokenType,
    invocations: Sequence[tuple[int, Operation]],
    initial_state: TokenState | None = None,
) -> list[str]:
    """Check the paper's claim that the level **increases only via approve**
    (and, symmetrically, which operations may lower it).

    Returns a list of human-readable violations; empty means the claim holds
    on this execution.  Operations that may *raise* ``k(q)``: ``approve`` and
    — through the zero-balance convention of Eq. 10 — any transfer that funds
    a previously empty account with pre-existing allowances.  The paper's
    Eq. 12 statement concerns the canonical case where balances are positive;
    the checker reports the funding-transfer case separately rather than as a
    violation.
    """
    violations: list[str] = []
    state = (
        token_type.initial_state() if initial_state is None else initial_state
    )
    level = synchronization_level(state)
    for step, (pid, operation) in enumerate(invocations):
        successor, response = token_type.apply(state, pid, operation)
        new_level = synchronization_level(successor)
        if new_level > level:
            raised_by_approve = operation.name == "approve" and response is True
            raised_by_funding = operation.name in ("transfer", "transferFrom")
            if not (raised_by_approve or raised_by_funding):
                violations.append(
                    f"step {step}: level {level} -> {new_level} caused by "
                    f"{operation} (expected approve or funding transfer)"
                )
        state, level = successor, new_level
    return violations


def escalation_plan(
    num_accounts: int,
    k: int,
    account: int = 0,
    supply: int | None = None,
) -> list[tuple[int, Operation]]:
    """A sequential schedule taking the deployed state ``q0`` into ``S_k``.

    The owner of ``account`` approves ``k - 1`` other processes, each with
    allowance equal to the account balance (satisfying the strengthened
    ``U*``).  If the deployer is not the witness account, a funding transfer
    is prepended.  The schedule consists of at most ``1 + (k-1)`` operations,
    every one of which must *succeed* — this is exactly the non-wait-free
    preparation the paper discusses before Theorem 3.
    """
    if not 1 <= k <= num_accounts:
        raise InvalidArgumentError("need 1 <= k <= num_accounts")
    amount = k if supply is None else supply
    if amount <= 0:
        raise InvalidArgumentError("supply must be positive")
    plan: list[tuple[int, Operation]] = []
    deployer = 0
    if account != deployer:
        plan.append((deployer, Operation("transfer", (account, amount))))
    spenders = [pid for pid in range(num_accounts) if pid != account][: k - 1]
    for pid in spenders:
        plan.append((account, Operation("approve", (pid, amount))))
    return plan
