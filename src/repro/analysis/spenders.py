"""Enabled spenders ``σ_q`` (paper Eq. 10).

For every state ``q = (β, α)``, ``σ_q : A → 2^Π`` maps each account to the
set of processes enabled to transfer tokens from it:

    σ_q(a) = {p ∈ Π : p = ω(a) ∨ α(a, p) > 0}

with the paper's convention that a zero-balance account has only its owner as
enabled spender: ``β(a) = 0 ⟹ σ_q(a) = {ω(a)}`` — a process with positive
allowance but no balance to draw on "would not be able to transfer tokens
from a unless the balance is increased".

The owner bijection is the identity (``ω(a_i) = p_i``, §4), so the owner of
account ``a`` is process ``a``.
"""

from __future__ import annotations

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import TokenState


def enabled_spenders(state: TokenState, account: int) -> frozenset[int]:
    """``σ_q(a)`` for a single account (Eq. 10)."""
    if not 0 <= account < state.num_accounts:
        raise InvalidArgumentError(f"unknown account {account!r}")
    owner = account  # ω is the identity bijection
    if state.balance(account) == 0:
        return frozenset({owner})
    spenders = {owner}
    for pid in range(state.num_accounts):
        if state.allowance(account, pid) > 0:
            spenders.add(pid)
    return frozenset(spenders)


def spender_map(state: TokenState) -> tuple[frozenset[int], ...]:
    """The full mapping ``σ_q`` as a tuple indexed by account."""
    return tuple(
        enabled_spenders(state, account)
        for account in range(state.num_accounts)
    )


def max_spenders(state: TokenState) -> int:
    """``max_a |σ_q(a)|`` — the quantity partitioning ``Q`` in Eq. 11."""
    return max(len(spenders) for spenders in spender_map(state))


def accounts_with_spender_count(state: TokenState, k: int) -> tuple[int, ...]:
    """Accounts ``a`` with exactly ``|σ_q(a)| = k`` enabled spenders."""
    return tuple(
        account
        for account, spenders in enumerate(spender_map(state))
        if len(spenders) == k
    )


def potential_spenders(state: TokenState, account: int) -> frozenset[int]:
    """``{ω(a)} ∪ {p : α(a, p) > 0}`` *without* the zero-balance convention.

    This is the set Algorithm 2's approve guard actually counts (its line 17
    reads allowance registers only, never the balance): processes that would
    become enabled as soon as the account is funded.  It always contains
    ``σ_q(a)``; the two coincide whenever ``β(a) > 0``.
    """
    if not 0 <= account < state.num_accounts:
        raise InvalidArgumentError(f"unknown account {account!r}")
    spenders = {account}  # ω is the identity
    for pid in range(state.num_accounts):
        if state.allowance(account, pid) > 0:
            spenders.add(pid)
    return frozenset(spenders)


def potential_level(state: TokenState) -> int:
    """``max_a`` of the potential-spender count — the invariant Algorithm 2
    preserves (an upper bound on the synchronization level ``k(q)``)."""
    return max(
        len(potential_spenders(state, account))
        for account in range(state.num_accounts)
    )
