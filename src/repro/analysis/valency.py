"""Valency analysis: bivalent configurations and critical states.

Theorem 3's proof uses Herlihy's valency technique: a protocol configuration
is *bivalent* when executions deciding different values are both reachable
from it, *univalent* otherwise, and *critical* when it is bivalent but every
single step leads to a univalent configuration.  "Every wait-free consensus
protocol has a critical state" — the proof then inspects the pending
operations at a critical state, which for correct token-based protocols must
be a race on the token object itself (the commuting/read-only cases having
been ruled out; see :mod:`repro.analysis.commutativity`).

Built on the exhaustive explorer, this module computes valences for real
protocol code and searches for critical configurations, letting experiments
*watch* the proof's structure on Algorithm 1: the initial configuration is
bivalent, the critical configuration is reached just before the winning
transfer, and the pending operations there are transfer/transferFrom on the
synchronization account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.runtime.executor import SystemFactory
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import Action


@dataclass(frozen=True, slots=True)
class Valence:
    """The valence of a configuration: its set of reachable decisions."""

    outcomes: frozenset[Any]

    @property
    def is_bivalent(self) -> bool:
        return len(self.outcomes) >= 2

    @property
    def is_univalent(self) -> bool:
        return len(self.outcomes) == 1

    def __str__(self) -> str:
        values = ", ".join(map(repr, sorted(self.outcomes, key=repr)))
        kind = "bivalent" if self.is_bivalent else "univalent"
        return f"{kind}({values})"


@dataclass
class CriticalConfiguration:
    """A bivalent configuration all of whose successors are univalent."""

    #: Schedule prefix reaching the configuration.
    prefix: tuple[Action, ...]
    #: The configuration's valence.
    valence: Valence
    #: Pending operation per runnable process, rendered for inspection.
    pending: dict[int, str]
    #: Valence of each one-step successor, keyed by the stepping pid.
    successor_valences: dict[int, Valence]


class ValencyAnalyzer:
    """Valence computation and critical-state search for a protocol factory."""

    def __init__(self, factory: SystemFactory, max_steps: int = 500) -> None:
        self._explorer = ScheduleExplorer(factory, max_steps=max_steps)

    def valence(self, prefix: Sequence[Action] = ()) -> Valence:
        """Valence of the configuration reached by ``prefix``."""
        return Valence(self._explorer.outcomes_from(tuple(prefix)))

    def initial_is_bivalent(self) -> bool:
        """Whether the protocol's initial configuration is bivalent (it must
        be, for any consensus protocol run with at least two distinct
        proposals — the first step of every valency argument)."""
        return self.valence(()).is_bivalent

    def find_critical_configurations(
        self, max_results: int = 10
    ) -> list[CriticalConfiguration]:
        """BFS for critical configurations.

        Every wait-free consensus protocol with a bivalent initial
        configuration has at least one (Herlihy); this search returns up to
        ``max_results`` of them in BFS order (shortest prefixes first).
        """
        results: list[CriticalConfiguration] = []
        frontier: list[tuple[Action, ...]] = [()]
        seen: set[tuple[Action, ...]] = set()
        while frontier and len(results) < max_results:
            prefix = frontier.pop(0)
            if prefix in seen:
                continue
            seen.add(prefix)
            valence = self.valence(prefix)
            if not valence.is_bivalent:
                continue  # univalent configurations cannot be critical
            children = self._explorer.children(prefix)
            child_valences: dict[int, Valence] = {}
            all_univalent = bool(children)
            for child in children:
                pid = child[-1].pid
                child_valence = self.valence(child)
                child_valences[pid] = child_valence
                if child_valence.is_bivalent:
                    all_univalent = False
            if all_univalent:
                results.append(
                    CriticalConfiguration(
                        prefix=prefix,
                        valence=valence,
                        pending=self._explorer.pending_operations(prefix),
                        successor_valences=child_valences,
                    )
                )
            else:
                # Continue the search below bivalent children only.
                for child in children:
                    if child_valences[child[-1].pid].is_bivalent:
                        frontier.append(child)
        return results

    @property
    def explorer(self) -> ScheduleExplorer:
        return self._explorer
