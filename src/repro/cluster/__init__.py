"""repro.cluster — distributed token processing with shard-ownership leases.

The paper's claim that most token operations have consensus number 1 is
fundamentally *distributed*: independent owners should be served by
independent machines with zero coordination.  This package realizes that
on the repository's virtual-time network: each lane of the single-process
engine (:mod:`repro.engine`) becomes a real :mod:`repro.net` node running
the same round loop over the account shards it owns.

Topology and traffic classes::

    clients -> Router -> ClusterNode 0..N-1        (point-to-point forwards)
                  |  \\-> lease protocol            (3 msgs / migrated shard)
                  \\---> ConsensusEscalator          (contended cross-node only)

* owner-local components: forward + reply, zero coordination messages —
  the consensus-number-1 regime at the message level;
* cross-shard uncontended chains: a shard-ownership lease handoff
  (request/grant/ack) migrates ownership to the busier node;
* contended cross-node conflicts: exactly the contended members pay the
  shared total-order lane's three-phase quadratic bill.

Serial equivalence holds for any node count and any lease schedule
because the router co-locates whole conflict-graph components per round
(machine-checked in ``tests/cluster/``).
"""

from repro.config import ClusterConfig
from repro.cluster.cluster import TokenCluster
from repro.cluster.node import ClusterNode
from repro.cluster.router import LEASE_MESSAGE_TYPES, Router
from repro.cluster.sharding import LeaseRecord, ShardMap
from repro.cluster.stats import ClusterRound, ClusterStats, NodeBill
from repro.cluster.workloads import owner_local_workload

__all__ = [
    "ClusterConfig",
    "TokenCluster",
    "ClusterNode",
    "LEASE_MESSAGE_TYPES",
    "Router",
    "LeaseRecord",
    "ShardMap",
    "ClusterRound",
    "ClusterStats",
    "NodeBill",
    "owner_local_workload",
]
