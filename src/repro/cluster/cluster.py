"""The distributed token-processing cluster, wired end to end.

:class:`TokenCluster` deploys N :class:`~repro.cluster.node.ClusterNode`
workers plus one :class:`~repro.cluster.router.Router` on a single
virtual-time network, shards the account space over the workers
(:class:`~repro.cluster.sharding.ShardMap`), and drives round-synchronous
execution: each round the router classifies a mempool window, forwards
owner-local components point-to-point, migrates shard leases for
uncontended cross-shard chains, and orders contended cross-node conflicts
through the tiered sync layer (:mod:`repro.sync`): a team lane among just
the component's owner nodes when ``team_threshold`` allows, the shared
total-order lane otherwise.  The makespan is whatever the
simulator clock says when the mempool drains — network latency, per-node
lane execution, lease handshakes, and consensus latency all included.

Serial-equivalence contract (machine-checked in
``tests/cluster/test_cluster_properties.py``): the final state and every
response equal a sequential execution of the workload in submission
order, for any node count, any shard count, and any lease schedule.

Quickstart::

    from repro.cluster import TokenCluster
    from repro.objects.erc20 import ERC20TokenType
    from repro.workloads import TokenWorkloadGenerator, OWNER_ONLY_MIX

    token = ERC20TokenType(64, total_supply=6400)
    cluster = TokenCluster(token, num_nodes=4, lanes_per_node=8)
    items = TokenWorkloadGenerator(64, seed=7, mix=OWNER_ONLY_MIX).generate(512)
    state, responses, stats = cluster.run_workload(items)
    print(f"{stats.throughput:.2f} ops/t, "
          f"{stats.owner_local_rate:.0%} owner-local, "
          f"{stats.escalation_messages} consensus messages")
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.config import UNSET, ClusterConfig, _with_overrides
from repro.engine.classifier import OpClassifier
from repro.engine.escalation import ConsensusEscalator
from repro.engine.mempool import PendingOp
from repro.errors import ClusterError
from repro.faults import FaultInjector, FaultSchedule
from repro.net.network import LatencyModel, Network, UniformLatency
from repro.net.simulation import Simulator
from repro.obs.trace import TraceRecorder
from repro.spec.object_type import SequentialObjectType
from repro.workloads.generators import WorkloadItem

from repro.cluster.node import ClusterNode
from repro.cluster.router import LEASE_MESSAGE_TYPES, Router
from repro.cluster.sharding import ShardMap
from repro.cluster.stats import ClusterStats


class TokenCluster:
    """N shard-owning nodes + router + shared escalation lane."""

    def __init__(
        self,
        object_type: SequentialObjectType,
        config: ClusterConfig | None = None,
        *,
        num_nodes=UNSET,
        lanes_per_node=UNSET,
        window=UNSET,
        num_shards=UNSET,
        op_cost=UNSET,
        latency: LatencyModel | None = None,
        seed=UNSET,
        mempool_capacity=UNSET,
        escalator: ConsensusEscalator | None = None,
        validate=UNSET,
        lease_min_gain=UNSET,
        lease_cooldown=UNSET,
        team_threshold=UNSET,
        pipeline_depth=UNSET,
        dag_scheduling=UNSET,
        lane_ttl=UNSET,
        result_timeout=UNSET,
        lease_timeout=UNSET,
        fault=UNSET,
        tracer: TraceRecorder | None = None,
    ) -> None:
        #: The resolved run configuration: explicit kwargs override the
        #: ``config=`` value, which overrides :class:`ClusterConfig`'s
        #: (fast-path) defaults.  ``ClusterConfig.legacy()`` recovers the
        #: historical barrier cluster bit for bit.
        self.config = cfg = _with_overrides(
            config if config is not None else ClusterConfig(),
            dict(
                num_nodes=num_nodes,
                lanes_per_node=lanes_per_node,
                window=window,
                num_shards=num_shards,
                op_cost=op_cost,
                seed=seed,
                mempool_capacity=mempool_capacity,
                validate=validate,
                lease_min_gain=lease_min_gain,
                lease_cooldown=lease_cooldown,
                team_threshold=team_threshold,
                pipeline_depth=pipeline_depth,
                dag_scheduling=dag_scheduling,
                lane_ttl=lane_ttl,
                result_timeout=result_timeout,
                lease_timeout=lease_timeout,
                fault=fault,
            ),
        )
        num_shards = cfg.num_shards
        if num_shards is None:
            # Enough shards that leases migrate at useful granularity.
            num_shards = max(16, 8 * cfg.num_nodes)
        self.object_type = object_type
        self.num_nodes = cfg.num_nodes
        self.simulator = Simulator()
        self.network = Network(
            self.simulator,
            latency if latency is not None else UniformLatency(0.5, 1.5),
            seed=cfg.seed,
        )
        #: Fault injection (:mod:`repro.faults`): a configured schedule is
        #: planted on the simulator and filters every network send; absent
        #: a schedule the network path is untouched (``faults is None``).
        self.injector: FaultInjector | None = None
        schedule = FaultSchedule.from_config(cfg.fault)
        if schedule is not None:
            self.injector = FaultInjector(schedule, self.simulator)
            self.network.faults = self.injector
        self.shard_map = ShardMap(num_shards, cfg.num_nodes)
        self.state = object_type.initial_state()
        self.stats = ClusterStats(
            num_nodes=cfg.num_nodes,
            lanes_per_node=cfg.lanes_per_node,
            window=cfg.window,
            num_shards=num_shards,
            op_cost=cfg.op_cost,
            dag_scheduling=cfg.dag_scheduling,
        )
        self.escalator = (
            escalator
            if escalator is not None
            else ConsensusEscalator(seed=cfg.seed)
        )
        #: Optional observability hook (:mod:`repro.obs`), threaded to the
        #: router and every node; ``None`` records nothing and keeps every
        #: historical stats dict bit-identical.
        self.tracer = tracer
        self.nodes = [
            ClusterNode(
                node_id,
                self.network,
                router_id=cfg.num_nodes,
                apply_fn=self._apply,
                classifier=OpClassifier(object_type),
                lanes=cfg.lanes_per_node,
                op_cost=cfg.op_cost,
                dag_scheduling=cfg.dag_scheduling,
                fault_tolerant=(
                    cfg.fault.enabled or cfg.result_timeout is not None
                ),
                tracer=tracer,
            )
            for node_id in range(cfg.num_nodes)
        ]
        for node in self.nodes:
            node.owned_shards = set(self.shard_map.shards_of_node(node.node_id))
        self.router = Router(
            cfg.num_nodes,
            self.network,
            shard_map=self.shard_map,
            classifier=OpClassifier(object_type, validate=cfg.validate),
            escalator=self.escalator,
            stats=self.stats,
            window=cfg.window,
            mempool_capacity=cfg.mempool_capacity,
            state_fn=(lambda: self.state) if cfg.validate else None,
            lease_min_gain=cfg.lease_min_gain,
            lease_cooldown=cfg.lease_cooldown,
            team_threshold=cfg.team_threshold,
            seed=cfg.seed,
            pipeline_depth=cfg.pipeline_depth,
            dag_scheduling=cfg.dag_scheduling,
            lane_ttl=cfg.lane_ttl,
            result_timeout=cfg.result_timeout,
            lease_timeout=cfg.lease_timeout,
            op_cost=cfg.op_cost,
            faults=self.injector,
            tracer=tracer,
        )
        self.stats.node_bills = [node.bill for node in self.nodes]
        #: Commit-side dedup (seq -> response): a unit replayed while its
        #: original result was in flight may apply an op twice; the first
        #: application is authoritative and re-applications return it.
        #: Always on — identical results when no fault ever fires.
        self._applied: dict[int, Any] = {}
        if self.injector is not None:
            self.injector.on_crash = self._on_crash
            self.injector.on_restart = self._on_restart
            self.injector.install()

    # -- intake -----------------------------------------------------------

    def submit(
        self, pid: int, operation, arrival: float | None = None
    ) -> PendingOp | None:
        """Admit one operation at the router (may shed under
        backpressure).  ``arrival`` back-dates the traced ``submit``
        stage to the op's open-loop arrival time; the default stamps the
        simulator's current time, the historical behavior bit for bit."""
        return self.router.submit(pid, operation, arrival=arrival)

    def feed(self, items: Iterable[WorkloadItem]) -> list[PendingOp]:
        """Admit a workload; returns the accepted operations."""
        return self.router.admit(items)

    # -- open-loop harness ------------------------------------------------

    def stream_now(self) -> float:
        """The cluster's current virtual time (the simulator clock) —
        the open-loop driver releases arrivals due by this instant."""
        return self.simulator.now

    def stream_advance(self, ts: float) -> None:
        """Advance the simulator's clock to ``ts`` (never backward):
        the driver models the quiet gap until the next arrival.
        Refused past a pending event — jumping the clock over scheduled
        work would deliver messages late."""
        horizon = self.simulator.next_event_time
        if horizon is not None and horizon < ts:
            raise ClusterError(
                f"cannot advance the clock to {ts} over an event "
                f"scheduled at {horizon}"
            )
        self.simulator.now = max(self.simulator.now, ts)

    def stream_finish(self) -> ClusterStats:
        """Close out a driven run: assert quiescence and fold the
        network/simulator tallies into the stats, exactly as
        :meth:`run` does when the mempool drains."""
        if not self.router.idle:
            raise ClusterError("stream finished with rounds in flight")
        self._sync_stats()
        return self.stats

    # -- execution --------------------------------------------------------

    def run(self) -> ClusterStats:
        """Drain the router's mempool.

        Barrier mode (``pipeline_depth=1``): round by round, each one
        quiescing before the next is classified.  Pipelined mode: the
        router keeps up to ``pipeline_depth`` rounds in flight, dispatching
        per-node batches as their frontier gates clear; round completions
        pump new classifications from inside the event loop, so one
        simulator run drains everything.
        """
        if self.router.pipeline_depth > 1:
            while True:
                self.router.pump()
                self.simulator.run()
                if not self.router.idle:
                    raise ClusterError("pipelined rounds did not quiesce")
                if not self.router.mempool:
                    break
        else:
            while self.router.start_round():
                self.simulator.run()
                if not self.router.idle:
                    raise ClusterError("round did not quiesce")
        self._sync_stats()
        return self.stats

    def run_workload(
        self, items: Iterable[WorkloadItem]
    ) -> tuple[Any, list[Any], ClusterStats]:
        """Feed a workload, drain it, and return
        ``(final_state, responses, stats)`` — responses aligned with the
        *admitted* items (drops are counted in ``stats.dropped_ops``)."""
        admitted = self.feed(items)
        self.run()
        return (
            self.state,
            [self.router.responses[p.seq] for p in admitted],
            self.stats,
        )

    def responses_in_order(self) -> list[Any]:
        """Responses of all executed operations, in submission order."""
        return [
            self.router.responses[seq] for seq in sorted(self.router.responses)
        ]

    # -- internals --------------------------------------------------------

    def _apply(self, op: PendingOp) -> Any:
        """Authoritative state transition, invoked by the executing node at
        its round's virtual completion time.  Exactly-once: a seq that
        already committed returns its recorded response without touching
        state, so replayed units and straggler results from fenced nodes
        can never double-apply."""
        if op.seq in self._applied:
            return self._applied[op.seq]
        self.state, response = self.object_type.apply(
            self.state, op.pid, op.operation
        )
        self._applied[op.seq] = response
        return response

    def _on_crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        if self.tracer is not None:
            self.tracer.instant(
                "faults",
                f"node {node_id} crashed",
                self.simulator.now,
                args={"node": node_id},
            )

    def _on_restart(self, node_id: int) -> None:
        # The node's durable identity is its shard ownership; rebuild it
        # from the router's authoritative map (revocations included),
        # then let the router replay what the crash erased and rebalance
        # shards onto the rejoined node.
        self.nodes[node_id].restart(
            owned_shards=set(self.shard_map.shards_of_node(node_id))
        )
        self.router.node_rejoined(node_id)

    def _sync_stats(self) -> None:
        self.stats.makespan = self.simulator.now
        self.stats.cluster_messages = self.network.stats.messages_sent
        self.stats.lease_messages = sum(
            self.network.stats.by_type.get(kind, 0)
            for kind in LEASE_MESSAGE_TYPES
        )
        # Every admitted op must have a response by quiescence; a nonzero
        # residue is *lost work* the recovery machinery failed to replay.
        self.stats.ops_lost = self.router.admitted_ops - len(
            self.router.responses
        )
