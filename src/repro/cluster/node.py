"""A cluster worker: the engine's round loop running as a network node.

Each :class:`ClusterNode` owns a set of account shards and executes the
operations the router forwards to it.  A round's batch is buffered until
complete (per-op ``cl_op`` forwards may be reordered by the network; the
batch announcement ``cl_run`` carries the expected count), then laid out
on the node's local lanes by the *same* :class:`~repro.engine.rounds.
RoundScheduler` the single-process engine uses: the router co-locates
every conflict-graph component, so rebuilding the graph over the batch
recovers exactly the components assigned here and lane-major application
is serially equivalent by the engine's argument.

Owner-local execution involves no coordination at all — the node never
sends or receives a lease or consensus message for it; its only traffic is
the forward in and the (batched) reply out.  The lease protocol surfaces
here as two handlers: ``cl_lease_request`` (hand the shard away) and
``cl_lease_grant`` (adopt it and ack to the router).

A batch containing contended components waits for its synchronization
lanes first: the router's ``cl_run`` announcement carries ``sync_delay``,
the virtual completion time of the slowest team/global lane ordering one
of this node's components (:mod:`repro.sync`), and the node charges that
wait to its bill (``sync_wait_time``) before executing — so a node whose
races resolved on a small, fast team lane starts earlier than one stuck
behind the shared global lane.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.classifier import OpClassifier
from repro.engine.mempool import PendingOp
from repro.engine.rounds import RoundScheduler
from repro.engine.shard import ShardPlanner
from repro.errors import ClusterError
from repro.net.network import Message, Network
from repro.net.node import Node

from repro.cluster.stats import NodeBill

#: Applies one operation to the authoritative state; returns the response.
ApplyFn = Callable[[PendingOp], Any]


class ClusterNode(Node):
    """One shard-owning worker of the token-processing cluster."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        router_id: int,
        apply_fn: ApplyFn,
        classifier: OpClassifier,
        lanes: int = 4,
        op_cost: float = 1.0,
    ) -> None:
        super().__init__(node_id, network)
        self.router_id = router_id
        self.apply_fn = apply_fn
        self.classifier = classifier
        self.planner = ShardPlanner(lanes)
        self.scheduler = RoundScheduler(classifier, self.planner)
        self.op_cost = op_cost
        self.bill = NodeBill(node_id=node_id)
        self.owned_shards: set[int] = set()
        self._batches: dict[int, list[PendingOp]] = {}
        self._expected: dict[int, int] = {}
        #: Lease grants this round's batch must wait for / has received.
        self._leases_needed: dict[int, int] = {}
        self._leases_granted: dict[int, int] = {}
        #: Sync-lane completion this round's batch must wait out first:
        #: a relative delay (barrier router) or an absolute completion
        #: time on the simulator clock (pipelined router).
        self._sync_delay: dict[int, float] = {}
        self._sync_ready: dict[int, float] = {}
        self._running: set[int] = set()
        #: Per-node frontier: the highest round this node has started.
        #: The pipelined router dispatches a node's rounds strictly in
        #: order, one at a time — this check turns that safety argument
        #: into an enforced invariant.
        self.frontier_round = -1

    # -- round execution --------------------------------------------------

    def handle_cl_op(self, message: Message) -> None:
        body = message.payload
        self._batches.setdefault(body["round"], []).append(body["op"])
        self.bill.forwards_received += 1
        self._maybe_run(body["round"])

    def handle_cl_run(self, message: Message) -> None:
        body = message.payload
        round_index, count = body["round"], body["count"]
        if count < 1:
            raise ClusterError("cl_run announced an empty batch")
        self._expected[round_index] = count
        self._leases_needed[round_index] = body.get("leases", 0)
        self._sync_delay[round_index] = body.get("sync_delay", 0.0)
        self._sync_ready[round_index] = body.get("sync_ready", 0.0)
        self._maybe_run(round_index)

    def _maybe_run(self, round_index: int) -> None:
        expected = self._expected.get(round_index)
        batch = self._batches.get(round_index, [])
        if expected is None or len(batch) < expected:
            return
        # A batch that depends on migrated shards runs only once their
        # leases arrived; the grant gates execution (the router's ack
        # bookkeeping stays off the critical path).
        needed = self._leases_needed.get(round_index, 0)
        if self._leases_granted.get(round_index, 0) < needed:
            return
        if round_index in self._running:
            return
        self._running.add(round_index)
        if len(batch) > expected:
            raise ClusterError(
                f"node {self.node_id} received {len(batch)} ops for round "
                f"{round_index}, expected {expected}"
            )
        if round_index <= self.frontier_round:
            raise ClusterError(
                f"node {self.node_id} asked to run round {round_index} "
                f"behind its frontier {self.frontier_round}"
            )
        self.frontier_round = round_index
        # Per-op forwards can arrive reordered; submission order is the
        # deterministic ground truth the scheduler works from.
        ops = sorted(batch, key=lambda op: op.seq)
        plan = self.scheduler.plan_batch(ops)
        # The batch's contended components execute only after their sync
        # lanes committed an order; the wait is this node's, not the
        # round's — other nodes run their batches meanwhile.  The barrier
        # router bills the lane latency as a relative ``sync_delay``; the
        # pipelined router sends the lane's absolute completion time, so a
        # batch that waited out its dependencies pays only the remainder.
        sync_delay = self._sync_delay.get(round_index, 0.0)
        sync_ready = self._sync_ready.get(round_index, 0.0)
        if sync_ready:
            sync_delay = max(sync_delay, sync_ready - self.now, 0.0)
        self.bill.sync_wait_time += sync_delay
        delay = plan.critical_path * self.op_cost + sync_delay
        self.schedule(delay, lambda: self._finish(round_index, plan, delay))

    def _finish(self, round_index: int, plan, busy: float) -> None:
        """Apply the round's plan lane-major and report the responses.

        State mutation happens at the round's virtual completion time; any
        interleaving with other nodes' rounds only ever reorders
        statically-commuting operations (the router's co-location
        invariant), so the wall-clock of the simulation cannot change the
        outcome.
        """
        responses: dict[int, Any] = {}
        for lane in plan.lanes:
            for op in lane:
                responses[op.seq] = self.apply_fn(op)
        self._batches.pop(round_index, None)
        self._expected.pop(round_index, None)
        self._leases_needed.pop(round_index, None)
        self._leases_granted.pop(round_index, None)
        self._sync_delay.pop(round_index, None)
        self._sync_ready.pop(round_index, None)
        self._running.discard(round_index)
        self.bill.ops_executed += len(responses)
        self.bill.rounds_active += 1
        self.bill.busy_time += busy
        self.bill.results_sent += 1
        self.send(
            self.router_id,
            "cl_result",
            {"round": round_index, "responses": responses},
        )

    # -- lease protocol ---------------------------------------------------

    def handle_cl_lease_request(self, message: Message) -> None:
        """Hand the shard's lease to the announced new owner."""
        body = message.payload
        shard = body["shard"]
        if shard not in self.owned_shards:
            raise ClusterError(
                f"node {self.node_id} asked to grant shard {shard} "
                "it does not own"
            )
        self.owned_shards.discard(shard)
        self.bill.leases_granted += 1
        self.send(
            body["new_owner"],
            "cl_lease_grant",
            {"shard": shard, "round": body["round"]},
        )

    def handle_cl_lease_grant(self, message: Message) -> None:
        """Adopt a shard, unblock the waiting batch, ack the router."""
        body = message.payload
        round_index = body["round"]
        self.owned_shards.add(body["shard"])
        self.bill.leases_acquired += 1
        self._leases_granted[round_index] = (
            self._leases_granted.get(round_index, 0) + 1
        )
        self.send(
            self.router_id,
            "cl_lease_ack",
            {"shard": body["shard"], "round": round_index},
        )
        self._maybe_run(round_index)
