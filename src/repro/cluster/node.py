"""A cluster worker: the engine's round loop running as a network node.

Each :class:`ClusterNode` owns a set of account shards and executes the
operations the router forwards to it.  A round's batch is buffered until
complete (per-op ``cl_op`` forwards may be reordered by the network; the
batch announcement ``cl_run`` carries the expected count), then laid out
on the node's local lanes by the *same* :class:`~repro.engine.rounds.
RoundScheduler` the single-process engine uses: the router co-locates
every conflict-graph component, so rebuilding the graph over the batch
recovers exactly the components assigned here and lane-major application
is serially equivalent by the engine's argument.

Owner-local execution involves no coordination at all — the node never
sends or receives a lease or consensus message for it; its only traffic is
the forward in and the (batched) reply out.  The lease protocol surfaces
here as two handlers: ``cl_lease_request`` (hand the shard away) and
``cl_lease_grant`` (adopt it and ack to the router).

A batch containing contended components waits for its synchronization
lanes first: the router's ``cl_run`` announcement carries ``sync_delay``,
the virtual completion time of the slowest team/global lane ordering one
of this node's components (:mod:`repro.sync`), and the node charges that
wait to its bill (``sync_wait_time``) before executing — so a node whose
races resolved on a small, fast team lane starts earlier than one stuck
behind the shared global lane.

**Component-granular dispatch** (the pipelined router with
``dag_scheduling``): the round batch stops being the execution unit.  The
router forwards each conflict-graph component (plus one residual unit of
the node's singletons) as its own ``cl_run``, individually gated, and the
node runs units incrementally on a *persistent lane timeline* — the
op-granular list scheduler (:meth:`~repro.engine.shard.ShardPlanner.
dag_schedule`) places each arriving unit's ops onto whichever lanes free
up first, so one unit blocked behind its sync lane or a cross-round
footprint conflict no longer holds up everything else routed to the node
that round.  Units of one round are distinct components (statically
commuting) and cross-round conflicts are dispatch-gated at the router, so
any unit interleaving stays serially equivalent.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.classifier import OpClassifier
from repro.engine.conflict_graph import ConflictGraph
from repro.engine.mempool import PendingOp
from repro.engine.rounds import RoundScheduler
from repro.engine.shard import ShardPlanner
from repro.errors import ClusterError
from repro.net.network import Message, Network
from repro.net.node import Node
from repro.obs.trace import TraceRecorder

from repro.cluster.stats import NodeBill

#: Applies one operation to the authoritative state; returns the response.
ApplyFn = Callable[[PendingOp], Any]


class ClusterNode(Node):
    """One shard-owning worker of the token-processing cluster."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        router_id: int,
        apply_fn: ApplyFn,
        classifier: OpClassifier,
        lanes: int = 4,
        op_cost: float = 1.0,
        dag_scheduling: bool = False,
        tracer: TraceRecorder | None = None,
        fault_tolerant: bool = False,
    ) -> None:
        super().__init__(node_id, network)
        self.router_id = router_id
        self.apply_fn = apply_fn
        self.classifier = classifier
        self.planner = ShardPlanner(lanes, dag_scheduling=dag_scheduling)
        self.scheduler = RoundScheduler(classifier, self.planner)
        self.op_cost = op_cost
        #: Persistent lane timeline for component-granular units (absolute
        #: virtual times; only the unit path touches it), and the rounds
        #: this node has executed at least one unit of (so
        #: ``rounds_active`` stays comparable across dispatch modes).
        self._lane_free = [0.0] * lanes
        self._unit_rounds: set[int] = set()
        self.bill = NodeBill(node_id=node_id)
        self.owned_shards: set[int] = set()
        self._batches: dict[int, list[PendingOp]] = {}
        self._expected: dict[int, int] = {}
        #: Lease grants this round's batch must wait for / has received.
        self._leases_needed: dict[int, int] = {}
        self._leases_granted: dict[int, int] = {}
        #: Sync-lane completion this round's batch must wait out first:
        #: a relative delay (barrier router) or an absolute completion
        #: time on the simulator clock (pipelined router).
        self._sync_delay: dict[int, float] = {}
        self._sync_ready: dict[int, float] = {}
        self._running: set[int] = set()
        #: Per-node frontier: the highest round this node has started.
        #: The pipelined router dispatches a node's rounds strictly in
        #: order, one at a time — this check turns that safety argument
        #: into an enforced invariant.
        self.frontier_round = -1
        #: Optional observability hook (:mod:`repro.obs`); ``None``
        #: records nothing.  ``_blocked_since`` remembers when a complete
        #: batch/unit first stalled on a missing lease grant, so the wait
        #: can be attributed as ``lease_wait`` when it finally runs.
        self.tracer = tracer
        self._blocked_since: dict = {}
        #: Crash/restart lifecycle (:mod:`repro.faults`).  When fault
        #: tolerance is on, every in-flight execution timer is tracked so
        #: :meth:`crash` can cancel it — a crash loses exactly the work
        #: that had not reached its virtual completion time.
        self.fault_tolerant = fault_tolerant
        self.crashed = False
        self._timers: list = []

    # -- crash/restart lifecycle ------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state: cancel every in-flight execution
        timer and forget buffered batches, lease bookkeeping, and owned
        shards.  Committed work (applied before the crash) is untouched —
        application and result reporting happen in one simulator event,
        so there is no window where state mutated but the result is not
        on the wire."""
        self.crashed = True
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self._batches.clear()
        self._expected.clear()
        self._leases_needed.clear()
        self._leases_granted.clear()
        self._sync_delay.clear()
        self._sync_ready.clear()
        self._running.clear()
        self._blocked_since.clear()
        self.owned_shards.clear()
        self.bill.crashes += 1

    def restart(self, owned_shards: set[int] | None = None) -> None:
        """Rejoin as a fresh process: empty lane timeline, no in-flight
        work, shard ownership resynchronized to the router's view (the
        shard map is the authoritative record; whatever the router
        revoked while this node was down is gone)."""
        self.crashed = False
        self._lane_free = [0.0] * len(self._lane_free)
        if owned_shards is not None:
            self.owned_shards = set(owned_shards)
        self.bill.restarts += 1

    def _track_timer(self, handle) -> None:
        """Remember an execution timer so a crash can cancel it; consumed
        handles are pruned lazily so the list stays bounded."""
        if not self.fault_tolerant:
            return
        self._timers.append(handle)
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if h.active]

    # -- round execution --------------------------------------------------

    @staticmethod
    def _batch_key(body: dict):
        """Batch-granular rounds key on the round index; component-
        granular units on ``(round, unit)``.  One run never mixes the
        two — the router picks the granularity at construction."""
        if "unit" in body:
            return (body["round"], body["unit"])
        return body["round"]

    def handle_cl_op(self, message: Message) -> None:
        body = message.payload
        key = self._batch_key(body)
        self._batches.setdefault(key, []).append(body["op"])
        self.bill.forwards_received += 1
        if isinstance(key, tuple):
            self._maybe_run_unit(key)
        else:
            self._maybe_run(key)

    def handle_cl_run(self, message: Message) -> None:
        body = message.payload
        key, count = self._batch_key(body), body["count"]
        if count < 1:
            raise ClusterError("cl_run announced an empty batch")
        self._expected[key] = count
        self._leases_needed[key] = body.get("leases", 0)
        self._sync_delay[key] = body.get("sync_delay", 0.0)
        self._sync_ready[key] = body.get("sync_ready", 0.0)
        piggybacked = body.get("ops")
        if piggybacked is not None:
            # Component-granular units carry their ops inside the
            # announcement (one message per unit instead of 1 + n); the
            # bill still counts every op forward received.
            self._batches.setdefault(key, []).extend(piggybacked)
            self.bill.forwards_received += len(piggybacked)
        if isinstance(key, tuple):
            self._maybe_run_unit(key)
        else:
            self._maybe_run(key)

    def _maybe_run(self, round_index: int) -> None:
        expected = self._expected.get(round_index)
        batch = self._batches.get(round_index, [])
        if expected is None or len(batch) < expected:
            return
        # A batch that depends on migrated shards runs only once their
        # leases arrived; the grant gates execution (the router's ack
        # bookkeeping stays off the critical path).
        needed = self._leases_needed.get(round_index, 0)
        if self._leases_granted.get(round_index, 0) < needed:
            if self.tracer is not None:
                self._blocked_since.setdefault(round_index, self.now)
            return
        if round_index in self._running:
            return
        self._running.add(round_index)
        if len(batch) > expected:
            raise ClusterError(
                f"node {self.node_id} received {len(batch)} ops for round "
                f"{round_index}, expected {expected}"
            )
        if round_index <= self.frontier_round:
            raise ClusterError(
                f"node {self.node_id} asked to run round {round_index} "
                f"behind its frontier {self.frontier_round}"
            )
        self.frontier_round = round_index
        # Per-op forwards can arrive reordered; submission order is the
        # deterministic ground truth the scheduler works from.
        ops = sorted(batch, key=lambda op: op.seq)
        plan = self.scheduler.plan_batch(ops)
        self._bill_dag(
            plan.dag_chain_ops,
            plan.dag_critical_ops,
            plan.dag_critical_path,
            plan.dag_width,
        )
        # The batch's contended components execute only after their sync
        # lanes committed an order; the wait is this node's, not the
        # round's — other nodes run their batches meanwhile.  The barrier
        # router bills the lane latency as a relative ``sync_delay``; the
        # pipelined router sends the lane's absolute completion time, so a
        # batch that waited out its dependencies pays only the remainder.
        sync_delay = self._sync_delay.get(round_index, 0.0)
        sync_ready = self._sync_ready.get(round_index, 0.0)
        if sync_ready:
            sync_delay = max(sync_delay, sync_ready - self.now, 0.0)
        self.bill.sync_wait_time += sync_delay
        delay = plan.critical_path * self.op_cost + sync_delay
        if self.tracer is not None:
            self._trace_batch(round_index, plan, sync_delay, delay)
        handle = self.schedule(
            delay, lambda: self._finish(round_index, plan, delay)
        )
        self._track_timer(handle)

    def _trace_batch(
        self, round_index: int, plan, sync_delay: float, delay: float
    ) -> None:
        """Record one batch round's lane layout: per-op execute spans on
        this node's lane tracks, with the batch's sync-lane wait and any
        lease wait carried (backward-walk order) by the ops that start
        the layout — exactly how the round's completion is accounted
        (``delay = critical_path * op_cost + sync_delay``)."""
        tracer = self.tracer
        assert tracer is not None
        now = self.now
        lease_wait = now - self._blocked_since.pop(round_index, now)
        exec_start = now + sync_delay
        finish = now + delay
        stalls = tuple(
            (category, amount)
            for category, amount in (
                ("sync_wait", sync_delay),
                ("lease_wait", lease_wait),
            )
            if amount > 0
        )
        if plan.placements is not None:
            placed = [
                (op, start, end, lane)
                for op, (start, end, lane) in zip(
                    plan.apply_order, plan.placements
                )
            ]
        else:
            placed = [
                (op, j, j + 1, lane_id)
                for lane_id, lane_ops in enumerate(plan.lanes)
                for j, op in enumerate(lane_ops)
            ]
        for op, start, end, lane in placed:
            start_vt = exec_start + start * self.op_cost
            tracer.span(
                f"node{self.node_id}.lane{lane}",
                f"op {op.seq}",
                "execute",
                start_vt,
                exec_start + end * self.op_cost,
                stalls=stalls if start == 0 else (),
                args={"seq": op.seq, "pid": op.pid, "round": round_index},
            )
            tracer.op_stage(op.seq, "schedule", start_vt)
            tracer.op_stage(op.seq, "execute", start_vt)
            tracer.op_commit(op.seq, finish)

    def _finish(self, round_index: int, plan, busy: float) -> None:
        """Apply the round's plan lane-major and report the responses.

        State mutation happens at the round's virtual completion time; any
        interleaving with other nodes' rounds only ever reorders
        statically-commuting operations (the router's co-location
        invariant), so the wall-clock of the simulation cannot change the
        outcome.
        """
        responses: dict[int, Any] = {}
        if plan.apply_order is not None:
            # DAG plans carry an explicit linear extension of every
            # component DAG (lane-major application is unsound once one
            # chain spans lanes).
            for op in plan.apply_order:
                responses[op.seq] = self.apply_fn(op)
        else:
            for lane in plan.lanes:
                for op in lane:
                    responses[op.seq] = self.apply_fn(op)
        self._batches.pop(round_index, None)
        self._expected.pop(round_index, None)
        self._leases_needed.pop(round_index, None)
        self._leases_granted.pop(round_index, None)
        self._sync_delay.pop(round_index, None)
        self._sync_ready.pop(round_index, None)
        self._running.discard(round_index)
        self.bill.ops_executed += len(responses)
        self.bill.rounds_active += 1
        self.bill.busy_time += busy
        self.bill.results_sent += 1
        self.send(
            self.router_id,
            "cl_result",
            {"round": round_index, "responses": responses},
        )

    # -- component-granular units -----------------------------------------

    def _bill_dag(
        self, chain_ops: int, critical_ops: int, critical_path: int, width: int
    ) -> None:
        self.bill.dag_chain_ops += chain_ops
        self.bill.dag_critical_ops += critical_ops
        self.bill.max_dag_critical_path = max(
            self.bill.max_dag_critical_path, critical_path
        )
        self.bill.max_dag_width = max(self.bill.max_dag_width, width)

    def _maybe_run_unit(self, key: tuple) -> None:
        """Run one dispatch unit (a component, or a round's singletons)
        on the persistent lane timeline as soon as it is complete.

        Units interleave freely on the node: units of one round are
        distinct components (statically commuting), and conflicting units
        of different rounds are dispatch-gated at the router, so the lane
        timeline only ever overlaps commuting work.  The op-granular list
        scheduler places each op on the earliest lane its component
        predecessors allow, continuing wherever earlier units left the
        lanes.
        """
        expected = self._expected.get(key)
        batch = self._batches.get(key, [])
        if expected is None or len(batch) < expected:
            return
        needed = self._leases_needed.get(key, 0)
        if self._leases_granted.get(key, 0) < needed:
            if self.tracer is not None:
                self._blocked_since.setdefault(key, self.now)
            return
        if key in self._running:
            return
        self._running.add(key)
        if len(batch) > expected:
            raise ClusterError(
                f"node {self.node_id} received {len(batch)} ops for unit "
                f"{key}, expected {expected}"
            )
        if not self.planner.dag_scheduling:
            raise ClusterError(
                "component-granular units require a DAG-scheduling planner"
            )
        ops = sorted(batch, key=lambda op: op.seq)
        # The unit's contended ops execute only after their sync lane
        # committed an order; the pipelined router sends the lane's
        # absolute completion, so the unit pays only the remainder.
        sync_ready = self._sync_ready.get(key, 0.0)
        ready = max(self.now, sync_ready)
        self.bill.sync_wait_time += max(0.0, sync_ready - self.now)
        graph = ConflictGraph.build(self.classifier, ops)
        chain_idx, singleton_idx, _ = self.scheduler.split(graph)
        dags = graph.component_dags()
        tasks, placed = self.planner.dag_schedule(
            [[ops[i] for i in chain] for chain in chain_idx],
            [ops[i] for i in singleton_idx],
            dags,
            self._lane_free,
            floor=ready,
            cost=self.op_cost,
        )
        order = [
            tasks[i]
            for i in sorted(
                range(len(tasks)),
                key=lambda i: (placed[i][0], tasks[i].seq),
            )
        ]
        finish = max((f for _, f, _ in placed), default=ready)
        # Bill the unit's execution span (first op start -> last finish),
        # not its wall time since arrival — time spent queued behind
        # other units' lane occupancy is not this unit's work.
        started = min((s for s, _, _ in placed), default=ready)
        self._bill_dag(
            sum(dag.size for dag in dags),
            sum(dag.critical_path for dag in dags),
            max((dag.critical_path for dag in dags), default=0),
            max((dag.width for dag in dags), default=0),
        )
        if self.tracer is not None:
            self._trace_unit(key, tasks, placed, ready, finish)
        handle = self.schedule(
            finish - self.now,
            lambda: self._finish_unit(key, order, finish - started),
        )
        self._track_timer(handle)

    def _trace_unit(
        self,
        key: tuple,
        tasks: list[PendingOp],
        placed: list[tuple],
        ready: float,
        finish: float,
    ) -> None:
        """Record one dispatch unit's placement on the persistent lane
        timeline.  The list scheduler's times are already absolute, so
        spans copy them verbatim; the unit's sync-lane remainder and any
        lease wait ride (backward-walk order) on the ops floored at
        ``ready`` — ops floored by lane occupancy instead overlapped
        those waits, which therefore cost the timeline nothing."""
        tracer = self.tracer
        assert tracer is not None
        now = self.now
        round_index, unit = key
        lease_wait = now - self._blocked_since.pop(key, now)
        stalls = tuple(
            (category, amount)
            for category, amount in (
                ("sync_wait", ready - now),
                ("lease_wait", lease_wait),
            )
            if amount > 0
        )
        for op, (start, end, lane) in zip(tasks, placed):
            tracer.span(
                f"node{self.node_id}.lane{lane}",
                f"op {op.seq}",
                "execute",
                start,
                end,
                stalls=stalls if start == ready else (),
                args={
                    "seq": op.seq,
                    "pid": op.pid,
                    "round": round_index,
                    "unit": unit,
                },
            )
            tracer.op_stage(op.seq, "schedule", start)
            tracer.op_stage(op.seq, "execute", start)
            tracer.op_commit(op.seq, finish)

    def _finish_unit(
        self, key: tuple, order: list[PendingOp], busy: float
    ) -> None:
        """Apply the unit in its schedule's linear-extension order and
        report per-unit responses (state mutates at the unit's virtual
        completion, like the batch path's round completion)."""
        responses: dict[int, Any] = {}
        for op in order:
            responses[op.seq] = self.apply_fn(op)
        round_index, unit = key
        self._batches.pop(key, None)
        self._expected.pop(key, None)
        self._leases_needed.pop(key, None)
        self._leases_granted.pop(key, None)
        self._sync_delay.pop(key, None)
        self._sync_ready.pop(key, None)
        self._running.discard(key)
        self.bill.ops_executed += len(responses)
        self.bill.units_executed += 1
        if round_index not in self._unit_rounds:
            self._unit_rounds.add(round_index)
            self.bill.rounds_active += 1
        self.bill.busy_time += busy
        self.bill.results_sent += 1
        self.send(
            self.router_id,
            "cl_result",
            {"round": round_index, "unit": unit, "responses": responses},
        )

    # -- lease protocol ---------------------------------------------------

    def handle_cl_lease_request(self, message: Message) -> None:
        """Hand the shard's lease to the announced new owner."""
        body = message.payload
        shard = body["shard"]
        if shard not in self.owned_shards:
            raise ClusterError(
                f"node {self.node_id} asked to grant shard {shard} "
                "it does not own"
            )
        self.owned_shards.discard(shard)
        self.bill.leases_granted += 1
        if self.tracer is not None:
            self.tracer.instant(
                f"node{self.node_id}",
                f"lease shard {shard} -> node {body['new_owner']}",
                self.now,
                args={"round": body["round"]},
            )
        grant = {"shard": shard, "round": body["round"]}
        if "unit" in body:
            # Component-granular dispatch: the grant unblocks exactly the
            # unit whose chain triggered the migration.
            grant["unit"] = body["unit"]
        self.send(body["new_owner"], "cl_lease_grant", grant)

    def handle_cl_lease_grant(self, message: Message) -> None:
        """Adopt a shard, unblock the waiting batch or unit, ack the
        router."""
        body = message.payload
        self.owned_shards.add(body["shard"])
        self.bill.leases_acquired += 1
        if self.tracer is not None:
            self.tracer.instant(
                f"node{self.node_id}",
                f"lease shard {body['shard']} adopted",
                self.now,
                args={"round": body["round"]},
            )
        if body["round"] < 0:
            # Administrative transfer (rejoin rebalancing): no batch or
            # unit is waiting on this grant — adopt and ack only.
            self.send(
                self.router_id,
                "cl_lease_ack",
                {"shard": body["shard"], "round": body["round"]},
            )
            return
        key = self._batch_key(body)
        self._leases_granted[key] = self._leases_granted.get(key, 0) + 1
        self.send(
            self.router_id,
            "cl_lease_ack",
            {"shard": body["shard"], "round": body["round"]},
        )
        if isinstance(key, tuple):
            self._maybe_run_unit(key)
        else:
            self._maybe_run(key)

    def handle_cl_lease_revoke(self, message: Message) -> None:
        """Adopt a shard the router revoked from a failed owner.

        Unlike a grant, no handover from the previous owner is possible —
        the router reassigned the shard unilaterally.  A revoke that
        carries a ``round``/``unit`` doubles as the grant the named unit
        was waiting for (its granter died mid-handoff); an administrative
        revoke (``round < 0``) only adopts.  Both ack the router so it
        can serialize further handoffs of the shard behind the adoption.
        """
        body = message.payload
        shard = body["shard"]
        self.owned_shards.add(shard)
        self.bill.leases_acquired += 1
        if self.tracer is not None:
            self.tracer.instant(
                f"node{self.node_id}",
                f"lease shard {shard} revoked from node {body['from_node']}",
                self.now,
                args={"shard": shard, "from_node": body["from_node"]},
            )
        self.send(
            self.router_id,
            "cl_lease_ack",
            {"shard": shard, "round": body["round"]},
        )
        if body["round"] < 0:
            return
        key = self._batch_key(body)
        self._leases_granted[key] = self._leases_granted.get(key, 0) + 1
        self._maybe_run_unit(key)

    def handle_cl_ping(self, message: Message) -> None:
        """Answer the router's liveness probe.  A pong proves only that
        the node is up and reachable; in-flight work stays silent until
        it finishes."""
        self.send(message.src, "cl_pong", {})
