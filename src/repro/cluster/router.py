"""The cluster's client edge: admission, routing, leases, escalation.

The router is the distributed analogue of the engine's round loop.  Each
round it pops a window from its (optionally bounded) mempool, classifies
it with the shared :class:`~repro.engine.rounds.RoundScheduler`, and
routes every conflict-graph component as a unit:

* **owner-local components** — every operation anchors on an account whose
  shard one node owns; the component is forwarded point-to-point and costs
  no coordination at all (the paper's consensus-number-1 regime at the
  message level);
* **cross-shard but uncontended components** — a chain whose anchors span
  several owners without any synchronization-group conflict inside it
  (e.g. credit-enables-spend order across accounts).  The shard-ownership
  *lease protocol* resolves it: the router asks the minority owners to
  hand their shards to the busiest participant (``cl_lease_request`` →
  ``cl_lease_grant`` → ``cl_lease_ack``), ownership migrates, and the
  chain executes owner-locally on the new owner — three messages per
  migrated shard instead of a consensus round;
* **contended cross-node components** — synchronization-group conflicts
  whose members span owners.  No single owner is entitled to sequence the
  race, but — by the paper's Theorems 2–4 — only the *participants* have
  to agree: each such component gets a **team lane** among just its owner
  nodes (:mod:`repro.sync`, ``O(k²)`` messages for ``k`` owners, many
  teams concurrent) when the owner set is within ``team_threshold``;
  larger races fall back to the shared total-order lane
  (:class:`~repro.engine.escalation.ConsensusEscalator`).  Either way the
  ordering latency delays only the nodes executing those components (the
  ``sync_delay`` carried by the batch announcement).

Oversized commuting bundles (hot shards) are sprayed across the least-
loaded nodes using the engine planner's target heuristic — sound because
singleton components commute with the whole window — and counted as hot
splits rather than migrations.

Lease anti-churn: besides ``lease_min_gain``, a ``lease_cooldown`` of
``c`` rounds pins a shard to its new owner for ``c`` rounds after every
migration, so ownership cannot ping-pong between two nodes on alternating
rounds (suppressed handoffs are counted, and the chain still executes
correctly on its majority owner — co-location, not ownership, is the
safety argument).

Co-locating whole components per round is the entire safety argument:
any two operations applied on different nodes in one round statically
commute, so every network interleaving is serially equivalent, for any
node count and any lease schedule.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.engine.classifier import OpClassifier
from repro.engine.conflict_graph import ConflictGraph
from repro.engine.escalation import ConsensusEscalator, tiered_escalator
from repro.engine.mempool import Mempool, PendingOp
from repro.engine.rounds import RoundScheduler
from repro.engine.shard import ShardPlanner
from repro.errors import ClusterError, MempoolFullError
from repro.net.network import Message, Network
from repro.net.node import Node
from repro.objects.footprint import FootprintSummary, anchor_account
from repro.obs.trace import TraceRecorder
from repro.sync.escalation import TieredEscalator
from repro.sync.planner import SyncAssignment
from repro.workloads.generators import WorkloadItem

from repro.cluster.sharding import ShardMap
from repro.cluster.stats import ClusterRound, ClusterStats

#: The lease handshake costs three messages per migrated shard.
LEASE_MESSAGE_TYPES = (
    "cl_lease_request",
    "cl_lease_grant",
    "cl_lease_ack",
    "cl_lease_revoke",
)

#: Sentinel round index of administrative lease traffic — fail-over
#: revocations and rejoin rebalancing transfers.  No batch or unit waits
#: on an administrative grant; its ack only releases the per-shard
#: handoff serialization.
ADMIN_ROUND = -1

#: Unit indices at or above this base are replay incarnations (a fresh
#: index per replay keeps ``(node, unit)`` keys collision-free against
#: every positionally indexed unit of the round).
_REPLAY_BASE = 1 << 20


@dataclass(frozen=True, slots=True)
class _DispatchUnit:
    """One component-granular dispatch unit of a routed window.

    A unit is a single conflict-graph component co-located on one node —
    or the residual set of the node's singletons, which commute with the
    whole window.  Units are the gate granularity of the pipelined router
    under ``dag_scheduling``: each carries its own footprint summary, its
    own sync-lane delay, and its own lease count, so one blocked component
    no longer holds up everything else routed to its node that round.
    """

    ops: tuple[PendingOp, ...]
    contended: bool
    #: This unit's sync-lane completion, relative to the round's sync
    #: phase start (0.0 for uncontended units).
    sync_delay: float
    #: Lease grants the unit's node must hold before running it.
    leases: int


@dataclass
class _RoutedWindow:
    """Pure outcome of routing one window (no messages sent yet).

    The computation — component co-location, lease planning, hot-shard
    splitting, spill, tiered synchronization — is identical for the
    barrier and the pipelined round loops; only *when* the per-node
    batches and lease requests go out differs.  Factoring it here is what
    keeps ``pipeline_depth=1`` the historical behavior: there is a single
    routing implementation for both paths.
    """

    index: int
    assignment: dict[int, list[PendingOp]]
    #: Per-node sync-lane completion the batch must wait out (relative to
    #: the start of the round's synchronization phase).
    node_delays: dict[int, float]
    leases_by_node: dict[int, int]
    migrations: list[tuple[int, int, int]]
    t_escalation: float
    escalation_messages: int
    owner_local: int
    hot_split: int
    spill: int
    escalated: int
    team_ops: int
    global_ops: int
    team_messages: int
    global_messages: int
    teams: int
    team_sizes: tuple[int, ...]
    cooldown_skips: int
    #: Nodes executing a contended (sync-ordered) component this round —
    #: the stall-attribution split of the pipelined path.
    contended_nodes: frozenset[int]
    #: Component-granular dispatch only: per node, the window's dispatch
    #: units in submission order of their heads (``None`` = batch mode).
    units_by_node: dict[int, list[_DispatchUnit]] | None = None
    #: shard -> (node, unit index) whose chain triggered the migration.
    lease_units: dict[int, tuple[int, int]] | None = None
    #: Per contended op: ``(seq, completed)`` with ``completed`` relative
    #: to the round's sync phase start (tracer lifecycle bookkeeping).
    sync_ops: tuple[tuple[int, float], ...] = ()


@dataclass
class _RoundState:
    """In-flight bookkeeping for one barrier routing round."""

    routed: _RoutedWindow
    started: float
    pending_acks: int
    pending_results: set[int] = field(default_factory=set)

    @property
    def index(self) -> int:
        return self.routed.index


@dataclass
class _PipelinedRound:
    """In-flight bookkeeping for one round of the pipelined router."""

    routed: _RoutedWindow
    classified: float
    #: Absolute start of this round's synchronization phase (the shared
    #: sync lanes are one resource: phases serialize across rounds but
    #: overlap node execution).
    sync_start: float
    #: May-access summaries, the cross-round frontier test's input —
    #: keyed by node (batch dispatch) or ``(node, unit)`` (component-
    #: granular dispatch).
    summaries: dict
    #: Rounds in flight (this one included) right after classification.
    inflight: int
    pending_results: set
    pending_acks: int
    #: Lease requests not yet sent (per-shard handoffs serialize).
    lease_pending: list[tuple[int, int, int]]
    dispatched: set = field(default_factory=set)
    completed: set = field(default_factory=set)
    dispatch_stall: float = 0.0
    dispatch_stall_contended: float = 0.0
    #: Dispatch key -> time its ready-to-go batch/unit was first blocked
    #: by the cross-round footprint gate (not by its node being busy).
    gate_blocked_since: dict = field(default_factory=dict)
    frontier_stall: float = 0.0
    frontier_stall_contended: float = 0.0
    #: Fail-over replays: ``(node, unit)`` -> the re-dispatched unit
    #: (``units_by_node`` is positional, so replay incarnations live in
    #: this side table), plus the per-round replay index counter.
    replay_units: dict = field(default_factory=dict)
    replay_seq: int = 0


@dataclass
class _RecoveryEpisode:
    """One node-failure episode: from declaring the node dead (or its
    rejoin-time reconciliation) to the last replayed result arriving."""

    started: float
    outstanding: set = field(default_factory=set)


class Router(Node):
    """Client-edge node: admission control, footprint routing, leases."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        shard_map: ShardMap,
        classifier: OpClassifier,
        escalator: ConsensusEscalator,
        stats: ClusterStats,
        window: int = 64,
        mempool_capacity: int | None = None,
        state_fn: Callable[[], Any] | None = None,
        lease_min_gain: int = 2,
        lease_cooldown: int = 0,
        team_threshold: int = 0,
        sync: TieredEscalator | None = None,
        seed: int = 0,
        pipeline_depth: int = 1,
        dag_scheduling: bool = False,
        lane_ttl: int | None = None,
        tracer: TraceRecorder | None = None,
        result_timeout: float | None = None,
        lease_timeout: float | None = None,
        op_cost: float = 1.0,
        faults=None,
    ) -> None:
        super().__init__(node_id, network)
        if pipeline_depth < 1:
            raise ClusterError("pipeline_depth must be >= 1")
        #: Component-granular dispatch: with op-granular DAG scheduling on
        #: and the pipeline active, every conflict-graph component travels
        #: as its own individually gated ``cl_run`` unit.  The barrier
        #: loop (depth 1) keeps batch dispatch either way — there is
        #: nothing to overlap within a quiescing round.
        self.dag_scheduling = dag_scheduling
        self.unit_dispatch = dag_scheduling and pipeline_depth > 1
        self.shard_map = shard_map
        self.classifier = classifier
        self.escalator = escalator
        self.stats = stats
        self.window = window
        if window < 1:
            raise ClusterError("window must be positive")
        if lease_cooldown < 0:
            raise ClusterError("lease_cooldown must be non-negative")
        self.mempool = Mempool(capacity=mempool_capacity)
        #: A chain migrates leases only when its majority owner already has
        #: at least this many of its operations — a 1-vs-1 split names no
        #: "busier node" and a handoff would be pure ownership churn.
        self.lease_min_gain = lease_min_gain
        #: Rounds a freshly migrated shard is pinned to its new owner
        #: (hysteresis against alternating-round ping-pong).
        self.lease_cooldown = lease_cooldown
        #: The tiered sync layer: contended cross-node components get a
        #: team lane among just their owner nodes when the owner set is
        #: within ``team_threshold``; the shared global lane otherwise.
        self.sync = (
            sync
            if sync is not None
            else tiered_escalator(
                escalator,
                team_threshold=team_threshold,
                seed=seed,
                lane_ttl=lane_ttl,
            )
        )
        self.scheduler = RoundScheduler(
            classifier, ShardPlanner(shard_map.num_nodes)
        )
        #: shard -> round of its last lease migration (cooldown bookkeeping).
        self._last_migration: dict[int, int] = {}
        self._state_fn = state_fn
        self.responses: dict[int, Any] = {}
        self._round: _RoundState | None = None
        self._rounds_started = 0
        #: Cross-round pipelining (``pipeline_depth > 1``): rounds in
        #: flight, per-node dispatch FIFOs, and the gates that replace the
        #: global round barrier (see :meth:`pump`).
        self.pipeline_depth = pipeline_depth
        stats.pipeline_depth = pipeline_depth
        self._inflight: dict[int, _PipelinedRound] = {}
        self._node_queue: dict[int, deque[int]] = {
            node: deque() for node in range(shard_map.num_nodes)
        }
        #: Nodes with a dispatched batch whose result is still out.
        self._node_outstanding: set[int] = set()
        #: shard -> round of its in-flight lease handoff (handoffs of one
        #: shard serialize: the next request waits for the previous ack).
        self._shard_ack_round: dict[int, int] = {}
        #: Absolute time the shared sync lanes are busy until.
        self._sync_free = 0.0
        #: Optional observability hook (:mod:`repro.obs`); ``None``
        #: records nothing and keeps every stats dict bit-identical.
        self.tracer = tracer
        if tracer is not None and getattr(self.sync, "pool", None) is not None:
            self.sync.pool.tracer = tracer
        #: Fault recovery (:mod:`repro.faults`).  ``result_timeout`` arms
        #: a timer per dispatched unit; a unit whose ``cl_result`` is
        #: late is evidence its node died, and the router fences the
        #: node, revokes its leases, and replays its in-flight units on
        #: survivors.  ``None`` (the default) disables detection and
        #: keeps every code path bit-identical to the fault-free router.
        self.recovery = result_timeout is not None
        if self.recovery and not self.unit_dispatch:
            raise ClusterError(
                "fault recovery needs component-granular dispatch "
                "(dag_scheduling=True with pipeline_depth > 1)"
            )
        self.result_timeout = result_timeout
        self.lease_timeout = (
            lease_timeout if lease_timeout is not None else result_timeout
        )
        #: Per-op execution cost — sizes the work envelope a dispatched
        #: unit is entitled to before its silence counts as evidence.
        self.op_cost = op_cost
        self.faults = faults
        #: Operations admitted past the mempool (the denominator of the
        #: zero-committed-op-loss check: admitted − responded = lost).
        self.admitted_ops = 0
        self._dead: set[int] = set()
        #: ``(round, node, unit)`` -> result-timeout timer handle.
        self._result_timers: dict = {}
        #: shard -> lease-timeout timer / ``(round, granter, adopter)``
        #: of its in-flight handoff (recovery bookkeeping only).
        self._lease_timers: dict = {}
        self._handoff_info: dict = {}
        #: ``(round, node, unit)`` of a replay incarnation -> the failed
        #: node(s) whose episodes await its result, and the virtual time
        #: each replay was created (recovery-stall attribution).
        self._replay_episode: dict = {}
        self._replay_started: dict = {}
        #: Failed node -> its open recovery episode.
        self._recovering: dict[int, _RecoveryEpisode] = {}
        #: node -> last virtual time it was dispatched to or heard from
        #: (result or ack); the liveness floor result timeouts extend to.
        self._last_heard: dict[int, float] = {}
        #: node -> serial-sum execution envelope of its dispatched but
        #: unfinished units, and the envelope each unit contributed.  A
        #: single giant conflict component runs longer than any fixed
        #: timeout while producing no interim results; its silence is
        #: not evidence until its execution envelope has elapsed too.
        #: The envelope shrinks as results land, so detection latency is
        #: bounded by the node's outstanding work, not the run length.
        self._outstanding_work: dict[int, float] = {}
        self._unit_envelope: dict = {}
        #: node -> virtual time of its unanswered liveness probe.  A
        #: timeout alone cannot tell a dead node from a live one whose
        #: message was lost in transit; the probe asks the node itself.
        self._probes: dict[int, float] = {}
        #: round -> unit retransmissions charged against its budget, and
        #: shard -> handoff resends.  Both capped, so a network that
        #: eats every copy ends the run with an honest error instead of
        #: retransmitting forever.
        self._retransmits: dict[int, int] = {}
        self._lease_resends: dict[int, int] = {}

    # -- intake -----------------------------------------------------------

    def submit(
        self, pid: int, operation, arrival: float | None = None
    ) -> PendingOp | None:
        """Admit one operation; ``None`` (and a drop counter) when the
        bounded mempool sheds it — the cluster's backpressure edge.
        ``arrival`` back-dates the traced ``submit`` stage to the op's
        open-loop arrival time (at or before the network's ``now``), so
        traced latency reads commit − arrival; ``None`` stamps the
        current simulator time — the historical behavior, bit for bit."""
        try:
            pending = self.mempool.submit(pid, operation)
        except MempoolFullError:
            self.stats.dropped_ops += 1
            return None
        self.admitted_ops += 1
        if self.tracer is not None:
            self.tracer.op_submit(
                pending.seq, self.now if arrival is None else arrival
            )
        return pending

    def admit(self, items: Iterable[WorkloadItem]) -> list[PendingOp]:
        """Admit a workload; returns the accepted operations only."""
        admitted = [self.submit(item.pid, item.operation) for item in items]
        return [pending for pending in admitted if pending is not None]

    # -- routing ----------------------------------------------------------

    def _anchor(self, op: PendingOp) -> int:
        return anchor_account(self.classifier.footprint(op), op.pid)

    def _route_window(
        self, window: list[PendingOp], index: int
    ) -> _RoutedWindow:
        """Route one window: co-locate components, plan leases, order the
        contended components through the sync layer.  Pure computation —
        no messages are sent — shared verbatim by the barrier
        (:meth:`start_round`) and pipelined (:meth:`pump`) round loops."""
        num_nodes = self.shard_map.num_nodes
        # Nodes declared dead take no new work; with recovery off the set
        # is always empty and every loop below is the historical one.
        live = [n for n in range(num_nodes) if n not in self._dead]
        state = self._state_fn() if self._state_fn is not None else None
        graph = ConflictGraph.build(self.classifier, window, state)
        chain_idx, singleton_idx, contended_idx = self.scheduler.split(graph)
        contended = set(contended_idx)

        assignment: dict[int, list[PendingOp]] = {
            node: [] for node in range(num_nodes)
        }
        #: Start-of-round home node per op — the owner-local yardstick
        #: (this round's own migrations must not flatter the metric).
        home = {
            window[i].seq: self.shard_map.owner_of(self._anchor(window[i]))
            for i in range(len(window))
        }
        escalated_ops: list[PendingOp] = []
        #: Per contended cross-node component: (owner-node team, ops, the
        #: node executing the chain, index into ``placed_chains``) — the
        #: unit the sync layer tiers.
        escalated_components: list[
            tuple[frozenset[int], tuple[PendingOp, ...], int, int]
        ] = []
        migrations: list[tuple[int, int, int]] = []
        migrated_shards: set[int] = set()
        chain_seqs: set[int] = set()
        #: Per routed chain (head submission order): target node, ops,
        #: lease count, contended flag, sync-lane delay — the raw material
        #: of component-granular dispatch units.
        placed_chains: list[dict] = []
        #: shard -> index into ``placed_chains`` of the migrating chain.
        lease_chains: dict[int, int] = {}
        hot_split = 0
        cooldown_skips = 0

        # Components route as units (the co-location invariant).  Chains
        # first, in submission order of their heads.
        for chain in sorted(chain_idx, key=lambda c: c[0]):
            ops = [window[i] for i in chain]
            chain_seqs.update(op.seq for op in ops)
            owners = Counter(
                self.shard_map.owner_of(self._anchor(op)) for op in ops
            )
            # Majority owner wins; ties go to the currently least-loaded
            # participant (an id tie-break would funnel every evenly-split
            # chain — and, through leases, ever more ownership — onto the
            # lowest node id).
            target = min(
                owners, key=lambda n: (-owners[n], len(assignment[n]), n)
            )
            record = {
                "target": target,
                "ops": ops,
                "leases": 0,
                "contended": False,
                "delay": 0.0,
            }
            chain_contended = [i for i in chain if i in contended]
            if len(owners) > 1 and chain_contended:
                # A race spanning owners: a sync lane sequences exactly the
                # contended members — a team lane among just the owner
                # nodes when their count fits the threshold, the shared
                # global lane otherwise.  The chain executes on the node
                # already owning most of it.
                component = tuple(window[i] for i in chain_contended)
                escalated_ops.extend(component)
                record["contended"] = True
                escalated_components.append(
                    (frozenset(owners), component, target, len(placed_chains))
                )
            elif len(owners) > 1 and owners[target] >= self.lease_min_gain:
                # Uncontended cross-shard chain with a clearly busier node:
                # migrate the minority shards' leases to it, then run
                # owner-local.
                foreign = sorted(
                    {
                        self.shard_map.shard_of(self._anchor(op))
                        for op in ops
                        if self.shard_map.owner_of(self._anchor(op)) != target
                    }
                )
                for shard in foreign:
                    if shard in migrated_shards:
                        continue  # one lease move per shard per round
                    last = self._last_migration.get(shard)
                    if last is not None and index - last <= self.lease_cooldown:
                        # Hysteresis: the shard moved too recently; the
                        # chain still executes correctly on the majority
                        # owner (co-location is what safety needs), the
                        # minority ops are simply not owner-local.
                        cooldown_skips += 1
                        continue
                    migrated_shards.add(shard)
                    from_node = self.shard_map.owner_of_shard(shard)
                    self.shard_map.migrate(shard, target, index)
                    self._last_migration[shard] = index
                    migrations.append((shard, from_node, target))
                    record["leases"] += 1
                    lease_chains[shard] = len(placed_chains)
            placed_chains.append(record)
            assignment[target].extend(ops)

        # Singletons bundle by anchor account; oversized commuting bundles
        # are sprayed across the least-loaded nodes (hot-shard splitting,
        # the engine planner's target heuristic at cluster granularity).
        target_load = math.ceil(len(window) / len(live))
        bundles: dict[int, list[PendingOp]] = {}
        for i in singleton_idx:
            op = window[i]
            bundles.setdefault(self._anchor(op), []).append(op)

        def least_loaded() -> int:
            return min(live, key=lambda n: (len(assignment[n]), n))

        for account, ops in sorted(
            bundles.items(), key=lambda kv: (-len(kv[1]), kv[0])
        ):
            if len(ops) > target_load and len(live) > 1:
                hot_split += len(ops)
                for op in ops:
                    assignment[least_loaded()].append(op)
            else:
                assignment[self.shard_map.owner_of(account)].extend(ops)

        # Overflow spill, the engine planner's second heuristic at node
        # granularity: shed commuting singletons (never chain members) from
        # overloaded nodes.  Moving a singleton anywhere is sound — it
        # commutes with the entire window.
        spill = 0
        exhausted: set[int] = set()
        while len(live) > 1:
            heaviest = max(
                (n for n in live if n not in exhausted),
                key=lambda n: (len(assignment[n]), -n),
                default=None,
            )
            if heaviest is None:
                break
            lightest = least_loaded()
            if len(assignment[heaviest]) - len(assignment[lightest]) <= 1:
                break
            if len(assignment[heaviest]) <= target_load:
                break
            movable = next(
                (
                    k
                    for k in range(len(assignment[heaviest]) - 1, -1, -1)
                    if assignment[heaviest][k].seq not in chain_seqs
                ),
                None,
            )
            if movable is None:
                # All chain members: this node's load is atomic; try others.
                exhausted.add(heaviest)
                continue
            assignment[lightest].append(assignment[heaviest].pop(movable))
            spill += 1

        owner_local = sum(
            1
            for node, ops in assignment.items()
            for op in ops
            if home[op.seq] == node
        )

        # A lease target must not execute before its handoffs complete; the
        # batch announcement carries the count of grants it has to await.
        leases_by_node = Counter(to_node for _, _, to_node in migrations)

        # Synchronization: each contended cross-node component through its
        # cheapest adequate lane.  Team-tier components (owner set within
        # the threshold) run concurrently on the pool; the rest merge into
        # one submission-ordered batch on the shared global lane.  A
        # node's batch waits only for its *own* components' lanes.
        t_escalation = 0.0
        escalation_messages = 0
        node_delays: dict[int, float] = {}
        sync_round = None
        sync_ops: tuple[tuple[int, float], ...] = ()
        if escalated_components:
            assignments = []
            for team, component, _, _ in escalated_components:
                decision = self.sync.planner.decide(team)
                assignments.append(
                    SyncAssignment(
                        tier=decision.tier, team=decision.team, ops=component
                    )
                )
            sync_round = self.sync.order_assignments(assignments)
            for (_, _, target, chain_pos), component_order in zip(
                escalated_components, sync_round.components
            ):
                node_delays[target] = max(
                    node_delays.get(target, 0.0), component_order.completed
                )
                placed_chains[chain_pos]["delay"] = component_order.completed
            t_escalation = sync_round.virtual_time
            escalation_messages = sync_round.messages
            sync_ops = tuple(
                (op.seq, order.completed)
                for (_, component, _, _), order in zip(
                    escalated_components, sync_round.components
                )
                for op in component
            )

        assignment = {
            node: sorted(ops, key=lambda op: op.seq)
            for node, ops in assignment.items()
            if ops
        }

        # Component-granular dispatch: one unit per routed chain plus one
        # residual unit of each node's singletons (all of which commute
        # with the whole window, so they share a gate).
        units_by_node: dict[int, list[_DispatchUnit]] | None = None
        lease_units: dict[int, tuple[int, int]] | None = None
        if self.unit_dispatch:
            units_by_node = {}
            unit_of_chain: dict[int, tuple[int, int]] = {}
            for chain_pos, record in enumerate(placed_chains):
                node_units = units_by_node.setdefault(record["target"], [])
                unit_of_chain[chain_pos] = (record["target"], len(node_units))
                node_units.append(
                    _DispatchUnit(
                        ops=tuple(record["ops"]),
                        contended=record["contended"],
                        sync_delay=record["delay"],
                        leases=record["leases"],
                    )
                )
            for node, ops in assignment.items():
                rest = [op for op in ops if op.seq not in chain_seqs]
                if rest:
                    units_by_node.setdefault(node, []).append(
                        _DispatchUnit(
                            ops=tuple(rest),
                            contended=False,
                            sync_delay=0.0,
                            leases=0,
                        )
                    )
            lease_units = {
                shard: unit_of_chain[chain_pos]
                for shard, chain_pos in lease_chains.items()
            }
        return _RoutedWindow(
            index=index,
            assignment=assignment,
            node_delays={
                node: delay
                for node, delay in node_delays.items()
                if node in assignment
            },
            leases_by_node=dict(leases_by_node),
            migrations=migrations,
            t_escalation=t_escalation,
            escalation_messages=escalation_messages,
            owner_local=owner_local,
            hot_split=hot_split,
            spill=spill,
            escalated=len(escalated_ops),
            team_ops=sync_round.team_ops if sync_round else 0,
            global_ops=sync_round.global_ops if sync_round else 0,
            team_messages=sync_round.team_messages if sync_round else 0,
            global_messages=sync_round.global_messages if sync_round else 0,
            teams=sync_round.teams if sync_round else 0,
            team_sizes=sync_round.team_sizes if sync_round else (),
            cooldown_skips=cooldown_skips,
            contended_nodes=frozenset(
                target for _, _, target, _ in escalated_components
            ),
            units_by_node=units_by_node,
            lease_units=lease_units,
            sync_ops=sync_ops,
        )

    def _trace_routed(self, routed: _RoutedWindow, sync_start: float) -> None:
        """Record one routed window: the classification instant and per-op
        ``classify`` stage, the sync phase's extent (informational — the
        waits themselves are attributed on the node spans), and the
        per-op ``sync`` stage at each component's lane commit."""
        tracer = self.tracer
        assert tracer is not None
        tracer.instant(
            "router",
            f"round {routed.index} classified",
            self.now,
            args={
                "window": sum(
                    len(ops) for ops in routed.assignment.values()
                )
            },
        )
        for ops in routed.assignment.values():
            for op in ops:
                tracer.op_stage(op.seq, "classify", self.now)
        if routed.t_escalation > 0:
            tracer.span(
                "router.sync",
                f"sync r{routed.index}",
                "sync_wait",
                sync_start,
                sync_start + routed.t_escalation,
                chain=False,
                args={"messages": routed.escalation_messages},
            )
        for seq, completed in routed.sync_ops:
            tracer.op_stage(seq, "sync", sync_start + completed)

    def _trace_dispatch(
        self,
        name: str,
        stall: float,
        gate_stall: float,
        recovery_stall: float = 0.0,
    ) -> None:
        """Record a delayed dispatch: a zero-length chained span at the
        send instant whose stalls tile the wait since classification —
        the footprint-gate portion as ``frontier_stall`` (latest, it ends
        at the send), the rest as ``dispatch_stall`` (pipeline-slot or
        node-FIFO queueing).  A replay incarnation charges the window
        from its creation (the node's death was declared) to the send as
        ``recovery`` instead — the footprint gate, if it held the replay
        at all, did so inside that window."""
        assert self.tracer is not None
        if recovery_stall > 0:
            stalls = tuple(
                (category, amount)
                for category, amount in (
                    ("recovery", recovery_stall),
                    ("dispatch_stall", stall - recovery_stall),
                )
                if amount > 0
            )
        else:
            stalls = tuple(
                (category, amount)
                for category, amount in (
                    ("frontier_stall", gate_stall),
                    ("dispatch_stall", stall - gate_stall),
                )
                if amount > 0
            )
        self.tracer.span(
            "router",
            name,
            "dispatch_stall",
            self.now,
            self.now,
            stalls=stalls,
        )

    def start_round(self) -> bool:
        """Route one window; returns ``False`` when the mempool is empty.

        The barrier round loop (``pipeline_depth=1``): one round in flight
        at a time, every per-node batch and lease request sent at
        classification.  The round then progresses purely through
        simulator events; it is complete (``idle`` is true) once every
        participating node's ``cl_result`` has arrived.
        """
        if self.pipeline_depth > 1:
            raise ClusterError("pipelined router rounds start through pump()")
        if self._round is not None:
            raise ClusterError("previous round still in flight")
        window = self.mempool.pop_window(self.window)
        if not window:
            return False
        index = self._rounds_started
        self._rounds_started += 1
        routed = self._route_window(window, index)
        if self.tracer is not None:
            self._trace_routed(routed, self.now)
        self._round = _RoundState(
            routed=routed,
            started=self.now,
            pending_acks=len(routed.migrations),
            pending_results=set(routed.assignment),
        )
        for shard, from_node, to_node in routed.migrations:
            self.send(
                from_node,
                "cl_lease_request",
                {"shard": shard, "new_owner": to_node, "round": index},
            )
        for node in sorted(routed.assignment):
            self._dispatch(node)
        return True

    def _dispatch(self, node: int) -> None:
        """Forward a node's round batch immediately; the batch announcement
        carries the node's sync-lane wait (``sync_delay``), which the node
        pays before executing.  Lease handoffs run concurrently with the
        forwards — the grant gates execution at the node, so the handshake
        costs two hops on the critical path, not four."""
        round_state = self._round
        assert round_state is not None
        routed = round_state.routed
        ops = routed.assignment[node]
        self.send(
            node,
            "cl_run",
            {
                "round": routed.index,
                "count": len(ops),
                "leases": routed.leases_by_node.get(node, 0),
                "sync_delay": routed.node_delays.get(node, 0.0),
            },
        )
        for op in ops:
            self.send(node, "cl_op", {"round": routed.index, "op": op})

    # -- pipelined round loop ---------------------------------------------

    def pump(self) -> int:
        """Classify as many windows as the pipeline has room for, then
        dispatch every batch whose gates cleared; returns the number of
        rounds classified.

        The global round barrier is replaced by three per-resource gates:

        * **per-node frontier** — a node receives round N+1's batch only
          after its own round-N result arrived (nodes execute their rounds
          in order, one at a time);
        * **cross-round footprint** — a batch waits for every earlier
          in-flight batch (on any node) whose may-access summary does not
          statically commute with it (:class:`~repro.objects.footprint.
          FootprintSummary`), so overlapped rounds only ever reorder
          commuting operations;
        * **per-shard lease order** — handoffs of one shard serialize:
          round N+1's request goes out once round N's handoff of the same
          shard has been acknowledged.

        Every gate references strictly earlier rounds, so the pipeline
        cannot deadlock; with ``pipeline_depth=1`` none of this runs and
        the barrier loop (:meth:`start_round`) is used unchanged.
        """
        if self.pipeline_depth == 1:
            raise ClusterError("barrier router rounds start via start_round()")
        classified = 0
        while len(self._inflight) < self.pipeline_depth:
            window = self.mempool.pop_window(self.window)
            if not window:
                break
            index = self._rounds_started
            self._rounds_started += 1
            routed = self._route_window(window, index)
            sync_start = max(self.now, self._sync_free)
            if routed.t_escalation > 0:
                self._sync_free = sync_start + routed.t_escalation
            if self.tracer is not None:
                self._trace_routed(routed, sync_start)
            if self.unit_dispatch:
                assert routed.units_by_node is not None
                # Unit granularity: summaries, results, and queue entries
                # key on (node, unit) instead of the whole node batch.
                summaries = {
                    (node, uidx): FootprintSummary.over(
                        self.classifier.footprint(op) for op in unit.ops
                    )
                    for node, units in routed.units_by_node.items()
                    for uidx, unit in enumerate(units)
                }
            else:
                summaries = {
                    node: FootprintSummary.over(
                        self.classifier.footprint(op) for op in ops
                    )
                    for node, ops in routed.assignment.items()
                }
            self._inflight[index] = _PipelinedRound(
                routed=routed,
                classified=self.now,
                sync_start=sync_start,
                summaries=summaries,
                inflight=len(self._inflight) + 1,
                pending_results=set(summaries),
                pending_acks=len(routed.migrations),
                lease_pending=list(routed.migrations),
            )
            if self.unit_dispatch:
                for node in sorted(routed.units_by_node):
                    for uidx in range(len(routed.units_by_node[node])):
                        self._node_queue[node].append((index, uidx))
            else:
                for node in sorted(routed.assignment):
                    self._node_queue[node].append(index)
            classified += 1
        self._drain_gates()
        return classified

    def _drain_gates(self) -> None:
        """Send every lease request and batch/unit whose gates now pass."""
        progress = True
        while progress:
            progress = False
            for index in sorted(self._inflight):
                round_state = self._inflight[index]
                for migration in list(round_state.lease_pending):
                    shard, from_node, to_node = migration
                    if shard in self._shard_ack_round:
                        continue  # an earlier handoff of this shard is out
                    round_state.lease_pending.remove(migration)
                    if self.recovery and from_node in self._dead:
                        # The planned granter died: adopt unilaterally.
                        self._direct_adopt(shard, index, from_node, to_node)
                        progress = True
                        continue
                    self._shard_ack_round[shard] = index
                    request = {
                        "shard": shard,
                        "new_owner": to_node,
                        "round": index,
                    }
                    if self.unit_dispatch:
                        assert round_state.routed.lease_units is not None
                        # The grant must unblock exactly the unit whose
                        # chain migrated this shard.
                        request["unit"] = round_state.routed.lease_units[
                            shard
                        ][1]
                    self.send(from_node, "cl_lease_request", request)
                    if self.recovery:
                        self._handoff_info[shard] = (index, from_node, to_node)
                        self._arm_lease_timer(shard)
                    progress = True
            if self.unit_dispatch:
                progress |= self._drain_unit_queues()
                continue
            for node in sorted(self._node_queue):
                queue = self._node_queue[node]
                if not queue or node in self._node_outstanding:
                    continue
                index = queue[0]
                round_state = self._inflight[index]
                if self._batch_blocked(index, node):
                    # The node is free but the footprint gate holds the
                    # batch back — that wait (unlike pipeline fill) is
                    # attributable to cross-round conflicts.
                    round_state.gate_blocked_since.setdefault(node, self.now)
                    continue
                queue.popleft()
                self._node_outstanding.add(node)
                round_state.dispatched.add(node)
                stall = self.now - round_state.classified
                gate_stall = self.now - round_state.gate_blocked_since.pop(
                    node, self.now
                )
                round_state.dispatch_stall += stall
                round_state.frontier_stall += gate_stall
                if node in round_state.routed.contended_nodes:
                    round_state.dispatch_stall_contended += stall
                    round_state.frontier_stall_contended += gate_stall
                if self.tracer is not None and stall > 0:
                    self._trace_dispatch(
                        f"dispatch r{index} n{node}", stall, gate_stall
                    )
                self._send_batch(index, node)
                progress = True

    def _drain_unit_queues(self) -> bool:
        """Component-granular dispatch: send every unit whose footprint
        gate passes.  Unlike the batch path there is no per-node FIFO and
        no one-outstanding-batch limit — a node's units interleave on its
        lane timeline, and a blocked unit is simply *skipped* (that is the
        whole point: it no longer holds up the rest of its round's batch).
        Cross-round conflicts stay ordered because a conflicting later
        unit is exactly what the gate refuses to dispatch."""
        progress = False
        for node in sorted(self._node_queue):
            if node in self._dead:
                continue
            queue = self._node_queue[node]
            for entry in list(queue):
                index, uidx = entry
                round_state = self._inflight[index]
                key = (node, uidx)
                if self._unit_blocked(index, key):
                    round_state.gate_blocked_since.setdefault(key, self.now)
                    continue
                queue.remove(entry)
                round_state.dispatched.add(key)
                stall = self.now - round_state.classified
                gate_stall = self.now - round_state.gate_blocked_since.pop(
                    key, self.now
                )
                recovery_stall = 0.0
                replay_started = self._replay_started.pop(
                    (index, node, uidx), None
                )
                if replay_started is not None:
                    recovery_stall = self.now - replay_started
                round_state.dispatch_stall += stall
                round_state.frontier_stall += gate_stall
                unit = self._unit_for(index, node, uidx)
                if unit.contended:
                    round_state.dispatch_stall_contended += stall
                    round_state.frontier_stall_contended += gate_stall
                if self.tracer is not None and stall > 0:
                    self._trace_dispatch(
                        f"dispatch r{index} n{node} u{uidx}",
                        stall,
                        gate_stall,
                        recovery_stall,
                    )
                self._send_unit(index, node, uidx)
                progress = True
        return progress

    def _batch_blocked(self, index: int, node: int) -> bool:
        """The cross-round footprint gate: may this batch overlap every
        still-incomplete batch of every earlier in-flight round?"""
        summary = self._inflight[index].summaries[node]
        for earlier in self._inflight:
            if earlier >= index:
                continue
            earlier_state = self._inflight[earlier]
            for other, other_summary in earlier_state.summaries.items():
                if other in earlier_state.completed or other == node:
                    # Same-node ordering is the per-node FIFO's job.
                    continue
                if summary.conflicts_with(other_summary):
                    return True
        return False

    def _unit_blocked(self, index: int, key: tuple[int, int]) -> bool:
        """The per-unit footprint gate: may this unit overlap every
        still-incomplete unit of every earlier in-flight round?  Same-node
        units are *not* exempt — the unit path has no per-node FIFO, so
        cross-round same-node ordering is this gate's job too.  Units of
        one round never gate each other (distinct components commute)."""
        summary = self._inflight[index].summaries[key]
        for earlier in self._inflight:
            if earlier >= index:
                continue
            earlier_state = self._inflight[earlier]
            for other, other_summary in earlier_state.summaries.items():
                if other in earlier_state.completed:
                    continue
                if summary.conflicts_with(other_summary):
                    return True
        return False

    def _send_batch(self, index: int, node: int) -> None:
        round_state = self._inflight[index]
        routed = round_state.routed
        ops = routed.assignment[node]
        delay = routed.node_delays.get(node, 0.0)
        self.send(
            node,
            "cl_run",
            {
                "round": index,
                "count": len(ops),
                "leases": routed.leases_by_node.get(node, 0),
                # Absolute completion of this node's slowest sync lane:
                # the lanes ran while the batch waited in the pipeline, so
                # the node pays only the remainder, not the full latency.
                "sync_ready": round_state.sync_start + delay if delay else 0.0,
            },
        )
        for op in ops:
            self.send(node, "cl_op", {"round": index, "op": op})

    def _unit_for(self, index: int, node: int, uidx: int) -> _DispatchUnit:
        """The unit behind a dispatch key — positional in the routed
        window, or a replay incarnation from the round's side table."""
        round_state = self._inflight[index]
        if uidx >= _REPLAY_BASE:
            return round_state.replay_units[(node, uidx)]
        return round_state.routed.units_by_node[node][uidx]

    def _send_unit(self, index: int, node: int, uidx: int) -> None:
        round_state = self._inflight[index]
        unit = self._unit_for(index, node, uidx)
        delay = unit.sync_delay
        # The unit's ops ride inside the announcement itself: a unit is
        # component-granular (often one chain or a handful of
        # singletons), and paying one ``cl_op`` message per op made small
        # components inflate the cluster message bill under DAG dispatch.
        # Batch dispatch (:meth:`_dispatch` / :meth:`_send_batch`) keeps
        # its per-op forwards — that is the pinned legacy wire format.
        self.send(
            node,
            "cl_run",
            {
                "round": index,
                "unit": uidx,
                "count": len(unit.ops),
                "leases": unit.leases,
                "ops": list(unit.ops),
                # Absolute completion of this unit's sync lane (0.0 for
                # uncontended units): the lane ran while the unit waited
                # in the pipeline, so the node pays only the remainder.
                "sync_ready": (
                    round_state.sync_start + delay if delay else 0.0
                ),
            },
        )
        if self.recovery:
            # The timeout clock starts when the unit can actually run:
            # a unit parked behind its sync lane is late evidence of
            # nothing, so the lane remainder extends the deadline.
            sync_wait = 0.0
            if delay:
                sync_wait = max(
                    0.0, round_state.sync_start + delay - self.now
                )
            # Dispatch refreshes the liveness floor: an idle node owes
            # nothing until it is given work again.
            self._last_heard[node] = max(
                self._last_heard.get(node, 0.0), self.now
            )
            # Charge the unit's serial execution to the node's work
            # envelope (conservative: lanes overlap, the envelope does
            # not) — detection latency trades against never suspecting a
            # node that is merely grinding through a long component.
            envelope = len(unit.ops) * self.op_cost + sync_wait
            self._unit_envelope[(index, node, uidx)] = envelope
            self._outstanding_work[node] = (
                self._outstanding_work.get(node, 0.0) + envelope
            )
            self._result_timers[(index, node, uidx)] = self.schedule(
                self.result_timeout + sync_wait,
                lambda: self._result_timed_out(index, node, uidx),
            )

    def _finish_pipelined_round(self, index: int) -> None:
        round_state = self._inflight[index]
        if round_state.pending_results or round_state.pending_acks > 0:
            return
        routed = round_state.routed
        self.stats.record_round(
            ClusterRound(
                index=index,
                window=sum(len(ops) for ops in routed.assignment.values()),
                owner_local_ops=routed.owner_local,
                hot_split_ops=routed.hot_split,
                spill_ops=routed.spill,
                escalated_ops=routed.escalated,
                lease_migrations=len(routed.migrations),
                nodes_used=len(routed.assignment),
                virtual_time=self.now - round_state.classified,
                escalation_time=routed.t_escalation,
                escalation_messages=routed.escalation_messages,
                team_ops=routed.team_ops,
                global_ops=routed.global_ops,
                team_messages=routed.team_messages,
                global_messages=routed.global_messages,
                teams=routed.teams,
                team_sizes=routed.team_sizes,
                cooldown_skips=routed.cooldown_skips,
                inflight=round_state.inflight,
                dispatch_stall=round_state.dispatch_stall,
                dispatch_stall_contended=round_state.dispatch_stall_contended,
                frontier_stall=round_state.frontier_stall,
                frontier_stall_contended=round_state.frontier_stall_contended,
                completed_at=self.now,
                units_dispatched=(
                    sum(
                        len(units)
                        for units in routed.units_by_node.values()
                    )
                    if routed.units_by_node is not None
                    else 0
                ),
            )
        )
        del self._inflight[index]
        self._retransmits.pop(index, None)
        self.pump()

    # -- fail-over: detection, revocation, replay -------------------------

    def _arm_lease_timer(self, shard: int) -> None:
        if not self.recovery:
            return
        self._cancel_lease_timer(shard)
        self._lease_timers[shard] = self.schedule(
            self.lease_timeout, lambda: self._lease_timed_out(shard)
        )

    def _cancel_lease_timer(self, shard: int) -> None:
        timer = self._lease_timers.pop(shard, None)
        if timer is not None:
            timer.cancel()

    def _probe_state(self, node: int) -> str:
        """Probe-based liveness: ``alive`` if the node was heard from
        since its last probe, ``dead`` if a probe went unanswered for a
        full ``result_timeout``, ``pending`` while the probe is still in
        flight.  The first suspicion sends the ping; probes only ever
        follow a fired timer, so a fault-free run never pays for one."""
        probe = self._probes.get(node)
        if probe is None:
            self._probes[node] = self.now
            self.send(node, "cl_ping", {})
            return "pending"
        if self._last_heard.get(node, 0.0) >= probe:
            # Answered: retire the probe so a later suspicion re-asks.
            del self._probes[node]
            return "alive"
        if self.now >= probe + self.result_timeout:
            return "dead"
        return "pending"

    def _lease_timed_out(self, shard: int) -> None:
        """A handoff's ack is late.  Either a party to the handoff is
        dead, or the grant/revoke/ack itself was lost in transit — and
        silence cannot tell the two apart, so probe the parties.  A dead
        party goes through :meth:`_declare_dead`, which settles this
        handoff synthetically; if everyone answers, the message was the
        casualty and the adoption is resent — the shard's serialization
        token and the node-side running guard make duplicates no-ops."""
        self._lease_timers.pop(shard, None)
        info = self._handoff_info.get(shard)
        if info is None or shard not in self._shard_ack_round:
            return
        handoff_round, granter, adopter = info
        parties = [
            party
            for party in dict.fromkeys((granter, adopter))
            if party not in self._dead
        ]
        if not parties:
            return
        states = {party: self._probe_state(party) for party in parties}
        for party in parties:
            if states[party] == "dead":
                self._declare_dead(party)
                return
        if all(states[party] == "alive" for party in parties):
            resends = self._lease_resends.get(shard, 0) + 1
            if resends > 8:
                raise ClusterError(
                    f"shard {shard} handoff cannot complete: the network "
                    "keeps losing its grant or ack"
                )
            self._lease_resends[shard] = resends
            self._direct_adopt(shard, handoff_round, granter, adopter)
            return
        expiry = min(
            self._probes[party] + self.result_timeout
            for party in parties
            if states[party] == "pending"
        )
        self._lease_timers[shard] = self.schedule(
            expiry - self.now, lambda: self._lease_timed_out(shard)
        )

    def _result_timed_out(self, index: int, node: int, uidx: int) -> None:
        self._result_timers.pop((index, node, uidx), None)
        round_state = self._inflight.get(index)
        if (
            round_state is None
            or (node, uidx) not in round_state.pending_results
            or node in self._dead
        ):
            return
        # Liveness, not latency: a unit's deadline extends as long as the
        # node keeps producing *anything* (results, acks) and as long as
        # its dispatched work envelope could still be executing.  A
        # backlogged survivor digesting a replay burst — or one long
        # conflict component — is slow, not dead; suspecting it would
        # cascade fail-overs onto ever-fewer nodes.
        deadline = (
            self._last_heard.get(node, 0.0)
            + self._outstanding_work.get(node, 0.0)
            + self.result_timeout
        )
        if deadline > self.now:
            self._result_timers[(index, node, uidx)] = self.schedule(
                deadline - self.now,
                lambda: self._result_timed_out(index, node, uidx),
            )
            return
        # The envelope elapsed too — but silence still cannot tell a
        # dead node from a live one whose result (or a grant feeding it)
        # was lost in transit.  Probe before condemning: a pong means
        # the unit itself is the casualty and retransmitting it is the
        # cure (the commit dedup absorbs any straggling original); only
        # a probe unanswered for a full timeout is evidence of death.
        state = self._probe_state(node)
        if state == "pending":
            self._result_timers[(index, node, uidx)] = self.schedule(
                self._probes[node] + self.result_timeout - self.now,
                lambda: self._result_timed_out(index, node, uidx),
            )
            return
        if state == "alive":
            self._retransmit_unit(index, node, uidx)
            return
        self._declare_dead(node)

    def _retransmit_unit(self, index: int, node: int, uidx: int) -> None:
        """The node answers probes but the unit is overdue beyond its
        whole work envelope: a message it depends on was lost.  Replay
        it on the least-loaded live node, against a per-round budget —
        a network that eats every copy fails the run loudly."""
        spent = self._retransmits.get(index, 0) + 1
        if spent > max(16, 2 * self.window):
            raise ClusterError(
                f"round {index} exhausted its retransmission budget: "
                "results are being lost faster than replays restore them"
            )
        self._retransmits[index] = spent
        self.stats.ops_replayed += self._replay_unit(index, node, uidx)
        self._drain_gates()

    def _declare_dead(self, node: int) -> None:
        """Fail a node over: fence it, resolve its in-flight lease
        handoffs, revoke every shard it owns (cooldown bypassed — a
        revoked shard must be re-grantable immediately), and replay its
        uncommitted in-flight units on survivors.  Committed units are
        untouched: their results already arrived, and the apply-side
        dedup makes any straggler re-execution a no-op."""
        if not self.recovery or node in self._dead:
            return
        live = [
            n
            for n in range(self.shard_map.num_nodes)
            if n != node and n not in self._dead
        ]
        if not live:
            raise ClusterError(
                f"node {node} timed out and no live nodes remain "
                "to fail over to"
            )
        self._dead.add(node)
        self._probes.pop(node, None)
        if self.faults is not None:
            self.faults.fence(node)
        started = self.now
        if self.tracer is not None:
            self.tracer.instant(
                "faults",
                f"node {node} declared dead",
                started,
                args={"node": node},
            )
        # In-flight lease handoffs touching the dead node cannot finish
        # on their own.  A dead *adopter*'s ack is resolved synthetically
        # (the shard itself is revoked below and the waiting unit
        # replayed); a dead *granter* is bypassed — the adopter takes the
        # lease unilaterally and its ack keeps the round bookkeeping.
        for shard, info in sorted(self._handoff_info.items()):
            handoff_round, from_node, to_node = info
            if from_node != node and to_node != node:
                continue
            self._cancel_lease_timer(shard)
            del self._handoff_info[shard]
            self._shard_ack_round.pop(shard, None)
            self._lease_resends.pop(shard, None)
            if to_node == node:
                round_state = self._inflight.get(handoff_round)
                if round_state is not None and handoff_round >= 0:
                    round_state.pending_acks -= 1
            else:
                self._direct_adopt(shard, handoff_round, node, to_node)
        for index in sorted(self._inflight):
            round_state = self._inflight[index]
            for migration in list(round_state.lease_pending):
                shard, from_node, to_node = migration
                if to_node != node:
                    # A queued migration *granted by* the dead node stays
                    # queued: _drain_gates adopts unilaterally when the
                    # shard's serialization token clears.
                    continue
                round_state.lease_pending.remove(migration)
                round_state.pending_acks -= 1
        # Revoke the dead node's leases and spread its shards over the
        # survivors.  The cooldown pin is dropped, not set: revocation
        # must leave the shard immediately re-grantable.  A shard with a
        # live handoff token is left alone — clobbering the token would
        # orphan that handoff's ack — and is lazily adopted by the next
        # migration planned off the dead owner.
        for shard in sorted(self.shard_map.shards_of_node(node)):
            if shard in self._shard_ack_round:
                continue
            target = min(
                live,
                key=lambda n: (len(self.shard_map.shards_of_node(n)), n),
            )
            self.shard_map.migrate(shard, target, self._rounds_started)
            self._last_migration.pop(shard, None)
            self.stats.revocations += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "faults",
                    f"revoke shard {shard} -> node {target}",
                    self.now,
                    args={"shard": shard, "node": target, "from_node": node},
                )
            self._direct_adopt(shard, ADMIN_ROUND, node, target)
        # Replay every uncommitted in-flight unit of the dead node —
        # queued or dispatched, its cl_run/result died with the node.
        episode = self._recovering.get(node)
        if episode is None:
            episode = _RecoveryEpisode(started=started)
            self._recovering[node] = episode
        for index in sorted(self._inflight):
            round_state = self._inflight[index]
            for key in sorted(
                k for k in round_state.pending_results if k[0] == node
            ):
                self.stats.ops_replayed += self._replay_unit(
                    index, node, key[1]
                )
        # Synthetic ack resolution may have completed rounds.
        for index in sorted(self._inflight):
            if index in self._inflight:
                self._finish_pipelined_round(index)
        self._drain_gates()

    def _direct_adopt(
        self, shard: int, handoff_round: int, from_node: int, to_node: int
    ) -> None:
        """Reassign a shard without its (dead) owner's cooperation via
        ``cl_lease_revoke``.  The adopter's ack serializes further
        handoffs of the shard behind the adoption, exactly like a normal
        grant's ack; a revoke carrying a real round doubles as the grant
        the named unit was waiting for."""
        self._shard_ack_round[shard] = handoff_round
        self._handoff_info[shard] = (handoff_round, to_node, to_node)
        self._arm_lease_timer(shard)
        payload = {
            "shard": shard,
            "from_node": from_node,
            "round": handoff_round,
        }
        if handoff_round >= 0:
            round_state = self._inflight[handoff_round]
            assert round_state.routed.lease_units is not None
            payload["unit"] = round_state.routed.lease_units[shard][1]
        self.send(to_node, "cl_lease_revoke", payload)

    def _replay_unit(self, index: int, node: int, uidx: int) -> int:
        """Re-dispatch one in-flight unit of a failed node on a live one.

        The replay needs no lease grants — co-location, not ownership,
        is the safety argument — and its sync order (if any) was already
        committed, so ``sync_ready`` rides along unchanged.  The unit's
        footprint summary moves to the new key, so every later round's
        conflicting unit stays gated behind the replay exactly as it was
        behind the original."""
        round_state = self._inflight[index]
        old_key = (node, uidx)
        unit = self._unit_for(index, node, uidx)
        live = [
            n
            for n in range(self.shard_map.num_nodes)
            if n not in self._dead
        ]
        target = min(live, key=lambda n: (len(self._node_queue[n]), n))
        new_uidx = _REPLAY_BASE + round_state.replay_seq
        round_state.replay_seq += 1
        new_key = (target, new_uidx)
        round_state.replay_units[new_key] = replace(unit, leases=0)
        round_state.replay_units.pop(old_key, None)
        round_state.summaries[new_key] = round_state.summaries.pop(old_key)
        round_state.pending_results.discard(old_key)
        round_state.pending_results.add(new_key)
        round_state.dispatched.discard(old_key)
        round_state.gate_blocked_since.pop(old_key, None)
        timer = self._result_timers.pop((index, node, uidx), None)
        if timer is not None:
            timer.cancel()
        envelope = self._unit_envelope.pop((index, node, uidx), None)
        if envelope is not None:
            self._outstanding_work[node] = max(
                0.0, self._outstanding_work.get(node, 0.0) - envelope
            )
        try:
            self._node_queue[node].remove((index, uidx))
        except ValueError:
            pass
        self._node_queue[target].append((index, new_uidx))
        old3 = (index, node, uidx)
        new3 = (index, target, new_uidx)
        owners = self._replay_episode.pop(old3, ())
        if node not in owners:
            owners = owners + (node,)
        self._replay_episode[new3] = owners
        for owner in owners:
            episode = self._recovering.get(owner)
            if episode is not None:
                episode.outstanding.discard(old3)
                episode.outstanding.add(new3)
        self._replay_started.pop(old3, None)
        self._replay_started[new3] = self.now
        return len(unit.ops)

    def node_rejoined(self, node: int) -> None:
        """Readmit a restarted node: clear its dead mark, replay whatever
        was dispatched to it before the crash (the crash erased it), and
        rebalance shards onto it so it carries a fair share again."""
        if not self.recovery:
            return
        self._dead.discard(node)
        self._probes.pop(node, None)
        self._last_heard[node] = self.now
        # The crash voided whatever envelope the dead incarnation had
        # accrued; a stale bound must not slow re-detection.
        self._outstanding_work[node] = 0.0
        self.stats.rejoins += 1
        if self.tracer is not None:
            self.tracer.instant(
                "faults",
                f"node {node} rejoined",
                self.now,
                args={"node": node},
            )
        replayed = 0
        for index in sorted(self._inflight):
            round_state = self._inflight[index]
            for key in sorted(
                k
                for k in round_state.pending_results
                if k[0] == node and k in round_state.dispatched
            ):
                if node not in self._recovering:
                    self._recovering[node] = _RecoveryEpisode(
                        started=self.now
                    )
                replayed += self._replay_unit(index, node, key[1])
        self.stats.ops_replayed += replayed
        self._rebalance_to(node)
        self._drain_gates()

    def _rebalance_to(self, node: int) -> None:
        """Administrative lease transfers bringing a rejoined node up to
        its fair shard share — the normal request/grant/ack handshake
        under the :data:`ADMIN_ROUND` sentinel, cooldown pins set as any
        migration would."""
        live = [
            n
            for n in range(self.shard_map.num_nodes)
            if n not in self._dead
        ]
        fair = self.shard_map.num_shards // len(live)
        while len(self.shard_map.shards_of_node(node)) < fair:
            donors = [
                n
                for n in live
                if n != node
                and len(self.shard_map.shards_of_node(n)) > fair
            ]
            if not donors:
                break
            donor = max(
                donors,
                key=lambda n: (len(self.shard_map.shards_of_node(n)), n),
            )
            movable = [
                shard
                for shard in self.shard_map.shards_of_node(donor)
                if shard not in self._shard_ack_round
            ]
            if not movable:
                break
            shard = max(movable)
            self.shard_map.migrate(shard, node, self._rounds_started)
            self._last_migration[shard] = self._rounds_started
            self._shard_ack_round[shard] = ADMIN_ROUND
            self._handoff_info[shard] = (ADMIN_ROUND, donor, node)
            self._arm_lease_timer(shard)
            self.send(
                donor,
                "cl_lease_request",
                {"shard": shard, "new_owner": node, "round": ADMIN_ROUND},
            )

    def _settle_replay(self, key3: tuple) -> None:
        """A replay incarnation's result arrived: settle every failure
        episode waiting on it; an episode whose last replay settled adds
        its span to ``recovery_makespan``."""
        owners = self._replay_episode.pop(key3, None)
        if owners is None:
            return
        for owner in owners:
            episode = self._recovering.get(owner)
            if episode is None:
                continue
            episode.outstanding.discard(key3)
            if episode.outstanding:
                continue
            del self._recovering[owner]
            self.stats.recovery_makespan += self.now - episode.started
            if self.tracer is not None:
                self.tracer.span(
                    "faults",
                    f"recovery node {owner}",
                    "recovery",
                    episode.started,
                    self.now,
                    chain=False,
                    args={"node": owner},
                )

    # -- message handlers -------------------------------------------------

    def handle_cl_pong(self, message: Message) -> None:
        """A probed node answered: alive, however late its work.  The
        pong refreshes the liveness floor; the timer that sent the
        probe re-fires, sees the answer, and retransmits the stuck
        message instead of declaring the node dead."""
        self._last_heard[message.src] = self.now

    def handle_cl_lease_ack(self, message: Message) -> None:
        body = message.payload
        if self.pipeline_depth > 1:
            index = body["round"]
            shard = body["shard"]
            if self.recovery:
                self._last_heard[message.src] = self.now
                # The shard's serialization token is the exactly-once
                # guard: an ack settles its handoff (timer, bookkeeping,
                # pending_acks) only while it still holds the token.  An
                # ack whose handoff was settled synthetically by
                # _declare_dead — or that raced a revocation — finds the
                # token gone or moved on and is merely counted.
                if self._shard_ack_round.get(shard) != index:
                    self.stats.stale_messages += 1
                    return
                self._cancel_lease_timer(shard)
                self._handoff_info.pop(shard, None)
                self._shard_ack_round.pop(shard, None)
                self._lease_resends.pop(shard, None)
                if index == ADMIN_ROUND:
                    # Administrative handoff (revocation fail-over or
                    # rejoin rebalancing); no round bookkeeping.
                    self._drain_gates()
                    return
                round_state = self._inflight.get(index)
                if round_state is None:
                    self.stats.stale_messages += 1
                    return
                round_state.pending_acks -= 1
                self._finish_pipelined_round(index)
                self._drain_gates()
                return
            round_state = self._inflight.get(index)
            if round_state is None:
                raise ClusterError("stray lease ack outside its round")
            round_state.pending_acks -= 1
            self._shard_ack_round.pop(shard, None)
            self._finish_pipelined_round(index)
            self._drain_gates()
            return
        round_state = self._round
        if round_state is None or body["round"] != round_state.index:
            raise ClusterError("stray lease ack outside its round")
        round_state.pending_acks -= 1
        self._maybe_finish_round()

    def handle_cl_result(self, message: Message) -> None:
        body = message.payload
        if self.pipeline_depth > 1:
            index = body["round"]
            round_state = self._inflight.get(index)
            key = (
                (message.src, body["unit"])
                if self.unit_dispatch
                else message.src
            )
            if self.recovery and self.unit_dispatch:
                self._last_heard[message.src] = self.now
                timer = self._result_timers.pop(
                    (index, message.src, body["unit"]), None
                )
                if timer is not None:
                    timer.cancel()
                envelope = self._unit_envelope.pop(
                    (index, message.src, body["unit"]), None
                )
                if envelope is not None:
                    self._outstanding_work[message.src] = max(
                        0.0,
                        self._outstanding_work.get(message.src, 0.0)
                        - envelope,
                    )
            if round_state is None or key not in round_state.pending_results:
                if self.recovery:
                    # A result from a node declared dead after sending it
                    # (its unit was replayed), or a straggler from a
                    # fenced-but-alive node: the apply-side dedup already
                    # made any double-execution a no-op, so tolerate and
                    # count rather than crash the run.
                    self.stats.stale_messages += 1
                    return
                raise ClusterError(
                    f"stray or duplicate result from node {message.src} "
                    f"in round {index}"
                )
            self.responses.update(body["responses"])
            round_state.pending_results.discard(key)
            round_state.completed.add(key)
            if self.recovery and self.unit_dispatch:
                self._settle_replay((index, message.src, body["unit"]))
            if not self.unit_dispatch:
                self._node_outstanding.discard(message.src)
            self._finish_pipelined_round(index)
            self._drain_gates()
            return
        round_state = self._round
        if round_state is None or body["round"] != round_state.index:
            raise ClusterError("stray result outside its round")
        if message.src not in round_state.pending_results:
            raise ClusterError(
                f"duplicate result from node {message.src} in round "
                f"{round_state.index}"
            )
        self.responses.update(body["responses"])
        round_state.pending_results.discard(message.src)
        self._maybe_finish_round()

    def _maybe_finish_round(self) -> None:
        round_state = self._round
        assert round_state is not None
        if round_state.pending_results or round_state.pending_acks > 0:
            return
        routed = round_state.routed
        self.stats.record_round(
            ClusterRound(
                index=routed.index,
                window=sum(len(ops) for ops in routed.assignment.values()),
                owner_local_ops=routed.owner_local,
                hot_split_ops=routed.hot_split,
                spill_ops=routed.spill,
                escalated_ops=routed.escalated,
                lease_migrations=len(routed.migrations),
                nodes_used=len(routed.assignment),
                virtual_time=self.now - round_state.started,
                escalation_time=routed.t_escalation,
                escalation_messages=routed.escalation_messages,
                team_ops=routed.team_ops,
                global_ops=routed.global_ops,
                team_messages=routed.team_messages,
                global_messages=routed.global_messages,
                teams=routed.teams,
                team_sizes=routed.team_sizes,
                cooldown_skips=routed.cooldown_skips,
            )
        )
        self._round = None

    @property
    def idle(self) -> bool:
        if self.pipeline_depth > 1:
            return not self._inflight
        return self._round is None
