"""Shard ownership: which cluster node serves which account shards.

Accounts hash into a fixed ring of ``num_shards`` shards (the same stable
multiplicative hash as the engine's lane planner, so lane affinity and
node ownership agree); each shard is owned by exactly one node.  The map
is the router's authoritative view — nodes mirror their owned set through
the lease messages — and every mutation is recorded, so a benchmark can
replay the full lease schedule of a run.

Ownership is a *routing* concept, not a safety one: the serial-equivalence
argument of the cluster only needs conflict-graph components to be
co-located per round, which the router guarantees for any ownership map.
That is why lease migrations can chase load freely — any schedule of
handoffs yields the same final state and responses (machine-checked in
``tests/cluster/test_cluster_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.shard import stable_account_hash
from repro.errors import ClusterError


@dataclass(frozen=True, slots=True)
class LeaseRecord:
    """One completed shard-ownership handoff."""

    shard: int
    from_node: int
    to_node: int
    round_index: int


class ShardMap:
    """Account → shard → owner-node mapping with migration history."""

    def __init__(self, num_shards: int, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ClusterError("cluster needs at least one node")
        if num_shards < num_nodes:
            raise ClusterError(
                f"need at least one shard per node "
                f"({num_shards} shards < {num_nodes} nodes)"
            )
        self.num_shards = num_shards
        self.num_nodes = num_nodes
        #: shard -> owning node; round-robin at deployment.
        self._owner: dict[int, int] = {
            shard: shard % num_nodes for shard in range(num_shards)
        }
        self.migrations: list[LeaseRecord] = []

    # ------------------------------------------------------------------

    def shard_of(self, account: int) -> int:
        """The shard an account hashes into (stable across runs)."""
        return stable_account_hash(account) % self.num_shards

    def owner_of(self, account: int) -> int:
        """The node currently owning an account's shard."""
        return self._owner[self.shard_of(account)]

    def owner_of_shard(self, shard: int) -> int:
        if shard not in self._owner:
            raise ClusterError(f"unknown shard {shard}")
        return self._owner[shard]

    def shards_of_node(self, node_id: int) -> list[int]:
        """All shards a node currently owns (sorted)."""
        return sorted(s for s, n in self._owner.items() if n == node_id)

    def migrate(
        self, shard: int, to_node: int, round_index: int = -1
    ) -> LeaseRecord:
        """Hand a shard's lease to another node; returns the record."""
        if not 0 <= to_node < self.num_nodes:
            raise ClusterError(f"unknown node {to_node}")
        from_node = self.owner_of_shard(shard)
        if from_node == to_node:
            raise ClusterError(
                f"shard {shard} already owned by node {to_node}"
            )
        self._owner[shard] = to_node
        record = LeaseRecord(shard, from_node, to_node, round_index)
        self.migrations.append(record)
        return record

    def load_of(self, loads: dict[int, int]) -> dict[int, int]:
        """Fold per-account loads into per-node loads under this map."""
        per_node = {node: 0 for node in range(self.num_nodes)}
        for account, load in loads.items():
            per_node[self.owner_of(account)] += load
        return per_node

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "num_nodes": self.num_nodes,
            "shards_per_node": {
                node: len(self.shards_of_node(node))
                for node in range(self.num_nodes)
            },
            "migrations": len(self.migrations),
        }
