"""Cluster measurements: what shard ownership buys at the message level.

The single-process engine showed the trichotomy's value in lane-parallel
virtual time; the cluster makes the same argument *distributed*: owner-local
traffic costs two point-to-point messages (forward + reply) and zero
coordination, lease handoffs cost three messages per migrated shard, and
only contended cross-node components pay the total-order lane's quadratic
bill.  Every round records how the window split along those lines, and each
node keeps its own bill, so load imbalance and per-node coordination cost
are first-class outputs.

All times are in the cluster simulator's virtual clock (network latencies +
operation units + simulated consensus latency), matching the repository's
measurement philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeBill:
    """Per-node accounting over a full cluster run."""

    node_id: int
    ops_executed: int = 0
    rounds_active: int = 0
    #: Virtual time spent executing: sum of round critical paths × op
    #: cost (batch dispatch), or each unit's execution span — first op
    #: start to last finish, queueing excluded — under component-granular
    #: dispatch (spans of units overlapping on disjoint lanes both count).
    busy_time: float = 0.0
    forwards_received: int = 0
    results_sent: int = 0
    #: Shard leases handed away / acquired through the lease protocol.
    leases_granted: int = 0
    leases_acquired: int = 0
    #: Virtual time spent waiting for this node's synchronization lanes
    #: (team or global) before a round's batch could execute.
    sync_wait_time: float = 0.0
    #: Component-granular dispatch only: units executed on this node (a
    #: unit is one conflict-graph component, or a round's singleton set).
    units_executed: int = 0
    #: Op-granular DAG scheduling only: chained ops this node planned vs
    #: the sum of their components' critical paths, and the high-water
    #: marks of component critical path / antichain width it saw.
    dag_chain_ops: int = 0
    dag_critical_ops: int = 0
    max_dag_critical_path: int = 0
    max_dag_width: int = 0
    #: Fault lifecycle (:mod:`repro.faults`): times this node crashed and
    #: times it rejoined the cluster.
    crashes: int = 0
    restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "ops_executed": self.ops_executed,
            "rounds_active": self.rounds_active,
            "busy_time": self.busy_time,
            "forwards_received": self.forwards_received,
            "results_sent": self.results_sent,
            "leases_granted": self.leases_granted,
            "leases_acquired": self.leases_acquired,
            "sync_wait_time": self.sync_wait_time,
            "units_executed": self.units_executed,
            "dag_chain_ops": self.dag_chain_ops,
            "dag_critical_ops": self.dag_critical_ops,
            "max_dag_critical_path": self.max_dag_critical_path,
            "max_dag_width": self.max_dag_width,
            "crashes": self.crashes,
            "restarts": self.restarts,
        }


@dataclass(frozen=True, slots=True)
class ClusterRound:
    """One routing round at the cluster's client edge."""

    index: int
    window: int
    owner_local_ops: int
    hot_split_ops: int
    spill_ops: int
    escalated_ops: int
    lease_migrations: int
    nodes_used: int
    virtual_time: float
    escalation_time: float
    escalation_messages: int
    #: Tiered split of the escalated traffic (:mod:`repro.sync`):
    #: components ordered by a team lane among just their owner nodes vs
    #: the shared global lane.
    team_ops: int = 0
    global_ops: int = 0
    team_messages: int = 0
    global_messages: int = 0
    teams: int = 0
    team_sizes: tuple[int, ...] = ()
    #: Lease migrations suppressed by the anti-churn cooldown this round.
    cooldown_skips: int = 0
    #: Component-granular dispatch only: independently gated ``cl_run``
    #: units this round fanned out as (0 = batch-granular dispatch).
    units_dispatched: int = 0
    #: Cross-round pipelining only (:class:`~repro.cluster.router.Router`
    #: with ``pipeline_depth > 1``): rounds in flight when this one was
    #: classified, virtual time its per-node batches spent gated at the
    #: router before dispatch (``dispatch_stall_contended`` is the share
    #: on nodes executing sync-ordered components), and the round's
    #: absolute completion time.  Barrier rounds leave the defaults.
    inflight: int = 1
    dispatch_stall: float = 0.0
    dispatch_stall_contended: float = 0.0
    #: The share of the dispatch stall caused by the cross-round footprint
    #: gate specifically (the node was free; a conflicting earlier batch
    #: had not committed yet) — pipeline fill excluded.
    frontier_stall: float = 0.0
    frontier_stall_contended: float = 0.0
    completed_at: float = 0.0


@dataclass
class ClusterStats:
    """Aggregate over a full cluster run."""

    num_nodes: int = 1
    lanes_per_node: int = 1
    window: int = 0
    num_shards: int = 0
    op_cost: float = 1.0
    #: Configured window overlap depth (1 = the historical barrier).
    pipeline_depth: int = 1
    #: Op-granular DAG scheduling + component-granular dispatch enabled.
    dag_scheduling: bool = False

    ops_executed: int = 0
    rounds: int = 0
    #: Ops executed on the node owning their anchor account (the zero-
    #: coordination fast path: one forward, one reply, nothing else).
    owner_local_ops: int = 0
    #: Commuting-bundle ops sprayed off their owner by hot-shard splitting.
    hot_split_ops: int = 0
    #: Commuting singletons shed from overloaded nodes (overflow spill).
    spill_ops: int = 0
    #: Chain members ordered by a synchronization lane (team or global).
    escalated_ops: int = 0
    #: Tiered split (:mod:`repro.sync`): team-lane ops pay ``O(k²)`` among
    #: their owner nodes, global ops pay the shared Tier ∞ lane.
    team_ops: int = 0
    global_ops: int = 0
    team_messages: int = 0
    global_messages: int = 0
    #: ``team size k -> team-lane components of that size`` over the run.
    team_k_histogram: dict[int, int] = field(default_factory=dict)
    #: High-water mark of team lanes active in a single round.
    max_concurrent_teams: int = 0
    #: Submissions shed by the router's bounded mempool (backpressure).
    dropped_ops: int = 0

    lease_migrations: int = 0
    lease_messages: int = 0
    #: Lease migrations suppressed by the anti-churn cooldown.
    lease_cooldown_skips: int = 0
    escalations: int = 0
    escalation_messages: int = 0
    escalation_time: float = 0.0

    #: Cross-round pipelining: high-water mark of rounds in flight and
    #: total router-side dispatch stall (split by contended attribution).
    #: ``dispatch_stall_time`` includes benign pipeline fill (the node was
    #: still executing its previous round); ``frontier_stall_time`` is the
    #: cross-round footprint gate alone.
    max_inflight_rounds: int = 0
    dispatch_stall_time: float = 0.0
    dispatch_stall_time_contended: float = 0.0
    frontier_stall_time: float = 0.0
    frontier_stall_time_contended: float = 0.0

    #: Fault tolerance (:mod:`repro.faults`): crash/recovery accounting.
    #: ``ops_lost`` is the committed-op loss — admitted operations whose
    #: response never materialized; the recovery protocol holds it at 0
    #: for every crash schedule.  ``ops_replayed`` counts operations
    #: re-dispatched from a failed node to a survivor; ``revocations``
    #: counts shard leases unilaterally revoked from failed owners;
    #: ``rejoins`` counts nodes readmitted after a restart;
    #: ``recovery_makespan`` is the total virtual time between declaring
    #: a node dead and its last replayed result (per failure episode);
    #: ``stale_messages`` counts results/acks from fenced or superseded
    #: senders that the router tolerated instead of raising.
    ops_lost: int = 0
    ops_replayed: int = 0
    revocations: int = 0
    rejoins: int = 0
    recovery_makespan: float = 0.0
    stale_messages: int = 0

    #: Virtual-time end-to-end makespan (network + execution + consensus).
    makespan: float = 0.0
    #: Data-plane messages on the cluster network (forwards/results/leases).
    cluster_messages: int = 0

    node_bills: list[NodeBill] = field(default_factory=list)
    round_log: list[ClusterRound] = field(default_factory=list)

    # ------------------------------------------------------------------

    def bill(self, node_id: int) -> NodeBill:
        return self.node_bills[node_id]

    #: Component-granular dispatch: total independently gated units.
    units_dispatched: int = 0

    def record_round(self, round_stats: ClusterRound) -> None:
        self.rounds += 1
        self.units_dispatched += round_stats.units_dispatched
        self.ops_executed += round_stats.window
        self.owner_local_ops += round_stats.owner_local_ops
        self.hot_split_ops += round_stats.hot_split_ops
        self.spill_ops += round_stats.spill_ops
        self.escalated_ops += round_stats.escalated_ops
        self.team_ops += round_stats.team_ops
        self.global_ops += round_stats.global_ops
        self.team_messages += round_stats.team_messages
        self.global_messages += round_stats.global_messages
        for size in round_stats.team_sizes:
            self.team_k_histogram[size] = (
                self.team_k_histogram.get(size, 0) + 1
            )
        self.max_concurrent_teams = max(
            self.max_concurrent_teams, round_stats.teams
        )
        self.max_inflight_rounds = max(
            self.max_inflight_rounds, round_stats.inflight
        )
        self.dispatch_stall_time += round_stats.dispatch_stall
        self.dispatch_stall_time_contended += (
            round_stats.dispatch_stall_contended
        )
        self.frontier_stall_time += round_stats.frontier_stall
        self.frontier_stall_time_contended += (
            round_stats.frontier_stall_contended
        )
        self.lease_migrations += round_stats.lease_migrations
        self.lease_cooldown_skips += round_stats.cooldown_skips
        self.escalation_time += round_stats.escalation_time
        self.escalation_messages += round_stats.escalation_messages
        if round_stats.escalation_messages:
            self.escalations += 1
        self.round_log.append(round_stats)

    # -- derived ---------------------------------------------------------

    @property
    def throughput(self) -> float:
        """Operations per virtual time unit, end to end."""
        if self.makespan <= 0:
            return 0.0
        return self.ops_executed / self.makespan

    @property
    def escalation_rate(self) -> float:
        if not self.ops_executed:
            return 0.0
        return self.escalated_ops / self.ops_executed

    @property
    def owner_local_rate(self) -> float:
        if not self.ops_executed:
            return 0.0
        return self.owner_local_ops / self.ops_executed

    @property
    def mean_team_size(self) -> float:
        """Mean *k* over all team-lane components (0.0 when none ran)."""
        total = sum(self.team_k_histogram.values())
        if not total:
            return 0.0
        return (
            sum(k * count for k, count in self.team_k_histogram.items())
            / total
        )

    @property
    def dag_chain_ops(self) -> int:
        return sum(bill.dag_chain_ops for bill in self.node_bills)

    @property
    def dag_critical_ops(self) -> int:
        return sum(bill.dag_critical_ops for bill in self.node_bills)

    @property
    def dag_speedup(self) -> float:
        """Chained ops over summed component critical paths across all
        nodes — the intra-component parallelism op-granular node planning
        exploited (1.0 under chain-atomic scheduling)."""
        critical = self.dag_critical_ops
        if not critical:
            return 1.0
        return self.dag_chain_ops / critical

    @property
    def max_dag_critical_path(self) -> int:
        return max(
            (bill.max_dag_critical_path for bill in self.node_bills),
            default=0,
        )

    @property
    def max_dag_width(self) -> int:
        return max(
            (bill.max_dag_width for bill in self.node_bills), default=0
        )

    @property
    def load_imbalance(self) -> float:
        """Max over mean of per-node executed ops (1.0 = perfectly even)."""
        loads = [bill.ops_executed for bill in self.node_bills]
        if not loads or not sum(loads):
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def as_dict(self) -> dict:
        """JSON-ready summary (used by ``benchmarks/bench_cluster.py``)."""
        return {
            "num_nodes": self.num_nodes,
            "lanes_per_node": self.lanes_per_node,
            "window": self.window,
            "num_shards": self.num_shards,
            "op_cost": self.op_cost,
            "pipeline_depth": self.pipeline_depth,
            "dag_scheduling": self.dag_scheduling,
            "units_dispatched": self.units_dispatched,
            "dag_chain_ops": self.dag_chain_ops,
            "dag_critical_ops": self.dag_critical_ops,
            "dag_speedup": self.dag_speedup,
            "max_dag_critical_path": self.max_dag_critical_path,
            "max_dag_width": self.max_dag_width,
            "max_inflight_rounds": self.max_inflight_rounds,
            "dispatch_stall_time": self.dispatch_stall_time,
            "dispatch_stall_time_contended": self.dispatch_stall_time_contended,
            "frontier_stall_time": self.frontier_stall_time,
            "frontier_stall_time_contended": (
                self.frontier_stall_time_contended
            ),
            "ops_executed": self.ops_executed,
            "rounds": self.rounds,
            "owner_local_ops": self.owner_local_ops,
            "owner_local_rate": self.owner_local_rate,
            "hot_split_ops": self.hot_split_ops,
            "spill_ops": self.spill_ops,
            "escalated_ops": self.escalated_ops,
            "escalation_rate": self.escalation_rate,
            "team_ops": self.team_ops,
            "global_ops": self.global_ops,
            "team_messages": self.team_messages,
            "global_messages": self.global_messages,
            "team_k_histogram": {
                str(k): v for k, v in sorted(self.team_k_histogram.items())
            },
            "mean_team_size": self.mean_team_size,
            "max_concurrent_teams": self.max_concurrent_teams,
            "dropped_ops": self.dropped_ops,
            "ops_lost": self.ops_lost,
            "ops_replayed": self.ops_replayed,
            "revocations": self.revocations,
            "rejoins": self.rejoins,
            "recovery_makespan": self.recovery_makespan,
            "stale_messages": self.stale_messages,
            "lease_migrations": self.lease_migrations,
            "lease_messages": self.lease_messages,
            "lease_cooldown_skips": self.lease_cooldown_skips,
            "escalations": self.escalations,
            "escalation_messages": self.escalation_messages,
            "escalation_time": self.escalation_time,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "cluster_messages": self.cluster_messages,
            "load_imbalance": self.load_imbalance,
            "node_bills": [bill.as_dict() for bill in self.node_bills],
        }

    def registry(self):
        """This summary re-derived as a :class:`repro.obs.MetricsRegistry`
        — every numeric leaf of :meth:`as_dict` becomes a dotted-name
        gauge (per-node bills are listed under ``node<i>.<field>``), so
        renderers and exporters can consume engine and cluster stats
        through one uniform read interface."""
        from repro.obs.metrics import MetricsRegistry

        summary = self.as_dict()
        summary.pop("node_bills")
        registry = MetricsRegistry.from_summary(summary)
        for bill in self.node_bills:
            registry.merge_summary(
                bill.as_dict(), prefix=f"node{bill.node_id}."
            )
        return registry
