"""Cluster-aware workload construction.

The cluster benchmarks need a workload that is *owner-local by
construction* — every operation's accounts fall inside a single node's
shards — to demonstrate the zero-coordination regime: N nodes, zero
consensus messages, zero lease migrations.  Account placement depends on
the deployment's :class:`~repro.cluster.sharding.ShardMap`, so the helper
lives here rather than in :mod:`repro.workloads`; the *skew* model,
however, is the shared one (:mod:`repro.workloads.skew`), so contention
sweeps stay comparable with every other generator in the repository.
"""

from __future__ import annotations

import random

from repro.errors import ClusterError
from repro.spec.operation import Operation
from repro.workloads.generators import WorkloadItem
from repro.workloads.skew import skewed_index, validate_skew, zipf_weights

from repro.cluster.sharding import ShardMap


def owner_local_workload(
    shard_map: ShardMap,
    num_accounts: int,
    count: int,
    seed: int = 0,
    read_fraction: float = 0.2,
    max_value: int = 10,
    zipf_s: float = 0.0,
    hotspot_fraction: float = 0.0,
    hotspot_nodes: int = 1,
) -> list[WorkloadItem]:
    """Seeded ERC20 traffic whose every operation stays on one owner node.

    Transfers pick source and destination from the same node's account
    set and are issued by the source's owner process (``pid == source``);
    reads query any account of one node.  Routed through a cluster
    deployed with the same ``shard_map`` geometry, every conflict-graph
    component anchors on a single owner: no leases, no consensus.

    The *node* draw goes through the shared skew model
    (:func:`repro.workloads.skew.skewed_index`): ``zipf_s`` gives nodes a
    heavy-tailed popularity and ``hotspot_fraction`` routes that share of
    traffic onto the first ``hotspot_nodes`` nodes — the load-imbalance
    knob for lease and spill experiments, deterministic per seed.
    """
    by_node: dict[int, list[int]] = {}
    for account in range(num_accounts):
        by_node.setdefault(shard_map.owner_of(account), []).append(account)
    pools = [accounts for _, accounts in sorted(by_node.items())]
    if not any(len(pool) >= 2 for pool in pools):
        raise ClusterError(
            "owner-local transfers need a node owning at least two accounts"
        )
    validate_skew(hotspot_fraction, hotspot_nodes, len(pools))
    rng = random.Random(seed)
    node_weights = zipf_weights(len(pools), zipf_s) if zipf_s > 0 else None
    items: list[WorkloadItem] = []
    for _ in range(count):
        pool = pools[
            skewed_index(
                rng, len(pools), node_weights, hotspot_fraction, hotspot_nodes
            )
        ]
        if rng.random() < read_fraction or len(pool) < 2:
            items.append(
                WorkloadItem(
                    pid=rng.choice(pool),
                    operation=Operation("balanceOf", (rng.choice(pool),)),
                )
            )
        else:
            source, dest = rng.sample(pool, 2)
            items.append(
                WorkloadItem(
                    pid=source,
                    operation=Operation(
                        "transfer", (dest, rng.randint(0, max_value))
                    ),
                )
            )
    return items
