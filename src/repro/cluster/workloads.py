"""Cluster-aware workload construction.

The cluster benchmarks need a workload that is *owner-local by
construction* — every operation's accounts fall inside a single node's
shards — to demonstrate the zero-coordination regime: N nodes, zero
consensus messages, zero lease migrations.  Account placement depends on
the deployment's :class:`~repro.cluster.sharding.ShardMap`, so the helper
lives here rather than in :mod:`repro.workloads`.
"""

from __future__ import annotations

import random

from repro.errors import ClusterError
from repro.spec.operation import Operation
from repro.workloads.generators import WorkloadItem

from repro.cluster.sharding import ShardMap


def owner_local_workload(
    shard_map: ShardMap,
    num_accounts: int,
    count: int,
    seed: int = 0,
    read_fraction: float = 0.2,
    max_value: int = 10,
) -> list[WorkloadItem]:
    """Seeded ERC20 traffic whose every operation stays on one owner node.

    Transfers pick source and destination from the same node's account
    set and are issued by the source's owner process (``pid == source``);
    reads query any account of one node.  Routed through a cluster
    deployed with the same ``shard_map`` geometry, every conflict-graph
    component anchors on a single owner: no leases, no consensus.
    """
    by_node: dict[int, list[int]] = {}
    for account in range(num_accounts):
        by_node.setdefault(shard_map.owner_of(account), []).append(account)
    pools = [accounts for _, accounts in sorted(by_node.items())]
    if not any(len(pool) >= 2 for pool in pools):
        raise ClusterError(
            "owner-local transfers need a node owning at least two accounts"
        )
    rng = random.Random(seed)
    items: list[WorkloadItem] = []
    for _ in range(count):
        pool = rng.choice(pools)
        if rng.random() < read_fraction or len(pool) < 2:
            items.append(
                WorkloadItem(
                    pid=rng.choice(pool),
                    operation=Operation("balanceOf", (rng.choice(pool),)),
                )
            )
        else:
            source, dest = rng.sample(pool, 2)
            items.append(
                WorkloadItem(
                    pid=source,
                    operation=Operation(
                        "transfer", (dest, rng.randint(0, max_value))
                    ),
                )
            )
    return items
