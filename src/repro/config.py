"""Unified run configuration: the fast paths are the defaults now.

Every headline subsystem — op-granular DAG scheduling, cross-round
pipelining, tiered team lanes, team-lane GC — shipped default-off behind
its own kwarg, so out of the box the system was still the PR 1/2 barrier
engine.  This module flips them on and gives the knob sprawl one home:

* :class:`EngineConfig` — the single-process executors
  (:class:`~repro.engine.executor.BatchExecutor`,
  :class:`~repro.engine.pipeline.PipelinedExecutor`);
* :class:`ClusterConfig` — the distributed cluster
  (:class:`~repro.cluster.cluster.TokenCluster`).

Both are frozen dataclasses: a config is a *value*, hashable and
comparable, and ``as_dict()`` / ``from_dict()`` round-trip it losslessly
so benchmark baselines can embed the exact configuration that produced
them (``scripts/check_bench.py`` refuses a baseline whose config block
disagrees with the run's — a silent default flip can never skew one
number in one place).

The historical behavior is not gone, it is a preset: ``legacy()`` pins
the pre-flip defaults — chain-atomic barrier rounds, always-global
escalation, no lane GC — and the config test suite holds it bit-identical
(stats-dict identity) to explicit pre-flip kwargs across every traced
setup.

Precedence at the constructors: an explicitly passed kwarg beats the
``config=`` value, which beats the dataclass default.  Bare kwargs
therefore keep working exactly as before — they are overrides on top of
whatever config (or default) is in effect.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from repro.errors import ClusterError, EngineError

#: Sentinel distinguishing "kwarg not passed" from legitimate ``None``
#: values (``mempool_capacity=None``, ``lane_ttl=None``).
UNSET = object()


def _with_overrides(config, overrides: dict):
    """A copy of ``config`` with every non-:data:`UNSET` override applied
    (kwargs beat the config, the config beats the dataclass defaults)."""
    updates = {
        key: value for key, value in overrides.items() if value is not UNSET
    }
    return replace(config, **updates) if updates else config


class _ConfigBase:
    """Shared validation + dict round-trip of the frozen config values."""

    #: Raised on invalid values — the cluster config narrows it to
    #: :class:`~repro.errors.ClusterError` so each entry point keeps its
    #: historical exception contract.
    _error: type[Exception] = EngineError

    def as_dict(self) -> dict:
        """A plain-JSON snapshot (bench metadata; ``from_dict`` inverts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a config from :meth:`as_dict` output.  Unknown keys
        fail loudly — a baseline written by a different config surface
        should never be silently reinterpreted."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise cls._error(
                f"{cls.__name__} does not know the keys {unknown}"
            )
        return cls(**data)

    def _check_common(self) -> None:
        if self.window < 1:
            raise self._error("window must be positive")
        if self.team_threshold < 0:
            raise self._error("team_threshold must be non-negative")
        if self.pipeline_depth < 1:
            raise self._error("pipeline_depth must be >= 1")
        if self.lane_ttl is not None and self.lane_ttl < 1:
            raise self._error("lane_ttl must be positive (or None)")
        if (
            self.mempool_capacity is not None
            and self.mempool_capacity < 1
        ):
            raise self._error("mempool_capacity must be positive (or None)")


@dataclass(frozen=True)
class EngineConfig(_ConfigBase):
    """Configuration of the single-process executors.

    The defaults are the *fast* configuration: op-granular DAG
    scheduling, two pipelined windows in flight, team lanes for spender
    bounds up to 4 with per-account sync-group splitting, and team lanes
    garbage-collected after 32 idle sync rounds.  ``legacy()`` is the
    pre-flip behavior, bit for bit.
    """

    num_lanes: int = 4
    window: int = 64
    op_cost: float = 1.0
    seed: int = 0
    validate: bool = False
    mempool_capacity: int | None = None
    #: Largest spender bound ordered on a k-participant team lane
    #: (``0`` = every contended component pays the global lane).
    team_threshold: int = 4
    #: Op-granular scheduling along each component's precedence DAG
    #: (``False`` = chain-atomic lanes, the historical planner).
    dag_scheduling: bool = True
    #: Windows in flight at once; ``1`` *is* the barrier round loop.
    #: Read by :class:`~repro.engine.pipeline.PipelinedExecutor` only —
    #: the barrier :class:`~repro.engine.executor.BatchExecutor` is
    #: depth 1 by construction.
    pipeline_depth: int = 2
    #: Garbage-collect a team lane idle for this many sync rounds
    #: (``None`` = keep every lane forever).
    lane_ttl: int | None = 32
    #: Split each contended component into per-account synchronization
    #: groups, each ordered on its own (smaller) team lane; cross-group
    #: order is stitched through chain order.
    split_sync: bool = True

    def __post_init__(self) -> None:
        if self.num_lanes < 1:
            raise EngineError("need at least one lane")
        self._check_common()

    @classmethod
    def legacy(cls, **overrides) -> "EngineConfig":
        """The pre-flip defaults: chain-atomic barrier rounds, global-only
        escalation, no lane GC — PR 1–8 behavior, bit for bit."""
        preset = dict(
            team_threshold=0,
            dag_scheduling=False,
            pipeline_depth=1,
            lane_ttl=None,
            split_sync=False,
        )
        preset.update(overrides)
        return cls(**preset)


@dataclass(frozen=True)
class ClusterConfig(_ConfigBase):
    """Configuration of the distributed :class:`~repro.cluster.cluster.
    TokenCluster`.

    Defaults mirror :class:`EngineConfig`'s flip: component-granular
    unit dispatch (DAG scheduling under a depth-2 pipeline), owner-node
    team lanes up to 4 participants, and idle-lane GC.  ``legacy()``
    pins the pre-flip barrier cluster.
    """

    num_nodes: int = 4
    lanes_per_node: int = 4
    window: int = 64
    #: ``None`` derives ``max(16, 8 * num_nodes)`` at construction.
    num_shards: int | None = None
    op_cost: float = 1.0
    seed: int = 0
    validate: bool = False
    mempool_capacity: int | None = None
    #: A chain migrates leases only when its majority owner already has
    #: at least this many of its operations.
    lease_min_gain: int = 2
    #: Rounds a freshly migrated shard is pinned to its new owner.
    lease_cooldown: int = 0
    #: Largest owner-node set ordered on a team lane (``0`` = global).
    team_threshold: int = 4
    pipeline_depth: int = 2
    dag_scheduling: bool = True
    lane_ttl: int | None = 32

    _error = ClusterError

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ClusterError("cluster needs at least one node")
        if self.lanes_per_node < 1:
            raise ClusterError("need at least one lane per node")
        if self.lease_min_gain < 1:
            raise ClusterError("lease_min_gain must be positive")
        if self.lease_cooldown < 0:
            raise ClusterError("lease_cooldown must be non-negative")
        self._check_common()

    @classmethod
    def legacy(cls, **overrides) -> "ClusterConfig":
        """The pre-flip defaults: batch dispatch, barrier rounds,
        global-only escalation, no lane GC."""
        preset = dict(
            team_threshold=0,
            pipeline_depth=1,
            dag_scheduling=False,
            lane_ttl=None,
        )
        preset.update(overrides)
        return cls(**preset)
