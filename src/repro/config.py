"""Unified run configuration: the fast paths are the defaults now.

Every headline subsystem — op-granular DAG scheduling, cross-round
pipelining, tiered team lanes, team-lane GC — shipped default-off behind
its own kwarg, so out of the box the system was still the PR 1/2 barrier
engine.  This module flips them on and gives the knob sprawl one home:

* :class:`EngineConfig` — the single-process executors
  (:class:`~repro.engine.executor.BatchExecutor`,
  :class:`~repro.engine.pipeline.PipelinedExecutor`);
* :class:`ClusterConfig` — the distributed cluster
  (:class:`~repro.cluster.cluster.TokenCluster`).

Both are frozen dataclasses: a config is a *value*, hashable and
comparable, and ``as_dict()`` / ``from_dict()`` round-trip it losslessly
so benchmark baselines can embed the exact configuration that produced
them (``scripts/check_bench.py`` refuses a baseline whose config block
disagrees with the run's — a silent default flip can never skew one
number in one place).

The historical behavior is not gone, it is a preset: ``legacy()`` pins
the pre-flip defaults — chain-atomic barrier rounds, always-global
escalation, no lane GC — and the config test suite holds it bit-identical
(stats-dict identity) to explicit pre-flip kwargs across every traced
setup.

Precedence at the constructors: an explicitly passed kwarg beats the
``config=`` value, which beats the dataclass default.  Bare kwargs
therefore keep working exactly as before — they are overrides on top of
whatever config (or default) is in effect.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ClusterError, EngineError

#: Sentinel distinguishing "kwarg not passed" from legitimate ``None``
#: values (``mempool_capacity=None``, ``lane_ttl=None``).
UNSET = object()


def _jsonify(value):
    """Recursively coerce a config field into JSON-canonical form."""
    if isinstance(value, _ConfigBase):
        return value.as_dict()
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


def _with_overrides(config, overrides: dict):
    """A copy of ``config`` with every non-:data:`UNSET` override applied
    (kwargs beat the config, the config beats the dataclass defaults)."""
    updates = {
        key: value for key, value in overrides.items() if value is not UNSET
    }
    return replace(config, **updates) if updates else config


class _ConfigBase:
    """Shared validation + dict round-trip of the frozen config values."""

    #: Raised on invalid values — the cluster config narrows it to
    #: :class:`~repro.errors.ClusterError` so each entry point keeps its
    #: historical exception contract.
    _error: type[Exception] = EngineError

    def as_dict(self) -> dict:
        """A plain-JSON snapshot (bench metadata; ``from_dict`` inverts).

        Derived from :func:`dataclasses.fields`, so a field added to any
        config *cannot* drift out of the bench config block: nested
        configs recurse through their own ``as_dict`` and tuples become
        JSON lists (``from_dict`` restores both).
        """
        return {
            field.name: _jsonify(getattr(self, field.name))
            for field in fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a config from :meth:`as_dict` output.  Unknown keys
        fail loudly — a baseline written by a different config surface
        should never be silently reinterpreted."""
        known = {field.name: field for field in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise cls._error(
                f"{cls.__name__} does not know the keys {unknown}"
            )
        kwargs = {}
        for name, value in data.items():
            default = known[name].default
            if isinstance(default, _ConfigBase) and isinstance(value, dict):
                value = type(default).from_dict(value)
            kwargs[name] = value
        return cls(**kwargs)

    def _check_common(self) -> None:
        if self.window < 1:
            raise self._error("window must be positive")
        if self.team_threshold < 0:
            raise self._error("team_threshold must be non-negative")
        if self.pipeline_depth < 1:
            raise self._error("pipeline_depth must be >= 1")
        if self.lane_ttl is not None and self.lane_ttl < 1:
            raise self._error("lane_ttl must be positive (or None)")
        if (
            self.mempool_capacity is not None
            and self.mempool_capacity < 1
        ):
            raise self._error("mempool_capacity must be positive (or None)")


@dataclass(frozen=True)
class EngineConfig(_ConfigBase):
    """Configuration of the single-process executors.

    The defaults are the *fast* configuration: op-granular DAG
    scheduling, two pipelined windows in flight, team lanes for spender
    bounds up to 4 with per-account sync-group splitting, and team lanes
    garbage-collected after 32 idle sync rounds.  ``legacy()`` is the
    pre-flip behavior, bit for bit.
    """

    num_lanes: int = 4
    window: int = 64
    op_cost: float = 1.0
    seed: int = 0
    validate: bool = False
    mempool_capacity: int | None = None
    #: Largest spender bound ordered on a k-participant team lane
    #: (``0`` = every contended component pays the global lane).
    team_threshold: int = 4
    #: Op-granular scheduling along each component's precedence DAG
    #: (``False`` = chain-atomic lanes, the historical planner).
    dag_scheduling: bool = True
    #: Windows in flight at once; ``1`` *is* the barrier round loop.
    #: Read by :class:`~repro.engine.pipeline.PipelinedExecutor` only —
    #: the barrier :class:`~repro.engine.executor.BatchExecutor` is
    #: depth 1 by construction.
    pipeline_depth: int = 2
    #: Garbage-collect a team lane idle for this many sync rounds
    #: (``None`` = keep every lane forever).
    lane_ttl: int | None = 32
    #: Split each contended component into per-account synchronization
    #: groups, each ordered on its own (smaller) team lane; cross-group
    #: order is stitched through chain order.
    split_sync: bool = True

    def __post_init__(self) -> None:
        if self.num_lanes < 1:
            raise EngineError("need at least one lane")
        self._check_common()

    @classmethod
    def legacy(cls, **overrides) -> "EngineConfig":
        """The pre-flip defaults: chain-atomic barrier rounds, global-only
        escalation, no lane GC — PR 1–8 behavior, bit for bit."""
        preset = dict(
            team_threshold=0,
            dag_scheduling=False,
            pipeline_depth=1,
            lane_ttl=None,
            split_sync=False,
        )
        preset.update(overrides)
        return cls(**preset)


@dataclass(frozen=True)
class FaultConfig(_ConfigBase):
    """A deterministic fault plan for the cluster's virtual-time network.

    Everything is declared up front in virtual timestamps and replayed
    identically on every run: crash/restart events, message-type drop
    rules, and message-type delay rules (randomized rules draw from a
    dedicated seeded stream, so the fault dice never perturb the
    latency-model stream).  ``enabled=False`` (the default) injects
    nothing and is bit-identical to a cluster without the fault layer.
    """

    enabled: bool = False
    #: ``(node, crash_at, restart_at)`` triples (``restart_at=None`` =
    #: the node never comes back).  ``(node, crash_at)`` pairs are
    #: normalized to never-restarting triples.
    crashes: tuple = ()
    #: ``(message_type, probability, start, end)`` — drop matching
    #: messages sent in ``[start, end)`` with the given probability.
    drops: tuple = ()
    #: ``(message_type, extra_delay, probability)`` — add ``extra_delay``
    #: to matching messages with the given probability.
    delays: tuple = ()
    #: Seed of the drop/delay dice (independent of the latency stream).
    seed: int = 0

    _error = ClusterError

    def __post_init__(self) -> None:
        crashes = []
        for crash in self.crashes:
            crash = tuple(crash)
            if len(crash) == 2:
                crash = crash + (None,)
            if len(crash) != 3:
                raise ClusterError(
                    "a crash is (node, crash_at[, restart_at]): "
                    f"got {crash!r}"
                )
            node, at, restart_at = crash
            if node < 0:
                raise ClusterError("crash node must be non-negative")
            if at < 0:
                raise ClusterError("crash_at must be non-negative")
            if restart_at is not None and restart_at <= at:
                raise ClusterError("restart_at must be after crash_at")
            crashes.append(crash)
        object.__setattr__(self, "crashes", tuple(crashes))
        drops = tuple(tuple(rule) for rule in self.drops)
        object.__setattr__(self, "drops", drops)
        for rule in drops:
            if len(rule) != 4:
                raise ClusterError(
                    "a drop rule is (message_type, probability, start, "
                    f"end): got {rule!r}"
                )
            _, probability, start, end = rule
            if not 0.0 <= probability <= 1.0:
                raise ClusterError("drop probability must be in [0, 1]")
            if start < 0 or end < start:
                raise ClusterError("drop window must satisfy 0 <= start <= end")
        delays = tuple(tuple(rule) for rule in self.delays)
        object.__setattr__(self, "delays", delays)
        for rule in delays:
            if len(rule) != 3:
                raise ClusterError(
                    "a delay rule is (message_type, extra_delay, "
                    f"probability): got {rule!r}"
                )
            _, extra, probability = rule
            if extra < 0:
                raise ClusterError("extra_delay must be non-negative")
            if not 0.0 <= probability <= 1.0:
                raise ClusterError("delay probability must be in [0, 1]")

    @property
    def any_faults(self) -> bool:
        """Whether the plan injects anything at all when enabled."""
        return bool(self.crashes or self.drops or self.delays)


@dataclass(frozen=True)
class ClusterConfig(_ConfigBase):
    """Configuration of the distributed :class:`~repro.cluster.cluster.
    TokenCluster`.

    Defaults mirror :class:`EngineConfig`'s flip: component-granular
    unit dispatch (DAG scheduling under a depth-2 pipeline), owner-node
    team lanes up to 4 participants, and idle-lane GC.  ``legacy()``
    pins the pre-flip barrier cluster.
    """

    num_nodes: int = 4
    lanes_per_node: int = 4
    window: int = 64
    #: ``None`` derives ``max(16, 8 * num_nodes)`` at construction.
    num_shards: int | None = None
    op_cost: float = 1.0
    seed: int = 0
    validate: bool = False
    mempool_capacity: int | None = None
    #: A chain migrates leases only when its majority owner already has
    #: at least this many of its operations.
    lease_min_gain: int = 2
    #: Rounds a freshly migrated shard is pinned to its new owner.
    lease_cooldown: int = 0
    #: Largest owner-node set ordered on a team lane (``0`` = global).
    team_threshold: int = 4
    pipeline_depth: int = 2
    dag_scheduling: bool = True
    lane_ttl: int | None = 32
    #: Declare a node dead when a dispatched unit's ``cl_result`` is this
    #: late (virtual time); ``None`` disables failure detection entirely.
    result_timeout: float | None = None
    #: Declare a lease *granter* dead when its handoff ack is this late;
    #: ``None`` reuses ``result_timeout``.
    lease_timeout: float | None = None
    #: The deterministic fault plan (disabled by default — bit-identical
    #: to a cluster without the fault layer).
    fault: FaultConfig = FaultConfig()

    _error = ClusterError

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ClusterError("cluster needs at least one node")
        if self.lanes_per_node < 1:
            raise ClusterError("need at least one lane per node")
        if self.lease_min_gain < 1:
            raise ClusterError("lease_min_gain must be positive")
        if self.lease_cooldown < 0:
            raise ClusterError("lease_cooldown must be non-negative")
        if not isinstance(self.fault, FaultConfig):
            raise ClusterError("fault must be a FaultConfig")
        for name in ("result_timeout", "lease_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ClusterError(f"{name} must be positive (or None)")
        recovery = self.result_timeout is not None
        if self.fault.enabled and self.fault.crashes and not recovery:
            raise ClusterError(
                "a crash schedule needs result_timeout so the router "
                "can detect the dead node and recover"
            )
        unit_dispatch = self.dag_scheduling and self.pipeline_depth > 1
        if (self.fault.enabled or recovery) and not unit_dispatch:
            raise ClusterError(
                "fault recovery needs component-granular dispatch "
                "(dag_scheduling=True with pipeline_depth > 1)"
            )
        self._check_common()

    @classmethod
    def legacy(cls, **overrides) -> "ClusterConfig":
        """The pre-flip defaults: batch dispatch, barrier rounds,
        global-only escalation, no lane GC."""
        preset = dict(
            team_threshold=0,
            pipeline_depth=1,
            dag_scheduling=False,
            lane_ttl=None,
        )
        preset.update(overrides)
        return cls(**preset)
