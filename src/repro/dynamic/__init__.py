"""The paper's §7 proposal: dynamically-synchronized token networks."""

from repro.dynamic.dynamic_token import (
    DynamicNetworkStats,
    DynamicTokenNode,
    OpRecord,
    TokenOp,
    assert_converged,
    measure_dynamic,
)
from repro.dynamic.sync_tracker import (
    GroupSizeTracker,
    ReplicaTokenState,
    group_coordination_cost,
    sync_group,
    sync_levels,
)

__all__ = [
    "DynamicNetworkStats",
    "DynamicTokenNode",
    "OpRecord",
    "TokenOp",
    "assert_converged",
    "measure_dynamic",
    "GroupSizeTracker",
    "ReplicaTokenState",
    "group_coordination_cost",
    "sync_group",
    "sync_levels",
]
