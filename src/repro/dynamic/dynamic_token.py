"""The §7 future-work protocol: a consensus-free token network with
*dynamic, per-account* synchronization.

"Such protocols could replace the consensus layer of traditional blockchain
platforms with a more efficient broadcast method … This would generally work
under asynchrony and yet provide an atomic broadcast functionality among
every account owner and its enabled spenders." (paper, §7)

Design (crash-tolerant dissemination via Bracha BRB; the group round is the
synchronization the theory prescribes):

* Every node replicates the token state.  Account ``a`` is owned by process
  ``a``, hosted on node ``a`` (the paper's ω bijection).
* **Owner operations** (``transfer``, ``approve``) need no cross-account
  synchronization (the AT consensus-number-1 regime): the owner validates
  against its replica, assigns the next sequence number of its *account log*,
  and disseminates the operation with FIFO reliable broadcast.
* **transferFrom** needs agreement only within ``σ_q(a)`` (Theorem 2/3): the
  spender sends the request to the account's owner, which runs one *group
  ordering round* — propose to every current group member, await their acks —
  then validates, sequences, and disseminates like an owner operation.  Cost:
  ``2·(|σ_q(a)| − 1)`` extra messages and two extra message delays, growing
  with the synchronization level ``k`` but **independent of the network
  size ``n``**.
* Replicas apply each account's log in FIFO order.  Debits of account ``a``
  and all its allowance updates live in ``a``'s log, so they are identically
  ordered everywhere; credits commute.  Balances may go transiently negative
  on a replica that applies a debit before the credit that funded it —
  the classic eventual-consistency artifact of broadcast payments (FastPay/
  Astro) — but all replicas converge to identical, non-negative states once
  the network drains, which the tests assert.

Double-spending is prevented exactly as the theory says it must be: by the
total order *within* each account's log (owner sequencing + FIFO broadcast),
never by a global order across accounts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.dynamic.sync_tracker import (
    GroupSizeTracker,
    ReplicaTokenState,
    sync_group,
)
from repro.errors import ProtocolError
from repro.net.network import Message, Network
from repro.net.node import Node
from repro.net.reliable_broadcast import FifoReliableBroadcast


@dataclass(frozen=True, slots=True)
class TokenOp:
    """One sequenced token operation, as disseminated in an account log."""

    kind: str  # "transfer" | "approve" | "transferFrom"
    account: int  # the source/approving account whose log carries the op
    actor: int  # the process performing the operation
    args: tuple[int, ...]
    op_id: int

    def __repr__(self) -> str:
        rendered = ",".join(map(str, self.args))
        return f"{self.kind}[{self.op_id}]@{self.account}({rendered})"


@dataclass
class OpRecord:
    """Lifecycle record of one submitted operation (client-side view)."""

    op_id: int
    kind: str
    submitted_at: float
    completed_at: float | None = None
    response: Any = None

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class _PendingGroupRound:
    op: TokenOp
    submitted_at: float
    requester: int
    awaiting: set[int] = field(default_factory=set)


_op_ids = itertools.count(1)


class DynamicTokenNode(Node):
    """One replica/participant of the dynamic-synchronization token network."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        num_nodes: int,
        supply: int,
        deployer: int = 0,
        track_groups: bool = False,
    ) -> None:
        super().__init__(node_id, network)
        self.n = num_nodes
        self.state = ReplicaTokenState.create(num_nodes, deployer, supply)
        self.fifo = FifoReliableBroadcast(
            self, num_nodes, self._apply_delivered
        )
        #: Client-side records of operations submitted at this node.
        self.records: dict[int, OpRecord] = {}
        #: Ops applied by this replica, in application order.
        self.applied: list[tuple[float, TokenOp]] = []
        self._group_rounds: dict[int, _PendingGroupRound] = {}
        #: Own-account ops sequenced (broadcast) but not yet applied locally.
        #: Validation must count these, or rapid-fire submissions would be
        #: checked against a stale balance and overdraw the account.
        self._pending_own: list[TokenOp] = []
        self.tracker = GroupSizeTracker() if track_groups else None

    # ------------------------------------------------------------------
    # Client API (called on the node of the acting process).
    # ------------------------------------------------------------------

    def submit_transfer(self, dest: int, value: int) -> OpRecord:
        """Owner operation: transfer from this node's own account."""
        op = TokenOp(
            kind="transfer",
            account=self.node_id,
            actor=self.node_id,
            args=(dest, value),
            op_id=next(_op_ids),
        )
        record = OpRecord(op.op_id, op.kind, submitted_at=self.now)
        self.records[op.op_id] = record
        self._finalize_own_op(op, record)
        return record

    def submit_approve(self, spender: int, value: int) -> OpRecord:
        """Owner operation: set this account's allowance for ``spender``."""
        op = TokenOp(
            kind="approve",
            account=self.node_id,
            actor=self.node_id,
            args=(spender, value),
            op_id=next(_op_ids),
        )
        record = OpRecord(op.op_id, op.kind, submitted_at=self.now)
        self.records[op.op_id] = record
        self._finalize_own_op(op, record)
        return record

    def submit_transfer_from(
        self, source: int, dest: int, value: int
    ) -> OpRecord:
        """Spender operation: route through the source account's owner for
        group-ordered sequencing."""
        op = TokenOp(
            kind="transferFrom",
            account=source,
            actor=self.node_id,
            args=(source, dest, value),
            op_id=next(_op_ids),
        )
        record = OpRecord(op.op_id, op.kind, submitted_at=self.now)
        self.records[op.op_id] = record
        if source == self.node_id:
            # Owner spending via its own allowance path: still sequenced by
            # itself; run the group round locally.
            self._start_group_round(op, requester=self.node_id)
        else:
            self.send(source, "tf_request", {"op": op})
        return record

    # ------------------------------------------------------------------
    # Owner-side sequencing.
    # ------------------------------------------------------------------

    def _effective_view(self) -> ReplicaTokenState:
        """The owner's replica state with its sequenced-but-unapplied own
        account ops applied speculatively.

        The owner sequences every debit of its own account, so this view is
        conservative (all own debits counted; incoming credits only as they
        settle) — a validated operation can never overdraw the account
        globally.
        """
        if not self._pending_own:
            return self.state
        view = self.state.copy()
        for op in self._pending_own:
            _apply_op(view, op)
        return view

    def _validate(self, op: TokenOp) -> bool:
        """Owner-side validation against the effective owner view."""
        view = self._effective_view()
        if op.kind == "transfer":
            dest, value = op.args
            return value >= 0 and view.balances[op.account] >= value
        if op.kind == "approve":
            spender, value = op.args
            return value >= 0
        if op.kind == "transferFrom":
            source, dest, value = op.args
            return (
                value >= 0
                and view.balances[source] >= value
                and view.allowances[source][op.actor] >= value
            )
        raise ProtocolError(f"unknown operation kind {op.kind!r}")

    def _finalize_own_op(self, op: TokenOp, record: OpRecord) -> None:
        if not self._validate(op):
            record.completed_at = self.now
            record.response = False
            return
        self._pending_own.append(op)
        self.fifo.broadcast({"op": op})

    def handle_tf_request(self, message: Message) -> None:
        op: TokenOp = message.payload["op"]
        if op.account != self.node_id:
            raise ProtocolError(
                f"node {self.node_id} received a tf_request for account "
                f"{op.account}"
            )
        self._start_group_round(op, requester=message.src)

    def _start_group_round(self, op: TokenOp, requester: int) -> None:
        # Fast reject: spender not enabled or obviously invalid.
        if not self._validate(op):
            self._reject(op, requester)
            return
        group = sync_group(self.state, self.node_id)
        others = sorted(group - {self.node_id})
        if not others:
            # Degenerate group (owner only): no coordination needed — the
            # consensus-number-1 regime.
            self._commit_group_op(op, requester)
            return
        round_state = _PendingGroupRound(
            op=op,
            submitted_at=self.now,
            requester=requester,
            awaiting=set(others),
        )
        self._group_rounds[op.op_id] = round_state
        for member in others:
            self.send(member, "group_propose", {"op": op})

    def handle_group_propose(self, message: Message) -> None:
        op: TokenOp = message.payload["op"]
        # Members acknowledge the owner's proposed ordering of the spend.
        self.send(message.src, "group_ack", {"op_id": op.op_id})

    def handle_group_ack(self, message: Message) -> None:
        op_id = message.payload["op_id"]
        round_state = self._group_rounds.get(op_id)
        if round_state is None:
            return  # stale ack (round already completed)
        round_state.awaiting.discard(message.src)
        if not round_state.awaiting:
            del self._group_rounds[op_id]
            # Re-validate at commit time: state may have moved during the round.
            if self._validate(round_state.op):
                self._commit_group_op(round_state.op, round_state.requester)
            else:
                self._reject(round_state.op, round_state.requester)

    def _commit_group_op(self, op: TokenOp, requester: int) -> None:
        self._pending_own.append(op)
        self.fifo.broadcast({"op": op})

    def _reject(self, op: TokenOp, requester: int) -> None:
        if requester == self.node_id:
            record = self.records.get(op.op_id)
            if record is not None:
                record.completed_at = self.now
                record.response = False
            return
        self.send(requester, "tf_reject", {"op_id": op.op_id})

    def handle_tf_reject(self, message: Message) -> None:
        record = self.records.get(message.payload["op_id"])
        if record is not None:
            record.completed_at = self.now
            record.response = False

    # ------------------------------------------------------------------
    # Replica application (FIFO-BRB delivery path).
    # ------------------------------------------------------------------

    def handle_brb_send(self, message: Message) -> None:
        self.fifo.handle_send(message)

    def handle_brb_echo(self, message: Message) -> None:
        self.fifo.handle_echo(message)

    def handle_brb_ready(self, message: Message) -> None:
        self.fifo.handle_ready(message)

    def _apply_delivered(self, sender: int, seq: int, payload: Any) -> None:
        op: TokenOp = payload["op"]
        if sender != op.account:
            raise ProtocolError(
                f"op for account {op.account} broadcast by node {sender}"
            )
        _apply_op(self.state, op)
        if op.account == self.node_id:
            # Our own sequenced op settled locally; it is no longer pending.
            self._pending_own = [
                pending
                for pending in self._pending_own
                if pending.op_id != op.op_id
            ]
        self.applied.append((self.now, op))
        if self.tracker is not None:
            self.tracker.record(self.now, self.state)
        record = self.records.get(op.op_id)
        if record is not None and record.completed_at is None:
            record.completed_at = self.now
            record.response = True


def _apply_op(state: ReplicaTokenState, op: TokenOp) -> None:
    """Apply one sequenced operation to a replica state (in place)."""
    if op.kind == "transfer":
        dest, value = op.args
        state.balances[op.account] -= value
        state.balances[dest] += value
    elif op.kind == "approve":
        spender, value = op.args
        state.allowances[op.account][spender] = value
    elif op.kind == "transferFrom":
        source, dest, value = op.args
        state.allowances[source][op.actor] -= value
        state.balances[source] -= value
        state.balances[dest] += value
    else:  # pragma: no cover - guarded upstream
        raise ProtocolError(f"unknown operation kind {op.kind!r}")


@dataclass
class DynamicNetworkStats:
    """Aggregate measurements for one dynamic-network run."""

    operations: int
    accepted: int
    rejected: int
    messages: int
    messages_per_op: float
    mean_latency: float
    p99_latency: float
    makespan: float
    by_type: dict[str, int] = field(default_factory=dict)


def measure_dynamic(nodes: list[DynamicTokenNode]) -> DynamicNetworkStats:
    """Collect per-operation latencies (submit → applied/rejected at the
    submitting node) and network counters after a run."""
    latencies: list[float] = []
    accepted = 0
    rejected = 0
    for node in nodes:
        for record in node.records.values():
            if record.latency is None:
                continue
            latencies.append(record.latency)
            if record.response:
                accepted += 1
            else:
                rejected += 1
    latencies.sort()
    operations = len(latencies)
    network = nodes[0].network
    makespan = max(
        (time for node in nodes for time, _ in node.applied), default=0.0
    )
    return DynamicNetworkStats(
        operations=operations,
        accepted=accepted,
        rejected=rejected,
        messages=network.stats.messages_sent,
        messages_per_op=(
            network.stats.messages_sent / operations if operations else 0.0
        ),
        mean_latency=sum(latencies) / operations if operations else 0.0,
        p99_latency=(
            latencies[min(operations - 1, int(0.99 * operations))]
            if operations
            else 0.0
        ),
        makespan=makespan,
        by_type=dict(network.stats.by_type),
    )


def assert_converged(nodes: list[DynamicTokenNode]) -> None:
    """All replicas hold identical, non-negative final states (called after
    the simulator drains); raises :class:`ProtocolError` otherwise."""
    snapshots = {node.state.snapshot() for node in nodes}
    if len(snapshots) != 1:
        raise ProtocolError(
            f"replicas diverged: {len(snapshots)} distinct final states"
        )
    balances, _allowances = next(iter(snapshots))
    if any(balance < 0 for balance in balances):
        raise ProtocolError(f"negative final balance: {balances}")
