"""Tracking the dynamic synchronization requirement per account (§7).

"The exact synchronization requirements can be readily deduced from the
current object's state q by reading the current balances and allowances."

Replicas of the dynamic token network maintain mutable balance/allowance
arrays; this module derives, from such a replica view, the current enabled
spender set ``σ_q(a)`` per account — the *synchronization group* whose
members must coordinate on ``transferFrom`` operations — and summary
statistics used by the experiments (group-size histograms over time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class ReplicaTokenState:
    """Mutable per-replica token state (balances may be transiently negative
    while credits are in flight; see the eventual-consistency discussion in
    :mod:`repro.dynamic.dynamic_token`)."""

    balances: list[int]
    allowances: list[list[int]]

    @classmethod
    def create(cls, num_accounts: int, deployer: int, supply: int) -> "ReplicaTokenState":
        balances = [0] * num_accounts
        balances[deployer] = supply
        allowances = [[0] * num_accounts for _ in range(num_accounts)]
        return cls(balances, allowances)

    def copy(self) -> "ReplicaTokenState":
        return ReplicaTokenState(
            list(self.balances), [list(row) for row in self.allowances]
        )

    def snapshot(self) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """Hashable snapshot for convergence assertions."""
        return (
            tuple(self.balances),
            tuple(tuple(row) for row in self.allowances),
        )


def sync_group(state: ReplicaTokenState, account: int) -> frozenset[int]:
    """``σ_q(a)`` on a replica view (owner plus positive-allowance spenders;
    owner-only when the balance is not positive — Eq. 10's convention)."""
    owner = account
    if state.balances[account] <= 0:
        return frozenset({owner})
    members = {owner}
    for pid, allowance in enumerate(state.allowances[account]):
        if allowance > 0:
            members.add(pid)
    return frozenset(members)


def sync_levels(state: ReplicaTokenState) -> list[int]:
    """Group size per account."""
    return [
        len(sync_group(state, account))
        for account in range(len(state.balances))
    ]


@dataclass
class GroupSizeTracker:
    """Records the evolution of per-account group sizes over (virtual) time."""

    samples: list[tuple[float, list[int]]] = field(default_factory=list)

    def record(self, now: float, state: ReplicaTokenState) -> None:
        self.samples.append((now, sync_levels(state)))

    def max_level_seen(self) -> int:
        return max(
            (max(levels) for _, levels in self.samples),
            default=1,
        )

    def level_histogram(self) -> dict[int, int]:
        histogram: dict[int, int] = {}
        for _, levels in self.samples:
            for level in levels:
                histogram[level] = histogram.get(level, 0) + 1
        return histogram


def group_coordination_cost(group: Iterable[int]) -> int:
    """Messages of one group ordering round: a propose to and an ack from
    every member other than the coordinating owner."""
    members = set(group)
    return 2 * max(len(members) - 1, 0)
