"""repro.engine — commutativity-aware parallel execution for token workloads.

Turns the paper's trichotomy (commute / read-only / conflict, Theorem 3's
case analysis) into throughput: a mempool of pending token operations is
classified pairwise by a static footprint fast path
(:mod:`repro.objects.footprint`, validated against the semantic oracle of
:mod:`repro.analysis.commutativity`), a conflict graph picks out the
operations that can be reordered freely, a shard planner spreads them over
parallel lanes, and only genuinely conflicting operations are escalated to
the total-order broadcast of :mod:`repro.net.total_order`.

Pipeline::

    mempool -> classify -> shard -> execute -> escalate
    (intake)   (trichotomy) (lanes)  (parallel)  (consensus, conflicts only)

Quickstart::

    from repro.engine import BatchExecutor
    from repro.objects.erc20 import ERC20TokenType
    from repro.workloads import TokenWorkloadGenerator, OWNER_ONLY_MIX

    token = ERC20TokenType(16, total_supply=1600)
    engine = BatchExecutor(token, num_lanes=4, window=64)
    items = TokenWorkloadGenerator(16, seed=7, mix=OWNER_ONLY_MIX).generate(512)
    state, responses, stats = engine.run_workload(items)
    print(f"{stats.speedup:.2f}x over serial, "
          f"{stats.escalation_rate:.1%} ops needed consensus")
"""

from repro.config import EngineConfig
from repro.engine.classifier import (
    ClassifierStats,
    ClassifierValidationError,
    OpClassifier,
)
from repro.engine.conflict_graph import ComponentDAG, ConflictGraph
from repro.engine.escalation import (
    ConsensusEscalator,
    EscalationResult,
    tiered_escalator,
)
from repro.engine.executor import BatchExecutor
from repro.engine.mempool import Mempool, PendingOp
from repro.engine.pipeline import PipelinedExecutor, ScheduledUnit
from repro.engine.rounds import (
    Round,
    RoundLifecycle,
    RoundScheduler,
    RoundStage,
)
from repro.engine.shard import (
    ShardPlan,
    ShardPlanner,
    dag_list_schedule,
    stable_account_hash,
)
from repro.engine.stats import EngineStats, WaveStats

__all__ = [
    "EngineConfig",
    "ClassifierStats",
    "ClassifierValidationError",
    "OpClassifier",
    "ComponentDAG",
    "ConflictGraph",
    "dag_list_schedule",
    "ConsensusEscalator",
    "EscalationResult",
    "tiered_escalator",
    "BatchExecutor",
    "Mempool",
    "PendingOp",
    "PipelinedExecutor",
    "ScheduledUnit",
    "Round",
    "RoundLifecycle",
    "RoundScheduler",
    "RoundStage",
    "ShardPlan",
    "ShardPlanner",
    "stable_account_hash",
    "EngineStats",
    "WaveStats",
]
