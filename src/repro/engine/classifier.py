"""Pair classification for the engine: static fast path + semantic oracle.

The engine must answer "can these two pending operations be reordered?"
for every pair in a mempool window, every round.  The semantic oracle
(:func:`repro.analysis.commutativity.analyze_pair`) answers exactly but
state-dependently; a state-dependent COMMUTE is *not* a licence to reorder
inside a batch whose intermediate states differ from the analyzed one.  The
:class:`OpClassifier` therefore schedules off the *static* footprint
analysis (:mod:`repro.objects.footprint`), whose verdicts hold at every
state, and memoizes it keyed on the footprint pair — i.e. on operation type
plus touched accounts, not on values — so a window full of transfers
collapses to a handful of cache entries.

``validate=True`` cross-checks every static verdict against the semantic
oracle at the state the caller supplies, enforcing the soundness contract:

* static COMMUTE   ⇒ oracle COMMUTE;
* static READ_ONLY ⇒ oracle READ_ONLY or COMMUTE;
* static CONFLICT  ⇒ anything (the conservative fallback) — but the
  classifier counts how often the oracle confirms a genuine conflict, the
  *precision* statistic the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.commutativity import (
    CachedPairAnalyzer,
    Invocation,
    PairKind,
)
from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.objects.footprint import OpFootprint, static_pair_kind
from repro.spec.object_type import SequentialObjectType


class ClassifierValidationError(EngineError):
    """The static fast path claimed more than the semantic oracle grants."""


@dataclass
class ClassifierStats:
    """Counters for one classifier instance."""

    pairs: int = 0
    static_pairs: int = 0
    fallback_pairs: int = 0
    footprint_cache_hits: int = 0
    pair_cache_hits: int = 0
    validated: int = 0
    #: Static-CONFLICT pairs the oracle confirmed as CONFLICT at the
    #: validation state (precision numerator; denominator below).
    confirmed_conflicts: int = 0
    checked_conflicts: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: PairKind) -> None:
        self.pairs += 1
        self.by_kind[kind.value] = self.by_kind.get(kind.value, 0) + 1

    @property
    def conflict_precision(self) -> float:
        """Fraction of validated static conflicts that were real conflicts."""
        if not self.checked_conflicts:
            return 1.0
        return self.confirmed_conflicts / self.checked_conflicts

    def as_dict(self) -> dict:
        return {
            "pairs": self.pairs,
            "static_pairs": self.static_pairs,
            "fallback_pairs": self.fallback_pairs,
            "footprint_cache_hits": self.footprint_cache_hits,
            "pair_cache_hits": self.pair_cache_hits,
            "validated": self.validated,
            "conflict_precision": self.conflict_precision,
            "by_kind": dict(self.by_kind),
        }


class OpClassifier:
    """Memoized pair classification against one sequential object type."""

    def __init__(
        self,
        object_type: SequentialObjectType,
        validate: bool = False,
        strict_validation: bool = True,
    ) -> None:
        self.object_type = object_type
        self.validate = validate
        self.strict_validation = strict_validation
        self.oracle = CachedPairAnalyzer(object_type)
        self.stats = ClassifierStats()
        self._footprints: dict[tuple[int, object], OpFootprint | None] = {}
        self._pair_kinds: dict[
            tuple[OpFootprint | None, OpFootprint | None], PairKind
        ] = {}
        self.mismatches: list[str] = []
        self._validation_state = None

    # ------------------------------------------------------------------

    def footprint(self, op: PendingOp) -> OpFootprint | None:
        """The (memoized) static footprint of one pending operation."""
        key = (op.pid, op.operation)
        if key in self._footprints:
            self.stats.footprint_cache_hits += 1
            return self._footprints[key]
        fp = self.object_type.footprint(op.pid, op.operation)
        self._footprints[key] = fp
        return fp

    def classify(
        self, first: PendingOp, second: PendingOp, state=None
    ) -> PairKind:
        """Classify an (unordered) pair of pending operations.

        The verdict is state-independent: COMMUTE and READ_ONLY hold at
        every state, CONFLICT is conservative.  When ``validate`` is on and
        ``state`` is given, the verdict is cross-checked against the
        semantic oracle at that state.
        """
        fp1, fp2 = self.footprint(first), self.footprint(second)
        pair = (fp1, fp2)
        kind = self._pair_kinds.get(pair)
        if kind is None:
            if fp1 is None or fp2 is None:
                self.stats.fallback_pairs += 1
            else:
                self.stats.static_pairs += 1
            kind = PairKind(static_pair_kind(fp1, fp2))
            self._pair_kinds[pair] = kind
        else:
            self.stats.pair_cache_hits += 1
        self.stats.record(kind)
        if self.validate and state is not None:
            self._check_against_oracle(kind, first, second, state)
        return kind

    def needs_consensus(self, first: PendingOp, second: PendingOp) -> bool:
        """True when ordering this pair requires total order (consensus).

        A conflicting pair of *distinct* processes needs consensus exactly
        when the two footprints contend on a shared location (see
        ``OpFootprint.contended``) — the engine-level image of the paper's
        synchronization groups.  Conflicts without contention (a blind
        credit enabling a guarded spend) only need an order, which the
        barrier provides for free.  Unknown footprints are conservative.
        """
        if first.pid == second.pid:
            return False  # program order of one process needs no consensus
        fp1, fp2 = self.footprint(first), self.footprint(second)
        if fp1 is None or fp2 is None:
            return True
        return bool(fp1.contended & fp2.contended)

    def classify_window(
        self, window: list[PendingOp], state=None
    ) -> dict[tuple[int, int], PairKind]:
        """All pairwise kinds over a window (``i < j`` indices)."""
        kinds: dict[tuple[int, int], PairKind] = {}
        for i in range(len(window)):
            for j in range(i + 1, len(window)):
                kinds[(i, j)] = self.classify(window[i], window[j], state)
        return kinds

    # ------------------------------------------------------------------

    def _check_against_oracle(
        self, kind: PairKind, first: PendingOp, second: PendingOp, state
    ) -> None:
        if state != self._validation_state:
            # The oracle memoizes on the full state; entries for previous
            # window states are dead weight (a long engine run visits a
            # fresh state every round), so keep only the current window's.
            self.oracle.clear()
            self._validation_state = state
        semantic = self.oracle.kind(
            state,
            Invocation(first.pid, first.operation),
            Invocation(second.pid, second.operation),
        )
        self.stats.validated += 1
        ok = True
        if kind is PairKind.COMMUTE:
            ok = semantic is PairKind.COMMUTE
        elif kind is PairKind.READ_ONLY:
            ok = semantic in (PairKind.READ_ONLY, PairKind.COMMUTE)
        else:
            self.stats.checked_conflicts += 1
            if semantic is PairKind.CONFLICT:
                self.stats.confirmed_conflicts += 1
        if not ok:
            message = (
                f"static fast path claims {kind.value} but the semantic "
                f"oracle says {semantic.value} for {first} / {second}"
            )
            self.mismatches.append(message)
            if self.strict_validation:
                raise ClassifierValidationError(message)
