"""Conflict graph over a mempool window.

Nodes are pending operations; an edge carries the pair's classification
whenever the pair is *not* statically commuting.  The scheduler reads the
graph to form waves (edge-free sets can run lane-parallel), the stats layer
reads it for conflict-rate reporting, and ``components()`` exposes the
synchronization groups — the engine-level analogue of the paper's per-
account coordination groups: only operations inside one component ever need
an order relative to each other.

The paper's result is per-*pair*: only non-commuting operation pairs need
a relative order.  A component is therefore not a chain but a *partial*
order — :class:`ComponentDAG` materializes it by orienting every
non-commute edge by submission order (COMMUTE pairs inside the component
carry no edge at all).  Any linear extension of that DAG is serially
equivalent to submission order: two ops without a path between them have
no edge, hence statically commute, and adjacent-transposing commuting
pairs transforms one extension into any other.  The DAG's critical path
and antichain width are exactly the component's intrinsic makespan lower
bound and its exploitable parallelism — the quantities op-granular
scheduling (``dag_scheduling=True`` on the planner) trades on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.commutativity import PairKind
from repro.engine.classifier import OpClassifier
from repro.engine.mempool import PendingOp


@dataclass(frozen=True, slots=True)
class ComponentDAG:
    """Precedence DAG of one multi-op conflict-graph component.

    ``nodes`` are window indices in ascending (= submission) order;
    ``preds``/``succs`` map each node to its direct non-commute
    predecessors/successors, every edge oriented from the earlier
    submission to the later one.  All derived quantities are in operation
    units (unit op cost); the scheduler scales by ``op_cost`` itself.
    """

    nodes: tuple[int, ...]
    preds: dict[int, tuple[int, ...]]
    succs: dict[int, tuple[int, ...]]

    @classmethod
    def over(cls, component: list[int], edges) -> "ComponentDAG":
        """Build the DAG for ``component`` from a window's edge dict."""
        members = set(component)
        preds: dict[int, list[int]] = {i: [] for i in component}
        succs: dict[int, list[int]] = {i: [] for i in component}
        for a, b in edges:
            if a in members and b in members:
                # Edge keys are (i, j) with i < j — already submission-
                # oriented; COMMUTE pairs were never stored.
                preds[b].append(a)
                succs[a].append(b)
        return cls(
            nodes=tuple(sorted(component)),
            preds={i: tuple(sorted(found)) for i, found in preds.items()},
            succs={i: tuple(sorted(found)) for i, found in succs.items()},
        )

    # ------------------------------------------------------------------

    def depths(self) -> dict[int, int]:
        """Longest-path depth from the component's sources (sources = 0).

        Submission order is a topological order (edges point from lower to
        higher index), so one ascending pass suffices.
        """
        depth: dict[int, int] = {}
        for i in self.nodes:
            depth[i] = 1 + max((depth[p] for p in self.preds[i]), default=-1)
        return depth

    def bottom_levels(self) -> dict[int, int]:
        """Longest path from each node to a sink, the node included — the
        critical-path-first priority of the list scheduler."""
        level: dict[int, int] = {}
        for i in reversed(self.nodes):
            level[i] = 1 + max((level[s] for s in self.succs[i]), default=0)
        return level

    def levels(self) -> list[list[int]]:
        """Antichain waves: nodes grouped by longest-path depth.

        Same-depth nodes admit no path between them (a path strictly
        increases depth), so each level is an antichain — ops free to run
        lane-parallel once the previous waves committed.
        """
        depth = self.depths()
        waves: list[list[int]] = [
            [] for _ in range(max(depth.values(), default=-1) + 1)
        ]
        for i in self.nodes:
            waves[depth[i]].append(i)
        return waves

    @property
    def critical_path(self) -> int:
        """Longest chain of non-commuting ops — the component's makespan
        lower bound in operation units (``len(nodes)`` when the component
        is a total order, less when the conflict structure admits width)."""
        return max(self.depths().values(), default=-1) + 1

    @property
    def width(self) -> int:
        """Largest antichain wave — the intra-component parallelism an
        op-granular schedule can exploit (1 = effectively a chain)."""
        return max((len(wave) for wave in self.levels()), default=0)

    @property
    def size(self) -> int:
        return len(self.nodes)


@dataclass
class ConflictGraph:
    """Pairwise non-commute structure of one window (indices into ``ops``)."""

    ops: list[PendingOp]
    #: ``(i, j) -> kind`` with ``i < j``; only non-COMMUTE pairs are stored.
    edges: dict[tuple[int, int], PairKind] = field(default_factory=dict)

    @classmethod
    def build(
        cls, classifier: OpClassifier, ops: list[PendingOp], state=None
    ) -> "ConflictGraph":
        graph = cls(ops=list(ops))
        for pair, kind in classifier.classify_window(list(ops), state).items():
            if kind is not PairKind.COMMUTE:
                graph.edges[pair] = kind
        return graph

    # ------------------------------------------------------------------

    def kind(self, i: int, j: int) -> PairKind:
        if i == j:
            raise ValueError("no self-edges in a conflict graph")
        key = (i, j) if i < j else (j, i)
        return self.edges.get(key, PairKind.COMMUTE)

    def neighbors(self, i: int) -> list[int]:
        """Indices adjacent to ``i`` through any non-commute edge."""
        found = []
        for a, b in self.edges:
            if a == i:
                found.append(b)
            elif b == i:
                found.append(a)
        return sorted(found)

    def degree(self, i: int) -> int:
        return len(self.neighbors(i))

    @property
    def conflict_edges(self) -> int:
        return sum(
            1 for kind in self.edges.values() if kind is PairKind.CONFLICT
        )

    @property
    def read_only_edges(self) -> int:
        return sum(
            1 for kind in self.edges.values() if kind is PairKind.READ_ONLY
        )

    @property
    def commute_pairs(self) -> int:
        n = len(self.ops)
        return n * (n - 1) // 2 - len(self.edges)

    def conflict_rate(self) -> float:
        """CONFLICT edges as a fraction of all pairs in the window."""
        n = len(self.ops)
        total = n * (n - 1) // 2
        return self.conflict_edges / total if total else 0.0

    def components(self) -> list[list[int]]:
        """Connected components over non-commute edges (sorted indices).

        Singleton components are operations free to run in any lane; larger
        components are the window's synchronization groups.
        """
        parent = list(range(len(self.ops)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, list[int]] = {}
        for i in range(len(self.ops)):
            groups.setdefault(find(i), []).append(i)
        return [sorted(members) for _, members in sorted(groups.items())]

    def component_dags(self) -> list[ComponentDAG]:
        """Precedence DAGs of the multi-op components, in component order.

        Aligned with the chains produced by
        :meth:`repro.engine.rounds.RoundScheduler.split` (which keeps the
        multi-op components of :meth:`components` in the same order), so
        ``dags[k].nodes == tuple(chains[k])`` — the planner relies on that
        positional correspondence.  Edges are bucketed per component in
        one pass (every edge belongs to exactly one component), so a
        window costs O(V + E), not O(components × E).
        """
        multi = [c for c in self.components() if len(c) > 1]
        owner = {i: k for k, component in enumerate(multi) for i in component}
        buckets: list[dict] = [{} for _ in multi]
        for (a, b), kind in self.edges.items():
            buckets[owner[a]][(a, b)] = kind
        return [
            ComponentDAG.over(component, bucket)
            for component, bucket in zip(multi, buckets)
        ]
