"""Conflict graph over a mempool window.

Nodes are pending operations; an edge carries the pair's classification
whenever the pair is *not* statically commuting.  The scheduler reads the
graph to form waves (edge-free sets can run lane-parallel), the stats layer
reads it for conflict-rate reporting, and ``components()`` exposes the
synchronization groups — the engine-level analogue of the paper's per-
account coordination groups: only operations inside one component ever need
an order relative to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.commutativity import PairKind
from repro.engine.classifier import OpClassifier
from repro.engine.mempool import PendingOp


@dataclass
class ConflictGraph:
    """Pairwise non-commute structure of one window (indices into ``ops``)."""

    ops: list[PendingOp]
    #: ``(i, j) -> kind`` with ``i < j``; only non-COMMUTE pairs are stored.
    edges: dict[tuple[int, int], PairKind] = field(default_factory=dict)

    @classmethod
    def build(
        cls, classifier: OpClassifier, ops: list[PendingOp], state=None
    ) -> "ConflictGraph":
        graph = cls(ops=list(ops))
        for pair, kind in classifier.classify_window(list(ops), state).items():
            if kind is not PairKind.COMMUTE:
                graph.edges[pair] = kind
        return graph

    # ------------------------------------------------------------------

    def kind(self, i: int, j: int) -> PairKind:
        if i == j:
            raise ValueError("no self-edges in a conflict graph")
        key = (i, j) if i < j else (j, i)
        return self.edges.get(key, PairKind.COMMUTE)

    def neighbors(self, i: int) -> list[int]:
        """Indices adjacent to ``i`` through any non-commute edge."""
        found = []
        for a, b in self.edges:
            if a == i:
                found.append(b)
            elif b == i:
                found.append(a)
        return sorted(found)

    def degree(self, i: int) -> int:
        return len(self.neighbors(i))

    @property
    def conflict_edges(self) -> int:
        return sum(1 for kind in self.edges.values() if kind is PairKind.CONFLICT)

    @property
    def read_only_edges(self) -> int:
        return sum(1 for kind in self.edges.values() if kind is PairKind.READ_ONLY)

    @property
    def commute_pairs(self) -> int:
        n = len(self.ops)
        return n * (n - 1) // 2 - len(self.edges)

    def conflict_rate(self) -> float:
        """CONFLICT edges as a fraction of all pairs in the window."""
        n = len(self.ops)
        total = n * (n - 1) // 2
        return self.conflict_edges / total if total else 0.0

    def components(self) -> list[list[int]]:
        """Connected components over non-commute edges (sorted indices).

        Singleton components are operations free to run in any lane; larger
        components are the window's synchronization groups.
        """
        parent = list(range(len(self.ops)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, list[int]] = {}
        for i in range(len(self.ops)):
            groups.setdefault(find(i), []).append(i)
        return [sorted(members) for _, members in sorted(groups.items())]
