"""Escalation: pay for total order only where the theory demands it.

Conflicting pairs — the only pairs that can be decision steps (Theorem 3)
— are exactly the operations the engine cannot reorder or parallelize.
They are handed to the existing leader-based total-order broadcast
(:mod:`repro.net.total_order`) running on the virtual-time simulator: a
replica cluster sequences the batch, and the engine charges the consensus
latency and the full ``O(n²)`` message bill to its virtual clock.  The
contrast *is* the paper's argument: commuting traffic costs lane-parallel
operation units, conflicting traffic costs three quorum phases.

Since the tiered synchronization lanes landed (:mod:`repro.sync`), the
executor no longer calls :class:`ConsensusEscalator` unconditionally: a
:class:`~repro.sync.planner.SyncPlanner` first sizes each contended
component's spender bound, routes components within ``team_threshold`` to
k-participant team lanes, and keeps this global lane as the Tier ∞
fallback.  :func:`tiered_escalator` builds that wiring; with the default
``team_threshold = 0`` it degenerates to the historical always-global
behavior, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.net.network import LatencyModel, Network, UniformLatency
from repro.net.simulation import Simulator
from repro.net.total_order import TotalOrderNode
from repro.sync.escalation import TieredEscalator
from repro.sync.planner import SyncPlanner


@dataclass(frozen=True, slots=True)
class EscalationResult:
    """Outcome of ordering one batch of conflicting operations."""

    ordered: list[PendingOp]
    virtual_time: float
    messages: int


class ConsensusEscalator:
    """Orders conflicting operations through a total-order replica cluster.

    The cluster lives on its own :class:`Simulator`; its clock is cumulative
    across batches, so repeated escalations keep advancing the same virtual
    timeline (the engine adds the per-batch delta to its own clock).
    """

    def __init__(
        self,
        num_replicas: int = 4,
        seed: int = 0,
        latency: LatencyModel | None = None,
        max_batch: int = 64,
    ) -> None:
        if num_replicas < 4:
            raise EngineError("total order needs n >= 3f+1 with f >= 1: use >= 4")
        self.simulator = Simulator()
        self.network = Network(
            self.simulator,
            latency if latency is not None else UniformLatency(0.5, 1.5),
            seed=seed,
        )
        self._delivered: list[PendingOp] = []
        self.nodes = [
            TotalOrderNode(
                node_id,
                self.network,
                num_replicas,
                deliver=self._on_deliver if node_id == 0 else None,
                max_batch=max_batch,
            )
            for node_id in range(num_replicas)
        ]
        self.batches = 0
        self.total_messages = 0

    # ------------------------------------------------------------------

    def _on_deliver(self, sequence: int, txs: list) -> None:
        self._delivered.extend(txs)

    def order(self, ops: list[PendingOp]) -> EscalationResult:
        """Run the cluster until every submitted operation is delivered."""
        if not ops:
            return EscalationResult(ordered=[], virtual_time=0.0, messages=0)
        started = self.simulator.now
        sent_before = self.network.stats.messages_sent
        self._delivered = []
        leader = self.nodes[0]
        # Submissions originate at the leader so arrival order (and hence
        # the committed order) is the engine's submission order — the merge
        # the serial-equivalence contract requires.
        for op in ops:
            leader.submit(op)
        self.simulator.run()
        if len(self._delivered) != len(ops):
            raise EngineError(
                f"escalation lost operations: sent {len(ops)}, "
                f"delivered {len(self._delivered)}"
            )
        messages = self.network.stats.messages_sent - sent_before
        self.batches += 1
        self.total_messages += messages
        return EscalationResult(
            ordered=list(self._delivered),
            virtual_time=self.simulator.now - started,
            messages=messages,
        )


def tiered_escalator(
    escalator: ConsensusEscalator | None = None,
    team_threshold: int = 0,
    latency: LatencyModel | None = None,
    seed: int = 0,
    max_batch: int = 64,
    lane_ttl: int | None = None,
    split_sync: bool = False,
) -> TieredEscalator:
    """Wire a :class:`ConsensusEscalator` into the tiered sync layer.

    The returned :class:`~repro.sync.escalation.TieredEscalator` keeps
    this module's global lane as its Tier ∞ fallback and provisions
    k-participant team lanes for contended components whose spender bound
    is at most ``team_threshold`` (``0`` = always-global, the historical
    behavior).  ``lane_ttl`` garbage-collects team lanes idle for that
    many sync rounds (``None`` keeps them forever), so long runs over
    shifting approval patterns do not accumulate one live replica group
    per distinct team.  ``split_sync`` partitions each contended
    component into per-account synchronization groups before tiering
    (:meth:`~repro.sync.planner.SyncPlanner.split_groups`).
    """
    return TieredEscalator(
        escalator
        if escalator is not None
        else ConsensusEscalator(
            seed=seed, latency=latency, max_batch=max_batch
        ),
        planner=SyncPlanner(team_threshold, split_sync=split_sync),
        latency=latency,
        seed=seed,
        max_batch=max_batch,
        lane_ttl=lane_ttl,
    )
