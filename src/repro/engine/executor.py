"""The sharded batch executor: commute in parallel, order only conflicts.

Execution proceeds in rounds.  Each round pops a window from the mempool,
builds the conflict graph under *static* (state-independent)
classification — so reordering is sound at every intermediate state — and
schedules its connected components:

* **singletons** — operations commuting with the entire window; they run
  in any lane (the engine's fast path).
* **chains** — multi-operation components.  Operations in different
  components statically commute and run in parallel; within a component
  only the submission order is known-safe, so the component executes as
  an ordered chain on a single lane.
* **escalated** — chain members on a cross-process CONFLICT edge with
  *contention* (two enabled spenders debiting one account, approve racing
  transferFrom on an allowance cell, one NFT): the only traffic that pays
  for an ordering lane.  Each contended component goes through the tiered
  sync layer (:mod:`repro.sync`): a component whose spender bound has size
  ``k ≤ team_threshold`` is ordered by a k-participant *team lane*
  (``O(k²)`` messages, concurrent with every other team), the rest merge
  into one batch on the global
  :class:`~repro.engine.escalation.ConsensusEscalator` lane.  The phase's
  makespan (global lane and team pool run concurrently) and message bill
  are charged to the engine clock.  With ``team_threshold = 0``
  (:meth:`repro.config.EngineConfig.legacy`) every contended component
  takes the global lane — the historical behavior, bit for bit.

A round costs the lane critical path (longest lane, in operation units)
plus the consensus latency of its escalations; conflict-free windows pay
no messages at all — the paper's consensus-number-1 regime executes
entirely on the fast path.

Serial-equivalence contract: the final state *and every response* are
identical to executing the whole workload sequentially in submission
order, for any lane count — operations are only ever reordered across
statically-commuting pairs.  The property tests in
``tests/engine/test_engine_properties.py`` machine-check this against the
sequential specification.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.config import UNSET, EngineConfig, _with_overrides
from repro.engine.classifier import OpClassifier
from repro.engine.escalation import ConsensusEscalator, tiered_escalator
from repro.engine.mempool import Mempool, PendingOp
from repro.engine.rounds import RoundLifecycle, RoundScheduler
from repro.engine.shard import ShardPlanner
from repro.engine.stats import EngineStats, WaveStats
from repro.obs.trace import TraceRecorder
from repro.spec.object_type import SequentialObjectType
from repro.sync.escalation import TieredEscalator
from repro.workloads.generators import WorkloadItem


class BatchExecutor:
    """Commutativity-aware parallel executor for one token object."""

    def __init__(
        self,
        object_type: SequentialObjectType,
        config: EngineConfig | None = None,
        *,
        num_lanes=UNSET,
        window=UNSET,
        op_cost=UNSET,
        classifier: OpClassifier | None = None,
        planner: ShardPlanner | None = None,
        escalator: ConsensusEscalator | None = None,
        validate=UNSET,
        seed=UNSET,
        mempool_capacity=UNSET,
        team_threshold=UNSET,
        sync: TieredEscalator | None = None,
        dag_scheduling=UNSET,
        lane_ttl=UNSET,
        split_sync=UNSET,
        tracer: TraceRecorder | None = None,
    ) -> None:
        #: The resolved run configuration: explicit kwargs override the
        #: ``config=`` value, which overrides :class:`EngineConfig`'s
        #: (fast-path) defaults.  ``EngineConfig.legacy()`` recovers the
        #: historical barrier engine bit for bit.
        self.config = cfg = _with_overrides(
            config if config is not None else EngineConfig(),
            dict(
                num_lanes=num_lanes,
                window=window,
                op_cost=op_cost,
                validate=validate,
                seed=seed,
                mempool_capacity=mempool_capacity,
                team_threshold=team_threshold,
                dag_scheduling=dag_scheduling,
                lane_ttl=lane_ttl,
                split_sync=split_sync,
            ),
        )
        self.object_type = object_type
        self.num_lanes = cfg.num_lanes
        self.window = cfg.window
        self.op_cost = cfg.op_cost
        self.classifier = (
            classifier
            if classifier is not None
            else OpClassifier(object_type, validate=cfg.validate)
        )
        #: ``dag_scheduling=True`` (the default) dissolves chain-atomic
        #: components into their precedence DAGs (op-granular scheduling);
        #: ``False`` is the historical chain-atomic behavior bit for bit.
        self.planner = (
            planner
            if planner is not None
            else ShardPlanner(
                cfg.num_lanes, dag_scheduling=cfg.dag_scheduling
            )
        )
        self.scheduler = RoundScheduler(self.classifier, self.planner)
        self.escalator = (
            escalator
            if escalator is not None
            else ConsensusEscalator(seed=cfg.seed)
        )
        #: The tiered sync layer; its Tier ∞ fallback is ``self.escalator``.
        #: ``team_threshold=0`` reproduces the historical always-global
        #: escalation exactly.
        self.sync = (
            sync
            if sync is not None
            else tiered_escalator(
                self.escalator,
                team_threshold=cfg.team_threshold,
                seed=cfg.seed,
                lane_ttl=cfg.lane_ttl,
                split_sync=cfg.split_sync,
            )
        )
        #: The shared round stage machine (drain → classify → sync → plan);
        #: the pipelined executor drives the same lifecycle, which is what
        #: keeps ``pipeline_depth=1`` bit-identical to this barrier path.
        self.lifecycle = RoundLifecycle(
            self.scheduler, self.sync, object_type, op_cost=cfg.op_cost
        )
        self.mempool = Mempool(capacity=cfg.mempool_capacity)
        self.state = object_type.initial_state()
        self.responses: dict[int, Any] = {}
        self.clock = 0.0
        self.stats = EngineStats(
            num_lanes=cfg.num_lanes, window=cfg.window, op_cost=cfg.op_cost
        )
        #: Optional observability hook (:mod:`repro.obs`).  ``None`` (the
        #: default) records nothing and changes nothing — the historical
        #: stats, state, and responses stay bit-identical, the same
        #: contract ``team_threshold=0`` and ``dag_scheduling=False`` keep.
        self.tracer = tracer
        if tracer is not None and getattr(self.sync, "pool", None) is not None:
            self.sync.pool.tracer = tracer

    # -- intake ----------------------------------------------------------

    def submit(
        self, pid: int, operation, arrival: float | None = None
    ) -> PendingOp:
        """Admit one operation.  ``arrival`` back-dates the traced
        ``submit`` lifecycle stage to the op's open-loop arrival time
        (it must not exceed the current admission time,
        :meth:`stream_now`), so traced latency reads commit − arrival;
        the default ``None`` stamps the current clock — the historical
        closed-loop behavior, bit for bit."""
        pending = self.mempool.submit(pid, operation)
        if self.tracer is not None:
            self.tracer.op_submit(
                pending.seq, self.clock if arrival is None else arrival
            )
        return pending

    def feed(self, items: Iterable[WorkloadItem]) -> list[PendingOp]:
        pending = self.mempool.feed(items)
        if self.tracer is not None:
            for op in pending:
                self.tracer.op_submit(op.seq, self.clock)
        return pending

    # -- open-loop harness -----------------------------------------------

    def stream_now(self) -> float:
        """The virtual time the next admitted operation is classified
        at — the open-loop driver (:class:`repro.workloads.arrivals.
        StreamDriver`) releases arrivals due by this instant."""
        return self.clock

    def stream_advance(self, ts: float) -> None:
        """Advance an *idle* engine's clock to ``ts`` (never backward):
        the driver models the quiet gap until the next arrival.  The
        subsequent round then starts at ``ts``, exactly as if the engine
        had been created then."""
        self.clock = max(self.clock, ts)

    # -- scheduling ------------------------------------------------------

    def step(self) -> WaveStats | None:
        """Execute one round; returns its stats, or ``None`` when drained.

        One full pass of the round stage machine (:mod:`repro.engine.
        rounds`): drain a window, classify it, synchronize the contended
        components (phase 1 — team lanes for small spender bounds, the
        global lane above the threshold; every lane commits in submission
        order, fixing the relative order of contended chain members before
        the lanes start), lay the window out on lanes, and apply it
        lane-major (phase 2 — a deterministic merge: any two operations
        applied out of submission order belong to different components and
        therefore statically commute).
        """
        self.stats.rejected_ops = self.mempool.rejected
        round_ = self.lifecycle.drain(
            self.mempool, self.window, self.stats.waves
        )
        if round_ is None:
            return None
        self.lifecycle.classify(round_, self.state)
        self.lifecycle.synchronize(round_, self.state)
        self.lifecycle.plan(round_)
        if round_.plan.apply_order is not None:
            # DAG plans carry an explicit linear extension of every
            # component DAG; lane-major application would be unsound once
            # one chain spans lanes.
            for op in round_.plan.apply_order:
                self._apply(op)
        else:
            for lane in round_.plan.lanes:
                for op in lane:
                    self._apply(op)
        round_stats = self.lifecycle.barrier_stats(round_)
        if self.tracer is not None:
            self._trace_barrier_round(round_, round_stats)
        self.clock += round_stats.virtual_time
        self.stats.record_round(round_stats)
        return round_stats

    def run(self) -> EngineStats:
        """Drain the mempool; returns the aggregate statistics."""
        while self.step() is not None:
            pass
        self.stats.rejected_ops = self.mempool.rejected
        return self.stats

    def run_workload(
        self, items: Iterable[WorkloadItem]
    ) -> tuple[Any, list[Any], EngineStats]:
        """Feed a workload, drain it, and return
        ``(final_state, responses, stats)`` — responses aligned with
        ``items`` (prior workloads on a reused engine are excluded).

        A bounded mempool paces the intake instead of rejecting: when the
        pool is full, rounds execute until there is room again, so a
        capacity-limited engine still processes workloads of any length.
        Direct ``submit`` against a full pool keeps its typed rejection.
        """
        pending = []
        for item in items:
            if self.mempool.capacity is not None:
                while len(self.mempool) >= self.mempool.capacity:
                    self.step()
            pending.append(self.submit(item.pid, item.operation))
        self.run()
        return (
            self.state,
            [self.responses[p.seq] for p in pending],
            self.stats,
        )

    # -- internals -------------------------------------------------------

    def _trace_sync_phase(self, round_, sync_start: float) -> None:
        """Record the round's sync phase: one informational span per
        contended component on its lane's track, plus the per-op ``sync``
        lifecycle stage at the component's commit time."""
        tracer = self.tracer
        assert tracer is not None
        escalation = round_.escalation
        for group, component in zip(
            round_.contended_groups, escalation.components
        ):
            if component.team is None:
                track = "sync.global"
            else:
                members = "-".join(str(p) for p in sorted(component.team))
                track = f"sync.team {members}"
            tracer.span(
                track,
                f"order r{round_.index}",
                "sync_wait",
                sync_start,
                sync_start + component.completed,
                chain=False,
                args={"ops": len(group), "round": round_.index},
            )
            for i in group:
                tracer.op_stage(
                    round_.ops[i].seq,
                    "sync",
                    sync_start + component.completed,
                )

    def _trace_barrier_round(self, round_, round_stats: WaveStats) -> None:
        """Record one committed barrier round: sync phase first, then the
        lane layout, starts composed exactly as the clock accounting does
        (``virtual_time = critical_path * op_cost + escalation``), so the
        last span ends at the post-round clock and the attribution walk
        re-derives the makespan without slack."""
        tracer = self.tracer
        assert tracer is not None
        t0 = self.clock
        escalation_time = round_.escalation.virtual_time
        t_end = t0 + round_stats.virtual_time
        tracer.instant(
            "engine",
            f"round {round_.index} classified",
            t0,
            args={"window": len(round_.ops)},
        )
        for op in round_.ops:
            tracer.op_stage(op.seq, "classify", t0)
        if round_.escalation.components:
            self._trace_sync_phase(round_, t0)
            tracer.instant(
                "engine",
                f"round {round_.index} synced",
                t0 + escalation_time,
            )
        # The whole execution phase waits out the sync phase, so the
        # first op on every lane carries the wait (the walk crosses it
        # once, on whichever lane it descends).
        stalls = (
            (("sync_wait", escalation_time),) if escalation_time > 0 else ()
        )
        exec_start = t0 + escalation_time
        plan = round_.plan
        if plan.placements is not None:
            placed = [
                (op, start, finish, lane)
                for op, (start, finish, lane) in zip(
                    plan.apply_order, plan.placements
                )
            ]
        else:
            placed = [
                (op, j, j + 1, lane_id)
                for lane_id, lane_ops in enumerate(plan.lanes)
                for j, op in enumerate(lane_ops)
            ]
        for op, start, finish, lane in placed:
            start_vt = exec_start + start * self.op_cost
            tracer.span(
                f"lane{lane}",
                f"op {op.seq}",
                "execute",
                start_vt,
                exec_start + finish * self.op_cost,
                stalls=stalls if start == 0 else (),
                args={"seq": op.seq, "pid": op.pid, "round": round_.index},
            )
            tracer.op_stage(op.seq, "schedule", start_vt)
            tracer.op_stage(op.seq, "execute", start_vt)
        for op in round_.ops:
            tracer.op_commit(op.seq, t_end)
        tracer.instant("engine", f"round {round_.index} committed", t_end)

    def _apply(self, op: PendingOp) -> None:
        self.state, response = self.object_type.apply(
            self.state, op.pid, op.operation
        )
        self.responses[op.seq] = response

    def responses_in_order(self) -> list[Any]:
        """Responses of all executed operations, in submission order."""
        return [self.responses[seq] for seq in sorted(self.responses)]
