"""Mempool: admission-ordered queue of pending token operations.

The engine's client-facing edge.  Operations arrive (typically from a
:mod:`repro.workloads` generator) and are stamped with a monotonically
increasing sequence number — the *submission order* that defines the
engine's serial-equivalence contract: the final state and every response
are identical to executing the whole workload sequentially in submission
order (see :mod:`repro.engine.executor`).

A mempool may be *bounded* (``capacity``): submissions beyond the bound
raise :class:`~repro.errors.MempoolFullError` and are counted in
``rejected``.  Backpressure is the admission-control knob of the cluster
router (:mod:`repro.cluster`), which sheds load instead of queueing
without limit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidArgumentError, MempoolFullError
from repro.spec.operation import Operation
from repro.workloads.generators import WorkloadItem


@dataclass(frozen=True, slots=True)
class PendingOp:
    """One submitted operation awaiting execution."""

    seq: int
    pid: int
    operation: Operation

    def __str__(self) -> str:
        return f"#{self.seq} p{self.pid}.{self.operation}"

    # ``repr`` doubles as the total-order digest for escalated operations,
    # so keep it stable and compact.
    def __repr__(self) -> str:
        return f"op({self.seq},{self.pid},{self.operation})"


class Mempool:
    """FIFO of :class:`PendingOp` with submission-order sequence stamps."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise InvalidArgumentError("mempool capacity must be positive")
        self.capacity = capacity
        self._queue: deque[PendingOp] = deque()
        self._next_seq = 0
        self.submitted = 0
        self.rejected = 0

    def submit(self, pid: int, operation: Operation) -> PendingOp:
        """Admit one operation; returns its stamped record.

        Raises :class:`MempoolFullError` (and counts the drop) when a
        bounded mempool is at capacity.
        """
        if not isinstance(operation, Operation):
            raise InvalidArgumentError("mempool accepts Operation instances")
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.rejected += 1
            raise MempoolFullError(
                f"mempool at capacity {self.capacity}; operation rejected"
            )
        pending = PendingOp(self._next_seq, pid, operation)
        self._next_seq += 1
        self.submitted += 1
        self._queue.append(pending)
        return pending

    def feed(self, items: Iterable[WorkloadItem]) -> list[PendingOp]:
        """Admit a workload (e.g. ``TokenWorkloadGenerator.generate(n)``)."""
        return [self.submit(item.pid, item.operation) for item in items]

    def pop_window(self, limit: int) -> list[PendingOp]:
        """Remove and return up to ``limit`` oldest pending operations."""
        if limit < 1:
            raise InvalidArgumentError("window must be positive")
        window = []
        while self._queue and len(window) < limit:
            window.append(self._queue.popleft())
        return window

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def peek(self) -> PendingOp | None:
        return self._queue[0] if self._queue else None
