"""Cross-round pipelined execution: no global barrier between windows.

The barrier executor (:class:`~repro.engine.executor.BatchExecutor`) pays
a *global round barrier*: window N+1's classification waits until every
lane — and, in the cluster, every node — has finished window N, so one
slow chain or one consensus round stalls traffic that provably commutes
with it.  :class:`PipelinedExecutor` removes the barrier and replaces it
with the weakest dependency the serial-equivalence contract needs:

**Frontier rule.**  An operation of window N+1 may start executing as
soon as every window-N (or earlier) component *touching its footprint*
has committed.  Operations with disjoint footprints statically commute
(:func:`repro.objects.footprint.static_pair_kind`), so running them in
overlapped windows reorders only commuting pairs; operations with
overlapping footprints are forced to start after their predecessors
finish, which preserves submission order between them.  Unknown
footprints degrade soundly: such a unit waits for *everything* earlier
and gates everything later.

Mechanically the executor keeps a per-location **frontier** — the virtual
time at which the last scheduled unit touching that location finishes —
plus per-lane free times, and schedules each window's units greedily onto
the earliest free lane at ``max(classify time, frontier of its footprint,
its sync lane's completion)``.  Window N+1 is classified (conflict graph,
tiered synchronization) as soon as the pipeline has a free slot — i.e.
while window N's lanes are still executing — and the shared
synchronization lanes serialize across windows (they are one physical
resource) but overlap with lane execution, which is where most of the win
on contended mixes comes from.

What a *unit* is depends on the scheduling granularity:

* **chain-atomic** (the default): chains are atomic units, singletons
  single-op units.  Units place with the barrier planner's heuristics
  ported onto the timeline — chains longest-first (LPT), singletons
  bundled by primary account with oversized bundles split across the
  earliest-free lanes (hot-account splitting) — closing the owner-only
  gap the greedy head-order placement left against the barrier planner.
* **op-granular** (``dag_scheduling=True``): every operation is its own
  unit.  Within a component, the precedence DAG
  (:class:`~repro.engine.conflict_graph.ComponentDAG`) supplies the
  intra-window dependencies and a critical-path-first priority; the
  frontier then keys on per-*op* footprints, so an op of window N+1
  starts behind only the specific earlier ops it touches — not behind
  the union footprint of every chain those ops belong to.

``pipeline_depth`` bounds how many windows may be in flight at once.
``pipeline_depth=1`` *is* the barrier: the executor inherits
:class:`BatchExecutor`'s round loop unchanged, so the historical behavior
— state, responses, clock, and stats — is reproduced bit for bit
(property-tested in ``tests/engine/test_pipeline.py``).

State application happens at commit time in ascending unit start time
(ties broken by submission order).  That order is serially equivalent to
submission order: two units applied out of submission order either share
no location (they statically commute) or the frontier rule forced the
later one to start after the earlier one finished, in which case the sort
never swaps them.  The property suite machine-checks this against the
sequential specification for random workloads, depths, and lane counts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.config import UNSET, EngineConfig, _with_overrides
from repro.engine.executor import BatchExecutor
from repro.engine.mempool import PendingOp
from repro.engine.stats import EngineStats, WaveStats
from repro.errors import EngineError
from repro.objects.footprint import FootprintSummary


@dataclass(frozen=True, slots=True)
class ScheduledUnit:
    """One atomic execution unit (a chain or a singleton) on the timeline."""

    start: float
    finish: float
    lane: int
    first_seq: int
    ops: tuple[PendingOp, ...]
    contended: bool
    #: Stall attributed to this unit: time spent waiting on its sync lane
    #: and on cross-round frontier dependencies beyond what admission and
    #: lane availability already imposed.
    sync_stall: float
    frontier_stall: float


class PipelinedExecutor(BatchExecutor):
    """Cross-round pipelined executor for one token object.

    Drop-in replacement for :class:`BatchExecutor` (same constructor
    arguments plus ``pipeline_depth``).  ``run()`` / ``run_workload()``
    are the intended API; ``step()`` schedules one window onto the
    pipeline timeline, and state/responses materialize at commit (the end
    of ``run()``) — the engine's virtual clock then reads the pipelined
    *makespan*, not the sum of per-round times.
    """

    def __init__(
        self,
        object_type,
        config: EngineConfig | None = None,
        *,
        pipeline_depth=UNSET,
        num_lanes=UNSET,
        window=UNSET,
        op_cost=UNSET,
        classifier=None,
        planner=None,
        escalator=None,
        validate=UNSET,
        seed=UNSET,
        mempool_capacity=UNSET,
        team_threshold=UNSET,
        sync=None,
        dag_scheduling=UNSET,
        lane_ttl=UNSET,
        split_sync=UNSET,
        tracer=None,
    ) -> None:
        # The full config surface, spelled out: a mistyped knob raises a
        # TypeError here instead of vanishing into a ``**kwargs`` sink.
        cfg = _with_overrides(
            config if config is not None else EngineConfig(),
            dict(
                pipeline_depth=pipeline_depth,
                num_lanes=num_lanes,
                window=window,
                op_cost=op_cost,
                validate=validate,
                seed=seed,
                mempool_capacity=mempool_capacity,
                team_threshold=team_threshold,
                dag_scheduling=dag_scheduling,
                lane_ttl=lane_ttl,
                split_sync=split_sync,
            ),
        )
        super().__init__(
            object_type,
            cfg,
            classifier=classifier,
            planner=planner,
            escalator=escalator,
            sync=sync,
            tracer=tracer,
        )
        self.pipeline_depth = cfg.pipeline_depth
        self.stats.pipeline_depth = cfg.pipeline_depth
        #: Earliest free time per lane (the pipeline never resets these —
        #: lanes flow from one window into the next).
        self._lane_free = [0.0] * self.num_lanes
        #: Per-location frontier, split by access kind so that the
        #: dependency test is *exactly* the static commutativity test
        #: (:func:`repro.objects.footprint.static_pair_kind`): reads gate
        #: on earlier writes, writes gate on earlier reads, absolute
        #: writes gate on everything — but read-read and delta-delta
        #: (credit-credit) sharing stays dependency-free, which is what
        #: lets disjoint-owner traffic run ahead across windows.
        self._frontier_obs: dict[tuple, float] = {}
        self._frontier_add: dict[tuple, float] = {}
        self._frontier_set: dict[tuple, float] = {}
        #: Finish high-water marks: of unknown-footprint units (which gate
        #: everything after them) and of all units (which gate unknown ones).
        self._frontier_top = 0.0
        self._frontier_max = 0.0
        #: Completion time of each drained window, in window order.
        self._completions: list[float] = []
        self._classify_clock = 0.0
        #: The shared sync lanes are one physical resource: their phases
        #: serialize across windows (but overlap lane execution).
        self._sync_free = 0.0
        #: Units scheduled but not yet applied (committed at end of run).
        self._pending_units: list[ScheduledUnit] = []
        #: The serial prefix state after all drained windows — what the
        #: barrier executor would hold before the next round.  It feeds
        #: classification validation and spender-bound sizing with exactly
        #: the inputs the barrier path would use.  Maintained only when
        #: something consults it (oracle validation or team sizing) — the
        #: default path would otherwise apply every operation twice.
        self._track_state = (
            self.classifier.validate or self.sync.team_threshold > 0
        )
        self._classify_state = (
            object_type.initial_state() if self._track_state else None
        )

    # -- open-loop harness -----------------------------------------------

    def stream_now(self) -> float:
        """The next window's classification instant: the monotonic
        classification clock, held back by the depth gate exactly as
        :meth:`step` will compute it.  Arrivals due by this time can
        still make the next window."""
        if self.pipeline_depth == 1:
            return super().stream_now()
        gate = 0.0
        index = self.stats.waves
        if index >= self.pipeline_depth:
            gate = self._completions[index - self.pipeline_depth]
        return max(self._classify_clock, gate)

    def stream_advance(self, ts: float) -> None:
        """Advance an idle pipeline's classification clock to ``ts``
        (never backward) — the quiet gap until the next arrival."""
        if self.pipeline_depth == 1:
            super().stream_advance(ts)
        else:
            self._classify_clock = max(self._classify_clock, ts)

    # -- scheduling ------------------------------------------------------

    def step(self) -> WaveStats | None:
        """Schedule one window onto the pipeline; ``None`` when drained.

        With ``pipeline_depth=1`` this is the inherited barrier round,
        unchanged.  Otherwise the window is drained, classified, and
        synchronized immediately (subject only to the depth gate), its
        units are placed on the lane timeline under the frontier rule,
        and application is deferred to :meth:`run`'s commit.
        """
        if self.pipeline_depth == 1:
            return super().step()
        self.stats.rejected_ops = self.mempool.rejected
        index = self.stats.waves
        round_ = self.lifecycle.drain(self.mempool, self.window, index)
        if round_ is None:
            return None

        # Depth gate: at most ``pipeline_depth`` windows in flight.  The
        # classification clock is monotonic — windows classify in order.
        gate = 0.0
        if index >= self.pipeline_depth:
            gate = self._completions[index - self.pipeline_depth]
        t_classify = max(self._classify_clock, gate)
        self._classify_clock = t_classify
        inflight = 1 + sum(1 for done in self._completions if done > t_classify)

        self.lifecycle.classify(round_, self._classify_state)
        sync_start = max(t_classify, self._sync_free)
        self.lifecycle.synchronize(round_, self._classify_state)
        escalation = round_.escalation
        assert escalation is not None
        if escalation.virtual_time > 0:
            self._sync_free = sync_start + escalation.virtual_time

        # Advance the serial prefix state past this window (submission
        # order; equals the barrier executor's state after the round).
        if self._track_state:
            for op in round_.ops:
                self._classify_state, _ = self.object_type.apply(
                    self._classify_state, op.pid, op.operation
                )

        # Per-chain and per-op sync completion: a contended component may
        # not start (chain-atomic) — or its contended *members* may not
        # start (op-granular) — before its lane committed the order.
        chain_sync: dict[int, float] = {}
        op_sync: dict[int, float] = {}
        chain_of = {
            i: ci for ci, chain in enumerate(round_.chain_idx) for i in chain
        }
        for group, component in zip(
            round_.contended_groups, escalation.components
        ):
            done = sync_start + component.completed
            owner = chain_of[group[0]]
            chain_sync[owner] = max(chain_sync.get(owner, 0.0), done)
            for i in group:
                op_sync[i] = done

        if self.planner.dag_scheduling:
            placement = self._place_window_dag(round_, t_classify, op_sync)
        else:
            placement = self._place_window_units(
                round_, t_classify, chain_sync
            )
        (
            scheduled,
            frontier_updates,
            stall,
            stall_contended,
            lanes_used,
            hot_accounts,
            critical_path,
        ) = placement

        # Frontier updates apply after the whole window: units of one
        # window never gate each other through the frontier — distinct
        # components statically commute (the barrier executor's own
        # argument), and same-component ordering is the DAG edges' job.
        for observes, adds, sets, finish in frontier_updates:
            self._frontier_max = max(self._frontier_max, finish)
            if observes is None:
                self._frontier_top = max(self._frontier_top, finish)
                continue
            for frontier, locations in (
                (self._frontier_obs, observes),
                (self._frontier_add, adds),
                (self._frontier_set, sets),
            ):
                for loc in locations:
                    if finish > frontier.get(loc, 0.0):
                        frontier[loc] = finish

        completed = max(unit.finish for unit in scheduled)
        first_start = min(unit.start for unit in scheduled)
        overlap = 0.0
        if self._completions:
            overlap = max(0.0, self._completions[-1] - first_start)
        self._completions.append(completed)
        self._pending_units.extend(scheduled)

        escalated = len(round_.escalated_idx)
        round_stats = WaveStats(
            index=index,
            window=len(round_.ops),
            wave_ops=len(round_.singleton_idx),
            barrier_ops=round_.chained_ops - escalated,
            escalated_ops=escalated,
            lanes_used=len(lanes_used),
            critical_path=critical_path,
            hot_accounts=len(hot_accounts),
            virtual_time=completed - t_classify,
            escalation_time=escalation.virtual_time,
            escalation_messages=escalation.messages,
            team_ops=escalation.team_ops,
            global_ops=escalation.global_ops,
            team_messages=escalation.team_messages,
            global_messages=escalation.global_messages,
            teams=escalation.teams,
            team_sizes=escalation.team_sizes,
            stall_time=stall,
            stall_time_contended=stall_contended,
            overlap_time=overlap,
            inflight=inflight,
            completed_at=completed,
            dag_critical_path=max(
                (dag.critical_path for dag in round_.dags), default=0
            ),
            dag_width=max((dag.width for dag in round_.dags), default=0),
            dag_chain_ops=sum(dag.size for dag in round_.dags),
            dag_critical_ops=sum(dag.critical_path for dag in round_.dags),
        )
        if self.tracer is not None:
            self._trace_pipelined_round(
                round_, scheduled, t_classify, sync_start
            )
        self.stats.record_round(round_stats)
        return round_stats

    def _trace_pipelined_round(
        self,
        round_,
        scheduled: list[ScheduledUnit],
        t_classify: float,
        sync_start: float,
    ) -> None:
        """Record one placed window.  Unit starts compose exactly as
        ``start = base + sync_stall + frontier_stall`` (the placement
        invariant), so the stalls ride on each unit's first op in
        backward-walk order and the attribution report partitions the
        pipelined makespan without slack."""
        tracer = self.tracer
        assert tracer is not None
        tracer.instant(
            "engine",
            f"round {round_.index} classified",
            t_classify,
            args={"window": len(round_.ops)},
        )
        for op in round_.ops:
            tracer.op_stage(op.seq, "classify", t_classify)
        if round_.escalation.components:
            self._trace_sync_phase(round_, sync_start)
        for unit in scheduled:
            stalls = []
            if unit.frontier_stall > 0:
                stalls.append(("frontier_stall", unit.frontier_stall))
            if unit.sync_stall > 0:
                stalls.append(("sync_wait", unit.sync_stall))
            for j, op in enumerate(unit.ops):
                start = unit.start + j * self.op_cost
                tracer.span(
                    f"lane{unit.lane}",
                    f"op {op.seq}",
                    "execute",
                    start,
                    start + self.op_cost,
                    stalls=tuple(stalls) if j == 0 else (),
                    args={
                        "seq": op.seq,
                        "pid": op.pid,
                        "round": round_.index,
                    },
                )
                tracer.op_stage(op.seq, "schedule", unit.start)
                tracer.op_stage(op.seq, "execute", start)
                tracer.op_commit(op.seq, unit.finish)
        tracer.instant(
            "engine",
            f"round {round_.index} placed",
            max(unit.finish for unit in scheduled),
        )

    # -- window placement ------------------------------------------------

    def _dep_ready(self, summary: FootprintSummary) -> float:
        """Earliest start the cross-window frontier allows for a unit with
        this may-access summary — exactly the static commutativity test
        per access kind: reads gate on earlier writes, deltas on earlier
        reads and absolute writes (delta-delta sharing is free), absolute
        writes on every earlier access; unknown footprints degrade to
        waiting for everything."""
        if summary.unknown:
            return self._frontier_max
        dep_ready = self._frontier_top
        for loc in summary.observes:
            dep_ready = max(
                dep_ready,
                self._frontier_add.get(loc, 0.0),
                self._frontier_set.get(loc, 0.0),
            )
        for loc in summary.adds:
            dep_ready = max(
                dep_ready,
                self._frontier_obs.get(loc, 0.0),
                self._frontier_set.get(loc, 0.0),
            )
        for loc in summary.sets:
            dep_ready = max(
                dep_ready,
                self._frontier_obs.get(loc, 0.0),
                self._frontier_add.get(loc, 0.0),
                self._frontier_set.get(loc, 0.0),
            )
        return dep_ready

    def _place_window_units(
        self,
        round_,
        t_classify: float,
        chain_sync: dict[int, float],
    ):
        """Chain-atomic placement with the barrier planner's heuristics.

        Chains place longest-first (LPT) onto the earliest-free lane;
        singletons bundle by primary account — a bundle lands consecutively
        on one lane, except oversized (hot-account) bundles, which split
        per-op across the earliest-free lanes, mirroring
        :class:`~repro.engine.shard.ShardPlanner`'s target heuristic on
        the rolling timeline.
        """
        scheduled: list[ScheduledUnit] = []
        frontier_updates: list[
            tuple[frozenset | None, frozenset, frozenset, float]
        ] = []
        stall = stall_contended = 0.0
        lanes_used: set[int] = set()

        def place(
            ops: list[PendingOp],
            contended: bool,
            sync_ready: float,
            lane: int | None = None,
        ) -> int:
            summary = FootprintSummary.over(
                self.classifier.footprint(op) for op in ops
            )
            dep_ready = self._dep_ready(summary)
            if lane is None:
                lane = min(
                    range(self.num_lanes),
                    key=lambda lane_id: (self._lane_free[lane_id], lane_id),
                )
            base = max(t_classify, self._lane_free[lane])
            sync_stall = max(0.0, sync_ready - base) if contended else 0.0
            frontier_stall = max(0.0, dep_ready - max(base, sync_ready))
            start = max(base, dep_ready, sync_ready)
            finish = start + len(ops) * self.op_cost
            self._lane_free[lane] = finish
            lanes_used.add(lane)
            scheduled.append(
                ScheduledUnit(
                    start=start,
                    finish=finish,
                    lane=lane,
                    first_seq=ops[0].seq,
                    ops=tuple(ops),
                    contended=contended,
                    sync_stall=sync_stall,
                    frontier_stall=frontier_stall,
                )
            )
            frontier_updates.append(
                (
                    None if summary.unknown else summary.observes,
                    summary.adds,
                    summary.sets,
                    finish,
                )
            )
            nonlocal stall, stall_contended
            stall += sync_stall + frontier_stall
            if contended:
                stall_contended += sync_stall + frontier_stall
            return lane

        # Chains: longest-processing-time first (the barrier planner's
        # LPT), deterministic tie-break on the head's sequence number.
        chain_units = sorted(
            (
                (
                    [round_.ops[i] for i in chain],
                    ci in chain_sync,
                    chain_sync.get(ci, 0.0),
                )
                for ci, chain in enumerate(round_.chain_idx)
            ),
            key=lambda unit: (-len(unit[0]), unit[0][0].seq),
        )
        for ops, contended, sync_ready in chain_units:
            place(ops, contended, sync_ready)

        # Singletons: bundle by primary account; hot bundles split.
        target = math.ceil(len(round_.ops) / self.num_lanes)
        bundles: dict[int, list[PendingOp]] = {}
        for i in round_.singleton_idx:
            op = round_.ops[i]
            bundles.setdefault(
                self.planner.primary_account(self.classifier, op), []
            ).append(op)
        hot_accounts: list[int] = []
        for account, ops in sorted(
            bundles.items(), key=lambda kv: (-len(kv[1]), kv[0])
        ):
            if len(ops) > target:
                hot_accounts.append(account)
                for op in ops:
                    place([op], False, 0.0)
            else:
                lane: int | None = None
                for op in ops:
                    lane = place([op], False, 0.0, lane=lane)

        critical_path = max(len(unit.ops) for unit in scheduled)
        return (
            scheduled,
            frontier_updates,
            stall,
            stall_contended,
            lanes_used,
            sorted(hot_accounts),
            critical_path,
        )

    def _place_window_dag(
        self,
        round_,
        t_classify: float,
        op_sync: dict[int, float],
    ):
        """Op-granular placement: critical-path-first list scheduling.

        Every operation is its own timeline unit.  Intra-window order
        comes from the component DAGs (predecessor finish times), the
        cross-window order from the per-*op* frontier, and contended ops
        additionally wait for their component's sync lane.  Priority is
        the DAG bottom level (deepest remaining chain first), ties broken
        by submission order; singletons carry bottom level 1 and backfill.
        """
        ops = round_.ops
        tasks: list[int] = []
        priorities: list[int] = []
        task_of: dict[int, int] = {}
        for dag in round_.dags:
            bottom = dag.bottom_levels()
            for node in dag.nodes:
                task_of[node] = len(tasks)
                tasks.append(node)
                priorities.append(bottom[node])
        for i in round_.singleton_idx:
            task_of[i] = len(tasks)
            tasks.append(i)
            priorities.append(1)
        preds: list[tuple[int, ...]] = [()] * len(tasks)
        succs: list[list[int]] = [[] for _ in range(len(tasks))]
        for dag in round_.dags:
            for node in dag.nodes:
                t = task_of[node]
                preds[t] = tuple(task_of[p] for p in dag.preds[node])
                for s in dag.succs[node]:
                    succs[t].append(task_of[s])

        scheduled: list[ScheduledUnit] = []
        frontier_updates: list[
            tuple[frozenset | None, frozenset, frozenset, float]
        ] = []
        stall = stall_contended = 0.0
        lanes_used: set[int] = set()
        est = [0.0] * len(tasks)
        missing = [len(found) for found in preds]
        ready = [
            (-priorities[t], ops[tasks[t]].seq, t)
            for t in range(len(tasks))
            if not missing[t]
        ]
        heapq.heapify(ready)
        placed = 0
        while ready:
            _, _, t = heapq.heappop(ready)
            i = tasks[t]
            op = ops[i]
            summary = FootprintSummary.over([self.classifier.footprint(op)])
            dep_ready = self._dep_ready(summary)
            contended = i in op_sync
            sync_ready = op_sync.get(i, 0.0)
            # Earliest-start lane choice (not least-loaded): an op floored
            # far in the future by its dependencies must not strand the
            # earliest-free lane idle when another lane starts it no later.
            ready_at = max(t_classify, est[t], dep_ready, sync_ready)
            lane = min(
                range(self.num_lanes),
                key=lambda lane_id: (
                    max(self._lane_free[lane_id], ready_at),
                    self._lane_free[lane_id],
                    lane_id,
                ),
            )
            # Admission, lane availability, and intra-window predecessor
            # finishes form the baseline; waiting beyond it is stall,
            # attributed to the sync lane first, then the frontier.
            base = max(t_classify, self._lane_free[lane], est[t])
            sync_stall = max(0.0, sync_ready - base) if contended else 0.0
            frontier_stall = max(0.0, dep_ready - max(base, sync_ready))
            start = max(base, dep_ready, sync_ready)
            finish = start + self.op_cost
            self._lane_free[lane] = finish
            lanes_used.add(lane)
            scheduled.append(
                ScheduledUnit(
                    start=start,
                    finish=finish,
                    lane=lane,
                    first_seq=op.seq,
                    ops=(op,),
                    contended=contended,
                    sync_stall=sync_stall,
                    frontier_stall=frontier_stall,
                )
            )
            frontier_updates.append(
                (
                    None if summary.unknown else summary.observes,
                    summary.adds,
                    summary.sets,
                    finish,
                )
            )
            stall += sync_stall + frontier_stall
            if contended:
                stall_contended += sync_stall + frontier_stall
            placed += 1
            for s in succs[t]:
                if finish > est[s]:
                    est[s] = finish
                missing[s] -= 1
                if not missing[s]:
                    heapq.heappush(
                        ready, (-priorities[s], ops[tasks[s]].seq, s)
                    )
        if placed != len(tasks):
            raise EngineError("dependency cycle in pipelined DAG schedule")

        critical_path = max(
            (dag.critical_path for dag in round_.dags), default=1
        )
        return (
            scheduled,
            frontier_updates,
            stall,
            stall_contended,
            lanes_used,
            [],
            critical_path,
        )

    def run(self) -> EngineStats:
        """Drain the mempool through the pipeline, then commit.

        Commit applies every scheduled unit in ascending start time
        (submission order on ties) — the serially-equivalent merge of the
        pipelined timeline — and sets the engine clock to the makespan.
        """
        if self.pipeline_depth == 1:
            return super().run()
        while self.step() is not None:
            pass
        self._commit()
        self.stats.rejected_ops = self.mempool.rejected
        return self.stats

    # -- commit ----------------------------------------------------------

    def _commit(self) -> None:
        for unit in sorted(
            self._pending_units, key=lambda u: (u.start, u.first_seq)
        ):
            for op in unit.ops:
                self._apply(op)
        self._pending_units.clear()
        if self._completions:
            self.clock = max(self._completions)
            # The aggregate clock is the *makespan* of the overlapped
            # timeline, not the (overcounting) sum of per-round times.
            self.stats.virtual_time = self.clock
