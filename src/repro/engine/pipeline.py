"""Cross-round pipelined execution: no global barrier between windows.

The barrier executor (:class:`~repro.engine.executor.BatchExecutor`) pays
a *global round barrier*: window N+1's classification waits until every
lane — and, in the cluster, every node — has finished window N, so one
slow chain or one consensus round stalls traffic that provably commutes
with it.  :class:`PipelinedExecutor` removes the barrier and replaces it
with the weakest dependency the serial-equivalence contract needs:

**Frontier rule.**  An operation of window N+1 may start executing as
soon as every window-N (or earlier) component *touching its footprint*
has committed.  Operations with disjoint footprints statically commute
(:func:`repro.objects.footprint.static_pair_kind`), so running them in
overlapped windows reorders only commuting pairs; operations with
overlapping footprints are forced to start after their predecessors
finish, which preserves submission order between them.  Unknown
footprints degrade soundly: such a unit waits for *everything* earlier
and gates everything later.

Mechanically the executor keeps a per-location **frontier** — the virtual
time at which the last scheduled unit touching that location finishes —
plus per-lane free times, and schedules each window's units (chains are
atomic units, singletons are single-op units) greedily onto the earliest
free lane at ``max(classify time, frontier of its footprint, its sync
lane's completion)``.  Window N+1 is classified (conflict graph, tiered
synchronization) as soon as the pipeline has a free slot — i.e. while
window N's lanes are still executing — and the shared synchronization
lanes serialize across windows (they are one physical resource) but
overlap with lane execution, which is where most of the win on contended
mixes comes from.

``pipeline_depth`` bounds how many windows may be in flight at once.
``pipeline_depth=1`` *is* the barrier: the executor inherits
:class:`BatchExecutor`'s round loop unchanged, so the historical behavior
— state, responses, clock, and stats — is reproduced bit for bit
(property-tested in ``tests/engine/test_pipeline.py``).

State application happens at commit time in ascending unit start time
(ties broken by submission order).  That order is serially equivalent to
submission order: two units applied out of submission order either share
no location (they statically commute) or the frontier rule forced the
later one to start after the earlier one finished, in which case the sort
never swaps them.  The property suite machine-checks this against the
sequential specification for random workloads, depths, and lane counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import BatchExecutor
from repro.engine.mempool import PendingOp
from repro.engine.stats import EngineStats, WaveStats
from repro.errors import EngineError
from repro.objects.footprint import FootprintSummary


@dataclass(frozen=True, slots=True)
class ScheduledUnit:
    """One atomic execution unit (a chain or a singleton) on the timeline."""

    start: float
    finish: float
    lane: int
    first_seq: int
    ops: tuple[PendingOp, ...]
    contended: bool
    #: Stall attributed to this unit: time spent waiting on its sync lane
    #: and on cross-round frontier dependencies beyond what admission and
    #: lane availability already imposed.
    sync_stall: float
    frontier_stall: float


class PipelinedExecutor(BatchExecutor):
    """Cross-round pipelined executor for one token object.

    Drop-in replacement for :class:`BatchExecutor` (same constructor
    arguments plus ``pipeline_depth``).  ``run()`` / ``run_workload()``
    are the intended API; ``step()`` schedules one window onto the
    pipeline timeline, and state/responses materialize at commit (the end
    of ``run()``) — the engine's virtual clock then reads the pipelined
    *makespan*, not the sum of per-round times.
    """

    def __init__(self, object_type, pipeline_depth: int = 2, **kwargs) -> None:
        if pipeline_depth < 1:
            raise EngineError("pipeline_depth must be >= 1")
        super().__init__(object_type, **kwargs)
        self.pipeline_depth = pipeline_depth
        self.stats.pipeline_depth = pipeline_depth
        #: Earliest free time per lane (the pipeline never resets these —
        #: lanes flow from one window into the next).
        self._lane_free = [0.0] * self.num_lanes
        #: Per-location frontier, split by access kind so that the
        #: dependency test is *exactly* the static commutativity test
        #: (:func:`repro.objects.footprint.static_pair_kind`): reads gate
        #: on earlier writes, writes gate on earlier reads, absolute
        #: writes gate on everything — but read-read and delta-delta
        #: (credit-credit) sharing stays dependency-free, which is what
        #: lets disjoint-owner traffic run ahead across windows.
        self._frontier_obs: dict[tuple, float] = {}
        self._frontier_add: dict[tuple, float] = {}
        self._frontier_set: dict[tuple, float] = {}
        #: Finish high-water marks: of unknown-footprint units (which gate
        #: everything after them) and of all units (which gate unknown ones).
        self._frontier_top = 0.0
        self._frontier_max = 0.0
        #: Completion time of each drained window, in window order.
        self._completions: list[float] = []
        self._classify_clock = 0.0
        #: The shared sync lanes are one physical resource: their phases
        #: serialize across windows (but overlap lane execution).
        self._sync_free = 0.0
        #: Units scheduled but not yet applied (committed at end of run).
        self._pending_units: list[ScheduledUnit] = []
        #: The serial prefix state after all drained windows — what the
        #: barrier executor would hold before the next round.  It feeds
        #: classification validation and spender-bound sizing with exactly
        #: the inputs the barrier path would use.  Maintained only when
        #: something consults it (oracle validation or team sizing) — the
        #: default path would otherwise apply every operation twice.
        self._track_state = (
            self.classifier.validate or self.sync.team_threshold > 0
        )
        self._classify_state = (
            object_type.initial_state() if self._track_state else None
        )

    # -- scheduling ------------------------------------------------------

    def step(self) -> WaveStats | None:
        """Schedule one window onto the pipeline; ``None`` when drained.

        With ``pipeline_depth=1`` this is the inherited barrier round,
        unchanged.  Otherwise the window is drained, classified, and
        synchronized immediately (subject only to the depth gate), its
        units are placed on the lane timeline under the frontier rule,
        and application is deferred to :meth:`run`'s commit.
        """
        if self.pipeline_depth == 1:
            return super().step()
        self.stats.rejected_ops = self.mempool.rejected
        index = self.stats.waves
        round_ = self.lifecycle.drain(self.mempool, self.window, index)
        if round_ is None:
            return None

        # Depth gate: at most ``pipeline_depth`` windows in flight.  The
        # classification clock is monotonic — windows classify in order.
        gate = 0.0
        if index >= self.pipeline_depth:
            gate = self._completions[index - self.pipeline_depth]
        t_classify = max(self._classify_clock, gate)
        self._classify_clock = t_classify
        inflight = 1 + sum(
            1 for done in self._completions if done > t_classify
        )

        self.lifecycle.classify(round_, self._classify_state)
        sync_start = max(t_classify, self._sync_free)
        self.lifecycle.synchronize(round_, self._classify_state)
        escalation = round_.escalation
        assert escalation is not None
        if escalation.virtual_time > 0:
            self._sync_free = sync_start + escalation.virtual_time

        # Advance the serial prefix state past this window (submission
        # order; equals the barrier executor's state after the round).
        if self._track_state:
            for op in round_.ops:
                self._classify_state, _ = self.object_type.apply(
                    self._classify_state, op.pid, op.operation
                )

        # Per-chain sync completion: a chain with a contended group may
        # not start before its lane committed the group's order.
        chain_sync: dict[int, float] = {}
        chain_of = {
            i: ci for ci, chain in enumerate(round_.chain_idx) for i in chain
        }
        for group, component in zip(
            round_.contended_groups, escalation.components
        ):
            owner = chain_of[group[0]]
            chain_sync[owner] = max(
                chain_sync.get(owner, 0.0), sync_start + component.completed
            )

        # Units in submission order of their heads: chains are atomic,
        # singletons are single-op units (hot accounts spread implicitly).
        units: list[tuple[int, list[PendingOp], bool, float]] = []
        for ci, chain in enumerate(round_.chain_idx):
            units.append(
                (
                    chain[0],
                    [round_.ops[i] for i in chain],
                    ci in chain_sync,
                    chain_sync.get(ci, 0.0),
                )
            )
        for i in round_.singleton_idx:
            units.append((i, [round_.ops[i]], False, 0.0))
        units.sort(key=lambda unit: unit[0])

        scheduled: list[ScheduledUnit] = []
        frontier_updates: list[
            tuple[frozenset | None, frozenset, frozenset, float]
        ] = []
        stall = stall_contended = 0.0
        lanes_used: set[int] = set()
        for _, ops, contended, sync_ready in units:
            summary = FootprintSummary.over(
                self.classifier.footprint(op) for op in ops
            )
            observes, adds, sets = summary.observes, summary.adds, summary.sets
            if summary.unknown:
                dep_ready = self._frontier_max
            else:
                dep_ready = self._frontier_top
                for loc in observes:
                    # A read waits for earlier writes to the cell.
                    dep_ready = max(
                        dep_ready,
                        self._frontier_add.get(loc, 0.0),
                        self._frontier_set.get(loc, 0.0),
                    )
                for loc in adds:
                    # A delta waits for earlier reads and absolute writes,
                    # but deltas to one cell commute with each other.
                    dep_ready = max(
                        dep_ready,
                        self._frontier_obs.get(loc, 0.0),
                        self._frontier_set.get(loc, 0.0),
                    )
                for loc in sets:
                    # An absolute write waits for every earlier access.
                    dep_ready = max(
                        dep_ready,
                        self._frontier_obs.get(loc, 0.0),
                        self._frontier_add.get(loc, 0.0),
                        self._frontier_set.get(loc, 0.0),
                    )
            lane = min(
                range(self.num_lanes),
                key=lambda lane_id: (self._lane_free[lane_id], lane_id),
            )
            base = max(t_classify, self._lane_free[lane])
            sync_stall = max(0.0, sync_ready - base) if contended else 0.0
            frontier_stall = max(0.0, dep_ready - max(base, sync_ready))
            start = max(base, dep_ready, sync_ready)
            finish = start + len(ops) * self.op_cost
            self._lane_free[lane] = finish
            lanes_used.add(lane)
            unit = ScheduledUnit(
                start=start,
                finish=finish,
                lane=lane,
                first_seq=ops[0].seq,
                ops=tuple(ops),
                contended=contended,
                sync_stall=sync_stall,
                frontier_stall=frontier_stall,
            )
            scheduled.append(unit)
            frontier_updates.append(
                (
                    None if summary.unknown else observes,
                    adds,
                    sets,
                    finish,
                )
            )
            unit_stall = sync_stall + frontier_stall
            stall += unit_stall
            if contended:
                stall_contended += unit_stall

        # Frontier updates apply after the whole window: units of one
        # window never gate each other (they are distinct components and
        # statically commute — the barrier executor's own argument).
        for observes, adds, sets, finish in frontier_updates:
            self._frontier_max = max(self._frontier_max, finish)
            if observes is None:
                self._frontier_top = max(self._frontier_top, finish)
                continue
            for frontier, locations in (
                (self._frontier_obs, observes),
                (self._frontier_add, adds),
                (self._frontier_set, sets),
            ):
                for loc in locations:
                    if finish > frontier.get(loc, 0.0):
                        frontier[loc] = finish

        completed = max(unit.finish for unit in scheduled)
        first_start = min(unit.start for unit in scheduled)
        overlap = 0.0
        if self._completions:
            overlap = max(0.0, self._completions[-1] - first_start)
        self._completions.append(completed)
        self._pending_units.extend(scheduled)

        escalated = len(round_.escalated_idx)
        round_stats = WaveStats(
            index=index,
            window=len(round_.ops),
            wave_ops=len(round_.singleton_idx),
            barrier_ops=round_.chained_ops - escalated,
            escalated_ops=escalated,
            lanes_used=len(lanes_used),
            critical_path=max(len(unit.ops) for unit in scheduled),
            hot_accounts=0,
            virtual_time=completed - t_classify,
            escalation_time=escalation.virtual_time,
            escalation_messages=escalation.messages,
            team_ops=escalation.team_ops,
            global_ops=escalation.global_ops,
            team_messages=escalation.team_messages,
            global_messages=escalation.global_messages,
            teams=escalation.teams,
            team_sizes=escalation.team_sizes,
            stall_time=stall,
            stall_time_contended=stall_contended,
            overlap_time=overlap,
            inflight=inflight,
            completed_at=completed,
        )
        self.stats.record_round(round_stats)
        return round_stats

    def run(self) -> EngineStats:
        """Drain the mempool through the pipeline, then commit.

        Commit applies every scheduled unit in ascending start time
        (submission order on ties) — the serially-equivalent merge of the
        pipelined timeline — and sets the engine clock to the makespan.
        """
        if self.pipeline_depth == 1:
            return super().run()
        while self.step() is not None:
            pass
        self._commit()
        self.stats.rejected_ops = self.mempool.rejected
        return self.stats

    # -- commit ----------------------------------------------------------

    def _commit(self) -> None:
        for unit in sorted(
            self._pending_units, key=lambda u: (u.start, u.first_seq)
        ):
            for op in unit.ops:
                self._apply(op)
        self._pending_units.clear()
        if self._completions:
            self.clock = max(self._completions)
            # The aggregate clock is the *makespan* of the overlapped
            # timeline, not the (overcounting) sum of per-round times.
            self.stats.virtual_time = self.clock
