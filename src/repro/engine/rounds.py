"""The round loop's scheduling core, factored out of the batch executor.

One round of commutativity-aware execution is the same computation whether
it runs inside a single process (:class:`~repro.engine.executor.BatchExecutor`)
or on each node of a distributed cluster (:mod:`repro.cluster`): split a
batch into conflict-graph components, decide which chain members are
contended enough to need total order, and lay the groups out on parallel
lanes.  :class:`RoundScheduler` owns exactly that logic so the cluster's
per-node executors and the single-process engine share one implementation
— and therefore one correctness argument.
"""

from __future__ import annotations

from repro.analysis.commutativity import PairKind
from repro.engine.classifier import OpClassifier
from repro.engine.conflict_graph import ConflictGraph
from repro.engine.mempool import PendingOp
from repro.engine.shard import ShardPlan, ShardPlanner


class RoundScheduler:
    """Window splitting + lane planning for one scheduling round."""

    def __init__(self, classifier: OpClassifier, planner: ShardPlanner) -> None:
        self.classifier = classifier
        self.planner = planner

    # ------------------------------------------------------------------

    def split(
        self, graph: ConflictGraph
    ) -> tuple[list[list[int]], list[int], list[int]]:
        """Partition window indices into (chains, singletons, contended).

        Components of the conflict graph are independent: operations in
        different components statically commute, so components run in
        parallel.  Within a component only the submission order is safe —
        it becomes an ordered *chain* pinned to one lane.  Singleton
        components commute with the entire window and can run anywhere.

        ``contended`` indices are the chain members that sit on a
        synchronization-group conflict: a CONFLICT edge between *distinct*
        processes contending on a shared cell (two enabled spenders of one
        account, approve vs transferFrom on one allowance, one NFT) — see
        ``OpClassifier.needs_consensus``.  Only those can ever need total
        order; same-process conflicts, credit-enables-spend races and
        READ_ONLY pairs are resolved by chain order alone, which costs no
        messages.
        """
        chains, singletons, groups = self.split_sync(graph)
        return chains, singletons, sorted(i for group in groups for i in group)

    def split_sync(
        self, graph: ConflictGraph
    ) -> tuple[list[list[int]], list[int], list[list[int]]]:
        """Like :meth:`split`, but keeps the contended indices grouped by
        their conflict-graph component — the unit the tiered sync layer
        (:mod:`repro.sync`) sizes teams for.  Each group is the contended
        subset of one chain, in submission order; groups are ordered by
        their first index.  Flattening the groups recovers :meth:`split`'s
        third result exactly.
        """
        chains: list[list[int]] = []
        singletons: list[int] = []
        for component in graph.components():
            if len(component) == 1:
                singletons.append(component[0])
            else:
                chains.append(component)
        contended: set[int] = set()
        for (a, b), kind in graph.edges.items():
            if kind is PairKind.CONFLICT and self.classifier.needs_consensus(
                graph.ops[a], graph.ops[b]
            ):
                contended.add(a)
                contended.add(b)
        groups = [
            group
            for chain in chains
            if (group := [i for i in chain if i in contended])
        ]
        return chains, singletons, sorted(groups, key=lambda g: g[0])

    def plan_batch(self, ops: list[PendingOp], state=None) -> ShardPlan:
        """Lay one already-routed batch out on this scheduler's lanes.

        This is the per-node round loop of the cluster: the router has
        already co-located every conflict-graph component (chains never
        span nodes), so rebuilding the graph over the batch recovers
        exactly the window components assigned here, and the lane-major
        application order of the returned plan is serially equivalent for
        the same reason as in the single-process engine.
        """
        graph = ConflictGraph.build(self.classifier, ops, state)
        chain_idx, singleton_idx, _ = self.split(graph)
        return self.planner.plan(
            self.classifier,
            [[ops[i] for i in chain] for chain in chain_idx],
            [ops[i] for i in singleton_idx],
        )
