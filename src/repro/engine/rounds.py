"""The round loop's scheduling core, factored out of the batch executor.

One round of commutativity-aware execution is the same computation whether
it runs inside a single process (:class:`~repro.engine.executor.BatchExecutor`)
or on each node of a distributed cluster (:mod:`repro.cluster`): split a
batch into conflict-graph components, decide which chain members are
contended enough to need total order, and lay the groups out on parallel
lanes.  :class:`RoundScheduler` owns exactly that logic so the cluster's
per-node executors and the single-process engine share one implementation
— and therefore one correctness argument.

Since cross-round pipelining landed (:mod:`repro.engine.pipeline`), a
round is no longer an opaque step of the batch executor but an explicit
**stage machine**: a :class:`Round` progresses ``DRAINED → CLASSIFIED →
SYNCED → PLANNED → COMMITTED`` through :class:`RoundLifecycle`, which owns
the per-stage computations.  The barrier executor drives one round through
all stages before touching the next; the pipelined executor keeps several
rounds at different stages simultaneously (window N+1 classifies and
synchronizes while window N executes).  Both drive the *same* stage
methods, so the pipelined path cannot silently diverge from the barrier
semantics the property suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.commutativity import PairKind
from repro.engine.classifier import OpClassifier
from repro.engine.conflict_graph import ConflictGraph
from repro.engine.mempool import Mempool, PendingOp
from repro.engine.shard import ShardPlan, ShardPlanner
from repro.engine.stats import WaveStats
from repro.errors import EngineError
from repro.sync.escalation import SyncRoundResult, TieredEscalator


class RoundScheduler:
    """Window splitting + lane planning for one scheduling round."""

    def __init__(self, classifier: OpClassifier, planner: ShardPlanner) -> None:
        self.classifier = classifier
        self.planner = planner

    # ------------------------------------------------------------------

    def split(
        self, graph: ConflictGraph
    ) -> tuple[list[list[int]], list[int], list[int]]:
        """Partition window indices into (chains, singletons, contended).

        Components of the conflict graph are independent: operations in
        different components statically commute, so components run in
        parallel.  Within a component only the submission order is safe —
        it becomes an ordered *chain* pinned to one lane.  Singleton
        components commute with the entire window and can run anywhere.

        ``contended`` indices are the chain members that sit on a
        synchronization-group conflict: a CONFLICT edge between *distinct*
        processes contending on a shared cell (two enabled spenders of one
        account, approve vs transferFrom on one allowance, one NFT) — see
        ``OpClassifier.needs_consensus``.  Only those can ever need total
        order; same-process conflicts, credit-enables-spend races and
        READ_ONLY pairs are resolved by chain order alone, which costs no
        messages.
        """
        chains, singletons, groups = self.split_sync(graph)
        return chains, singletons, sorted(i for group in groups for i in group)

    def split_sync(
        self, graph: ConflictGraph
    ) -> tuple[list[list[int]], list[int], list[list[int]]]:
        """Like :meth:`split`, but keeps the contended indices grouped by
        their conflict-graph component — the unit the tiered sync layer
        (:mod:`repro.sync`) sizes teams for.  Each group is the contended
        subset of one chain, in submission order; groups are ordered by
        their first index.  Flattening the groups recovers :meth:`split`'s
        third result exactly.
        """
        chains: list[list[int]] = []
        singletons: list[int] = []
        for component in graph.components():
            if len(component) == 1:
                singletons.append(component[0])
            else:
                chains.append(component)
        contended: set[int] = set()
        for (a, b), kind in graph.edges.items():
            if kind is PairKind.CONFLICT and self.classifier.needs_consensus(
                graph.ops[a], graph.ops[b]
            ):
                contended.add(a)
                contended.add(b)
        groups = [
            group
            for chain in chains
            if (group := [i for i in chain if i in contended])
        ]
        return chains, singletons, sorted(groups, key=lambda g: g[0])

    def plan_batch(self, ops: list[PendingOp], state=None) -> ShardPlan:
        """Lay one already-routed batch out on this scheduler's lanes.

        This is the per-node round loop of the cluster: the router has
        already co-located every conflict-graph component (chains never
        span nodes), so rebuilding the graph over the batch recovers
        exactly the window components assigned here, and the application
        order of the returned plan (lane-major, or the DAG plan's explicit
        linear extension) is serially equivalent for the same reason as in
        the single-process engine.
        """
        graph = ConflictGraph.build(self.classifier, ops, state)
        chain_idx, singleton_idx, _ = self.split(graph)
        return self.planner.plan(
            self.classifier,
            [[ops[i] for i in chain] for chain in chain_idx],
            [ops[i] for i in singleton_idx],
            dags=(
                graph.component_dags() if self.planner.dag_scheduling else None
            ),
        )


class RoundStage(Enum):
    """Lifecycle stages of one scheduling round (strictly ordered)."""

    DRAINED = "drained"
    CLASSIFIED = "classified"
    SYNCED = "synced"
    PLANNED = "planned"
    COMMITTED = "committed"


#: Stage order for transition checking.
_STAGE_ORDER = {stage: i for i, stage in enumerate(RoundStage)}


@dataclass
class Round:
    """One scheduling round moving through the stage machine.

    Every field below ``stage`` is populated by the lifecycle method that
    advances the round into the stage of the same name; reading a field
    before its stage raises nothing — it is simply empty — but the
    lifecycle refuses out-of-order transitions, so an executor cannot
    accidentally plan an unclassified round.
    """

    index: int
    ops: list[PendingOp]
    stage: RoundStage = RoundStage.DRAINED
    graph: ConflictGraph | None = None
    chain_idx: list[list[int]] = field(default_factory=list)
    singleton_idx: list[int] = field(default_factory=list)
    #: Contended subset of each chain, grouped by component (the unit the
    #: tiered sync layer sizes teams for).
    contended_groups: list[list[int]] = field(default_factory=list)
    #: Per-chain precedence DAGs (populated only under op-granular
    #: scheduling; positionally aligned with ``chain_idx``).
    dags: list = field(default_factory=list)
    escalation: SyncRoundResult | None = None
    plan: ShardPlan | None = None

    @property
    def escalated_idx(self) -> list[int]:
        return [i for group in self.contended_groups for i in group]

    @property
    def chained_ops(self) -> int:
        return sum(len(chain) for chain in self.chain_idx)

    def advance(self, to: RoundStage) -> None:
        """Move to the next stage; rejects skips and regressions."""
        if _STAGE_ORDER[to] != _STAGE_ORDER[self.stage] + 1:
            raise EngineError(
                f"round {self.index} cannot go {self.stage.value} -> "
                f"{to.value}"
            )
        self.stage = to


class RoundLifecycle:
    """The per-stage computations of one round, shared by executors.

    The barrier executor (:class:`~repro.engine.executor.BatchExecutor`)
    runs ``drain → classify → synchronize → plan`` back to back and then
    executes; the pipelined executor (:mod:`repro.engine.pipeline`)
    interleaves the stages of several rounds.  Keeping the computations
    here — and the stage tracking on :class:`Round` — is what makes
    ``pipeline_depth=1`` bit-identical to the barrier path: there is only
    one implementation of each stage to agree with.
    """

    def __init__(
        self,
        scheduler: RoundScheduler,
        sync: TieredEscalator,
        object_type,
        op_cost: float = 1.0,
    ) -> None:
        self.scheduler = scheduler
        self.sync = sync
        self.object_type = object_type
        self.op_cost = op_cost

    # -- stages ----------------------------------------------------------

    def drain(self, mempool: Mempool, window: int, index: int) -> Round | None:
        """DRAINED: pop the next window; ``None`` when the pool is empty."""
        ops = mempool.pop_window(window)
        if not ops:
            return None
        return Round(index=index, ops=ops)

    def classify(self, round_: Round, state=None) -> Round:
        """CLASSIFIED: conflict graph + component split for the window."""
        round_.graph = ConflictGraph.build(
            self.scheduler.classifier, round_.ops, state
        )
        (
            round_.chain_idx,
            round_.singleton_idx,
            round_.contended_groups,
        ) = self.scheduler.split_sync(round_.graph)
        if self.scheduler.planner.dag_scheduling:
            round_.dags = round_.graph.component_dags()
        round_.advance(RoundStage.CLASSIFIED)
        return round_

    def synchronize(self, round_: Round, state=None) -> Round:
        """SYNCED: order the contended components through the tiered sync
        layer (team lanes below the threshold, the global lane above)."""
        round_.escalation = (
            self.sync.order_round(
                [
                    [round_.ops[i] for i in group]
                    for group in round_.contended_groups
                ],
                self.scheduler.classifier,
                state=state,
                object_type=self.object_type,
            )
            if round_.contended_groups
            else SyncRoundResult()
        )
        round_.advance(RoundStage.SYNCED)
        return round_

    def plan(self, round_: Round) -> Round:
        """PLANNED: lay chains and singletons out on the parallel lanes
        (the barrier layout; the pipelined executor schedules at unit
        granularity instead and skips this stage).  Under op-granular
        scheduling the per-chain DAGs flow through and the plan carries an
        explicit serially-equivalent application order."""
        round_.plan = self.scheduler.planner.plan(
            self.scheduler.classifier,
            [[round_.ops[i] for i in chain] for chain in round_.chain_idx],
            [round_.ops[i] for i in round_.singleton_idx],
            dags=round_.dags if round_.dags else None,
        )
        round_.advance(RoundStage.PLANNED)
        return round_

    # -- accounting ------------------------------------------------------

    def barrier_stats(self, round_: Round) -> WaveStats:
        """COMMITTED: the barrier executor's round accounting — the round
        costs its lane critical path plus its synchronization phase."""
        plan, escalation = round_.plan, round_.escalation
        assert plan is not None and escalation is not None
        escalated = len(round_.escalated_idx)
        round_.advance(RoundStage.COMMITTED)
        return WaveStats(
            dag_critical_path=max(
                (dag.critical_path for dag in round_.dags), default=0
            ),
            dag_width=max((dag.width for dag in round_.dags), default=0),
            dag_chain_ops=sum(dag.size for dag in round_.dags),
            dag_critical_ops=sum(
                dag.critical_path for dag in round_.dags
            ),
            index=round_.index,
            window=len(round_.ops),
            wave_ops=len(round_.singleton_idx),
            barrier_ops=round_.chained_ops - escalated,
            escalated_ops=escalated,
            lanes_used=plan.lanes_used,
            critical_path=plan.critical_path,
            hot_accounts=len(plan.hot_accounts),
            virtual_time=plan.critical_path * self.op_cost
            + escalation.virtual_time,
            escalation_time=escalation.virtual_time,
            escalation_messages=escalation.messages,
            team_ops=escalation.team_ops,
            global_ops=escalation.global_ops,
            team_messages=escalation.team_messages,
            global_messages=escalation.global_messages,
            teams=escalation.teams,
            team_sizes=escalation.team_sizes,
        )
