"""Shard planning: assign a window's execution groups to parallel lanes.

The scheduler hands the planner *groups* of pending operations:

* **chains** — the multi-operation components of the conflict graph.  A
  chain's operations must keep their submission order, so a chain is
  atomic: it occupies one lane and costs its full length.
* **singletons** — operations commuting with everything else in the
  window.  They can run anywhere; the planner bundles them by primary
  account so account-local traffic lands on one lane (hash sharding,
  cache-friendly in a real deployment).

Placement is hash sharding by primary account with two refinements for
skewed traffic:

* **hot-account splitting** — a popular account can own a large bundle of
  mutually commuting operations (balance queries, approvals to distinct
  spenders, incoming credits).  Hash sharding would pin the burst to one
  lane; bundles larger than the per-lane target are split across the
  least-loaded lanes instead.
* **LPT chain placement + overflow spill** — chains go largest-first to
  the least-loaded lane, and overloaded lanes shed singletons afterwards.

Every operation in different groups pairwise commutes, so any assignment
is *correct*; the planner only shapes the critical path.  It never
consults mutable state, so the same window always produces the same plan —
part of the engine's determinism guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.classifier import OpClassifier
from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.objects.footprint import anchor_account

#: Knuth's multiplicative hash constant; stable across runs and platforms
#: (unlike ``hash(str)``, which is randomized per process).
_MIX = 2654435761


def stable_account_hash(account: int) -> int:
    return (account * _MIX) & 0xFFFFFFFF


@dataclass
class ShardPlan:
    """The lane assignment of one scheduling round."""

    #: Per lane: the operations in application order (chains kept intact).
    lanes: list[list[PendingOp]]
    hot_accounts: list[int]

    @property
    def critical_path(self) -> int:
        """Length of the longest lane — the round's parallel execution time
        in operation units."""
        return max((len(lane) for lane in self.lanes), default=0)

    @property
    def lanes_used(self) -> int:
        return sum(1 for lane in self.lanes if lane)

    @property
    def size(self) -> int:
        return sum(len(lane) for lane in self.lanes)


class ShardPlanner:
    """Deterministic account-hash lane partitioner with hot-account splitting."""

    def __init__(self, num_lanes: int, hot_split: bool = True) -> None:
        if num_lanes < 1:
            raise EngineError("need at least one lane")
        self.num_lanes = num_lanes
        self.hot_split = hot_split

    # ------------------------------------------------------------------

    def lane_of(self, account: int) -> int:
        """Home lane of an account under pure hash sharding."""
        return stable_account_hash(account) % self.num_lanes

    def primary_account(self, classifier: OpClassifier, op: PendingOp) -> int:
        """The account anchoring lane placement — the shared owner-extraction
        rule (:func:`repro.objects.footprint.anchor_account`): the smallest
        contended account, else written, else observed, else the caller.
        The cluster router uses the same rule for node placement, so an
        operation's lane affinity and its owner node agree."""
        return anchor_account(classifier.footprint(op), op.pid)

    def plan(
        self,
        classifier: OpClassifier,
        chains: list[list[PendingOp]],
        singletons: list[PendingOp],
    ) -> ShardPlan:
        """Assign chains (atomic, ordered) and singletons to lanes."""
        lanes: list[list[PendingOp]] = [[] for _ in range(self.num_lanes)]
        total = sum(len(chain) for chain in chains) + len(singletons)
        if not total:
            return ShardPlan(lanes=lanes, hot_accounts=[])
        target = math.ceil(total / self.num_lanes)

        def least_loaded() -> int:
            return min(range(self.num_lanes), key=lambda i: (len(lanes[i]), i))

        # Chains: longest-processing-time first, deterministic tie-break on
        # the chain's first sequence number.
        for chain in sorted(chains, key=lambda c: (-len(c), c[0].seq)):
            lanes[least_loaded()].extend(chain)

        # Singletons: bundle by primary account, hash-shard the bundles.
        bundles: dict[int, list[PendingOp]] = {}
        for op in singletons:  # submission-ordered; bundles inherit that
            bundles.setdefault(
                self.primary_account(classifier, op), []
            ).append(op)
        hot_accounts: list[int] = []
        for account, ops in sorted(
            bundles.items(), key=lambda kv: (-len(kv[1]), kv[0])
        ):
            if self.hot_split and len(ops) > target:
                # Hot account: split its commuting burst across lanes.
                hot_accounts.append(account)
                for op in ops:
                    lanes[least_loaded()].append(op)
            else:
                lanes[self.lane_of(account)].extend(ops)

        # Overflow spill: hash collisions can still overload a lane; shed
        # singletons (never chain members) from the tail.  Chains were
        # placed first, so a lane's tail holds its singletons.  With
        # ``hot_split`` off the planner is pure hash sharding — the naive
        # baseline the benchmarks compare against.
        if not self.hot_split:
            return ShardPlan(lanes=lanes, hot_accounts=[])
        chain_ops = {op.seq for chain in chains for op in chain}
        moved = 0
        while moved < total:
            heaviest = max(
                range(self.num_lanes), key=lambda i: (len(lanes[i]), -i)
            )
            lightest = least_loaded()
            if len(lanes[heaviest]) - len(lanes[lightest]) <= 1:
                break
            if len(lanes[heaviest]) <= target or not lanes[heaviest]:
                break
            if lanes[heaviest][-1].seq in chain_ops:
                break  # only singleton tails are movable
            lanes[lightest].append(lanes[heaviest].pop())
            moved += 1
        return ShardPlan(lanes=lanes, hot_accounts=sorted(hot_accounts))
