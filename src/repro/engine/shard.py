"""Shard planning: assign a window's execution groups to parallel lanes.

The scheduler hands the planner *groups* of pending operations:

* **chains** — the multi-operation components of the conflict graph.  A
  chain's operations must keep their submission order, so a chain is
  atomic: it occupies one lane and costs its full length.
* **singletons** — operations commuting with everything else in the
  window.  They can run anywhere; the planner bundles them by primary
  account so account-local traffic lands on one lane (hash sharding,
  cache-friendly in a real deployment).

Placement is hash sharding by primary account with two refinements for
skewed traffic:

* **hot-account splitting** — a popular account can own a large bundle of
  mutually commuting operations (balance queries, approvals to distinct
  spenders, incoming credits).  Hash sharding would pin the burst to one
  lane; bundles larger than the per-lane target are split across the
  least-loaded lanes instead.
* **LPT chain placement + overflow spill** — chains go largest-first to
  the least-loaded lane, and overloaded lanes shed singletons afterwards.

Every operation in different groups pairwise commutes, so any assignment
is *correct*; the planner only shapes the critical path.  It never
consults mutable state, so the same window always produces the same plan —
part of the engine's determinism guarantee.

**Op-granular DAG scheduling** (``dag_scheduling=True``): a chain is not
actually atomic — only its non-commuting pairs need an order, and the
component's :class:`~repro.engine.conflict_graph.ComponentDAG` carries
exactly those constraints.  The DAG planner schedules *operations*, not
components, with a critical-path-first list scheduler (highest bottom
level first, earliest-available lane), so a component's makespan drops
from its op count toward its critical path.  The returned plan carries an
explicit ``apply_order`` — a linear extension of every component DAG —
because lane-major application is no longer sound once one chain spans
lanes.  Any linear extension is serially equivalent to submission order:
ops without a DAG path have no non-commute edge and may be transposed
freely.  The default (``dag_scheduling=False``) reproduces the historical
chain-atomic plans bit for bit.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.engine.classifier import OpClassifier
from repro.engine.conflict_graph import ComponentDAG
from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.objects.footprint import anchor_account

#: Knuth's multiplicative hash constant; stable across runs and platforms
#: (unlike ``hash(str)``, which is randomized per process).
_MIX = 2654435761


def stable_account_hash(account: int) -> int:
    return (account * _MIX) & 0xFFFFFFFF


def dag_list_schedule(
    seqs: list[int],
    preds: list[tuple[int, ...]],
    priorities: list[int],
    lane_free: list[float],
    floors: list[float] | None = None,
    cost: float = 1,
) -> list[tuple[float, float, int]]:
    """Critical-path-first list scheduling of equal-cost tasks onto lanes.

    ``preds[i]`` are task indices that must finish before task ``i``
    starts; ``priorities[i]`` is its bottom level (ties broken by
    ``seqs[i]``, i.e. submission order); ``floors[i]`` is an external
    earliest-start (sync-lane completion, cross-window frontier); every
    task runs for ``cost``.  Each task picks the lane giving the earliest
    start.  ``lane_free`` is mutated in place so callers with a
    persistent lane timeline (the cluster node) schedule incrementally.
    Times stay integers when every input is an integer — the planner's
    operation-unit invariant at the default ``cost=1``.

    **Insertion/backfill:** when a floored task starts past a lane's free
    time (its sync lane or frontier holds it back), the idle interval it
    leaves behind is remembered as a *gap*, and later ready tasks slot
    into gaps they fit — a deep-priority op no longer strands a lane idle
    that a ready singleton could fill.  Gap placement is sound: the gap
    predates the lane's current tail, and every precedence and floor
    constraint is still honored through ``est``.

    Returns ``(start, finish, lane)`` per task.  Deterministic: the heap
    orders by (priority desc, seq), the lane choice by (start, free, id),
    and gaps are scanned in ascending start order.
    """
    n = len(seqs)
    succs: list[list[int]] = [[] for _ in range(n)]
    missing = [0] * n
    for i, below in enumerate(preds):
        missing[i] = len(below)
        for p in below:
            succs[p].append(i)
    est = list(floors) if floors is not None else [0.0] * n
    ready = [(-priorities[i], seqs[i], i) for i in range(n) if not missing[i]]
    heapq.heapify(ready)
    out: list[tuple[float, float, int] | None] = [None] * n
    #: Per lane: idle ``[start, end)`` intervals behind its free time,
    #: ascending (this call's own making — a persistent caller's lanes
    #: start gapless, which keeps incremental scheduling conservative).
    gaps: list[list[tuple[float, float]]] = [[] for _ in lane_free]
    scheduled = 0
    while ready:
        _, _, i = heapq.heappop(ready)
        best: tuple | None = None
        for lane_id in range(len(lane_free)):
            placed_in: int | None = None
            start = max(lane_free[lane_id], est[i])
            # Gaps are ascending, so the first fitting gap is this lane's
            # earliest feasible start — and any fitting gap beats the tail.
            for gap_index, (gap_start, gap_end) in enumerate(gaps[lane_id]):
                slot = max(gap_start, est[i])
                if slot + cost <= gap_end:
                    start, placed_in = slot, gap_index
                    break
            key = (start, lane_free[lane_id], lane_id)
            if best is None or key < best[0]:
                best = (key, lane_id, placed_in)
        assert best is not None
        (start, _, lane), _, gap_index = best
        finish = start + cost
        if gap_index is not None:
            gap_start, gap_end = gaps[lane].pop(gap_index)
            # Residual idle slivers stay fillable (sub-intervals of the
            # old gap, so the list stays ascending in place).
            if finish < gap_end:
                gaps[lane].insert(gap_index, (finish, gap_end))
            if gap_start < start:
                gaps[lane].insert(gap_index, (gap_start, start))
        else:
            if start > lane_free[lane]:
                gaps[lane].append((lane_free[lane], start))
            lane_free[lane] = finish
        out[i] = (start, finish, lane)
        scheduled += 1
        for s in succs[i]:
            if finish > est[s]:
                est[s] = finish
            missing[s] -= 1
            if not missing[s]:
                heapq.heappush(ready, (-priorities[s], seqs[s], s))
    if scheduled != n:
        raise EngineError("dependency cycle in DAG schedule")
    return out  # type: ignore[return-value]


@dataclass
class ShardPlan:
    """The lane assignment of one scheduling round."""

    #: Per lane: the operations in application order (chains kept intact
    #: under chain-atomic planning; start-time order under DAG planning).
    lanes: list[list[PendingOp]]
    hot_accounts: list[int]
    #: DAG planning only: the application order (a linear extension of
    #: every component DAG — lane-major application is unsound once a
    #: chain spans lanes) and the scheduled makespan in operation units.
    apply_order: list[PendingOp] | None = None
    dag_makespan: int | None = None
    #: DAG planning only: the ops in ``apply_order`` paired positionally
    #: with their ``(start, finish, lane)`` placements — kept so a tracer
    #: can emit exact per-op spans without re-running the scheduler.
    placements: list[tuple[float, float, int]] | None = None
    #: DAG planning only: component structure metrics of the planned batch
    #: (the cluster node's bills aggregate these).
    dag_critical_path: int = 0
    dag_width: int = 0
    dag_chain_ops: int = 0
    dag_critical_ops: int = 0

    @property
    def critical_path(self) -> int:
        """The round's parallel execution time in operation units: the
        longest lane under chain-atomic planning, the scheduled makespan
        (which includes dependency-induced idle gaps) under DAG planning."""
        if self.dag_makespan is not None:
            return self.dag_makespan
        return max((len(lane) for lane in self.lanes), default=0)

    @property
    def lanes_used(self) -> int:
        return sum(1 for lane in self.lanes if lane)

    @property
    def size(self) -> int:
        return sum(len(lane) for lane in self.lanes)


class ShardPlanner:
    """Deterministic account-hash lane partitioner with hot-account splitting."""

    def __init__(
        self,
        num_lanes: int,
        hot_split: bool = True,
        dag_scheduling: bool = False,
    ) -> None:
        if num_lanes < 1:
            raise EngineError("need at least one lane")
        self.num_lanes = num_lanes
        self.hot_split = hot_split
        #: Op-granular scheduling inside components (off by default until
        #: re-baselined): chains stop being lane-atomic and schedule op by
        #: op along their precedence DAG.
        self.dag_scheduling = dag_scheduling

    # ------------------------------------------------------------------

    def lane_of(self, account: int) -> int:
        """Home lane of an account under pure hash sharding."""
        return stable_account_hash(account) % self.num_lanes

    def primary_account(self, classifier: OpClassifier, op: PendingOp) -> int:
        """The account anchoring lane placement — the shared owner-extraction
        rule (:func:`repro.objects.footprint.anchor_account`): the smallest
        contended account, else written, else observed, else the caller.
        The cluster router uses the same rule for node placement, so an
        operation's lane affinity and its owner node agree."""
        return anchor_account(classifier.footprint(op), op.pid)

    def plan(
        self,
        classifier: OpClassifier,
        chains: list[list[PendingOp]],
        singletons: list[PendingOp],
        dags: list[ComponentDAG] | None = None,
    ) -> ShardPlan:
        """Assign chains (atomic, ordered) and singletons to lanes.

        With ``dag_scheduling`` on and per-chain ``dags`` supplied
        (positionally aligned with ``chains``), chains dissolve into their
        precedence DAGs and the op-granular list scheduler takes over.
        """
        if self.dag_scheduling and dags is not None:
            return self._plan_dag(chains, singletons, dags)
        lanes: list[list[PendingOp]] = [[] for _ in range(self.num_lanes)]
        total = sum(len(chain) for chain in chains) + len(singletons)
        if not total:
            return ShardPlan(lanes=lanes, hot_accounts=[])
        target = math.ceil(total / self.num_lanes)

        def least_loaded() -> int:
            return min(range(self.num_lanes), key=lambda i: (len(lanes[i]), i))

        # Chains: longest-processing-time first, deterministic tie-break on
        # the chain's first sequence number.
        for chain in sorted(chains, key=lambda c: (-len(c), c[0].seq)):
            lanes[least_loaded()].extend(chain)

        # Singletons: bundle by primary account, hash-shard the bundles.
        bundles: dict[int, list[PendingOp]] = {}
        for op in singletons:  # submission-ordered; bundles inherit that
            bundles.setdefault(
                self.primary_account(classifier, op), []
            ).append(op)
        hot_accounts: list[int] = []
        for account, ops in sorted(
            bundles.items(), key=lambda kv: (-len(kv[1]), kv[0])
        ):
            if self.hot_split and len(ops) > target:
                # Hot account: split its commuting burst across lanes.
                hot_accounts.append(account)
                for op in ops:
                    lanes[least_loaded()].append(op)
            else:
                lanes[self.lane_of(account)].extend(ops)

        # Overflow spill: hash collisions can still overload a lane; shed
        # singletons (never chain members) from the tail.  Chains were
        # placed first, so a lane's tail holds its singletons.  With
        # ``hot_split`` off the planner is pure hash sharding — the naive
        # baseline the benchmarks compare against.
        if not self.hot_split:
            return ShardPlan(lanes=lanes, hot_accounts=[])
        chain_ops = {op.seq for chain in chains for op in chain}
        moved = 0
        while moved < total:
            heaviest = max(
                range(self.num_lanes), key=lambda i: (len(lanes[i]), -i)
            )
            lightest = least_loaded()
            if len(lanes[heaviest]) - len(lanes[lightest]) <= 1:
                break
            if len(lanes[heaviest]) <= target or not lanes[heaviest]:
                break
            if lanes[heaviest][-1].seq in chain_ops:
                break  # only singleton tails are movable
            lanes[lightest].append(lanes[heaviest].pop())
            moved += 1
        return ShardPlan(lanes=lanes, hot_accounts=sorted(hot_accounts))

    # -- op-granular DAG scheduling --------------------------------------

    def dag_schedule(
        self,
        chains: list[list[PendingOp]],
        singletons: list[PendingOp],
        dags: list[ComponentDAG],
        lane_free: list,
        floor=0,
        cost: float = 1,
    ) -> tuple[list[PendingOp], list[tuple]]:
        """Schedule ops (not components) with critical-path-first listing.

        Chain ops carry their DAG precedence constraints and their bottom
        level as priority, so the longest remaining dependency chains
        start first; singletons (bottom level 1) backfill.  ``lane_free``
        is a live lane timeline mutated in place and ``floor`` an external
        earliest start, so callers with persistent lanes (the cluster
        node's unit executor) schedule incrementally.  Returns the task
        list and its ``(start, finish, lane)`` placements.
        """
        if len(dags) != len(chains):
            raise EngineError("need one precedence DAG per chain")
        ops: list[PendingOp] = []
        seqs: list[int] = []
        preds: list[tuple[int, ...]] = []
        priorities: list[int] = []
        for chain, dag in zip(chains, dags):
            if len(chain) != len(dag.nodes):
                raise EngineError("chain and its DAG disagree on size")
            base = len(ops)
            position = {node: k for k, node in enumerate(dag.nodes)}
            bottom = dag.bottom_levels()
            for k, op in enumerate(chain):
                node = dag.nodes[k]
                ops.append(op)
                seqs.append(op.seq)
                preds.append(
                    tuple(base + position[p] for p in dag.preds[node])
                )
                priorities.append(bottom[node])
        for op in singletons:
            ops.append(op)
            seqs.append(op.seq)
            preds.append(())
            priorities.append(1)
        placed = dag_list_schedule(
            seqs,
            preds,
            priorities,
            lane_free,
            floors=[floor] * len(ops),
            cost=cost,
        )
        return ops, placed

    def _plan_dag(
        self,
        chains: list[list[PendingOp]],
        singletons: list[PendingOp],
        dags: list[ComponentDAG],
    ) -> ShardPlan:
        """One round's op-granular plan on fresh lanes.  The makespan is
        the largest finish time — possibly below the longest chain's
        length when the component has antichain width to exploit."""
        ops, placed = self.dag_schedule(
            chains, singletons, dags, [0] * self.num_lanes, floor=0
        )
        lanes: list[list[PendingOp]] = [[] for _ in range(self.num_lanes)]
        timeline = sorted(
            range(len(ops)), key=lambda i: (placed[i][0], ops[i].seq)
        )
        for i in timeline:
            lanes[placed[i][2]].append(ops[i])
        return ShardPlan(
            lanes=lanes,
            hot_accounts=[],
            apply_order=[ops[i] for i in timeline],
            placements=[placed[i] for i in timeline],
            dag_makespan=max(
                (int(finish) for _, finish, _ in placed), default=0
            ),
            dag_critical_path=max(
                (dag.critical_path for dag in dags), default=0
            ),
            dag_width=max((dag.width for dag in dags), default=0),
            dag_chain_ops=sum(dag.size for dag in dags),
            dag_critical_ops=sum(dag.critical_path for dag in dags),
        )
