"""Engine measurements: what the theory's trichotomy buys in practice.

Every round the executor records how the window split (wave / barrier /
escalated), the wave's critical path, and the virtual time each phase
consumed.  The aggregate exposes the headline quantities of the paper's
scalability argument: the conflict rate (how much of the traffic actually
needs total order), the escalation rate, and the speedup of lane-parallel
execution over the serial baseline.

All times are in the engine's virtual clock (operation units + simulated
consensus latency), matching the repository's simulation philosophy —
wall-clock threading in Python would measure the GIL, not the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class WaveStats:
    """One scheduling round.

    ``wave_ops`` counts the fast path (singleton components, freely
    parallel); ``barrier_ops`` the chain members ordered locally without
    consensus; ``escalated_ops`` the chain members that paid for an
    ordering lane.  The tiered split of the escalated traffic
    (:mod:`repro.sync`) is ``team_ops`` (k-consensus team lanes) vs
    ``global_ops`` (the Tier ∞ fallback); ``teams`` counts the distinct
    team lanes that ran concurrently this round and ``team_sizes`` their
    k values, one per team-tier component.
    """

    index: int
    window: int
    wave_ops: int
    barrier_ops: int
    escalated_ops: int
    lanes_used: int
    critical_path: int
    hot_accounts: int
    virtual_time: float
    escalation_time: float
    escalation_messages: int
    team_ops: int = 0
    global_ops: int = 0
    team_messages: int = 0
    global_messages: int = 0
    teams: int = 0
    team_sizes: tuple[int, ...] = ()
    #: Pipelined execution only (:mod:`repro.engine.pipeline`): virtual
    #: time this round's units spent blocked on cross-round frontier
    #: dependencies or their sync lanes (``stall_time_contended`` is the
    #: share attributed to contended components), how long this round's
    #: execution overlapped the previous round's, how many windows were in
    #: flight when this one was classified, and the round's absolute
    #: completion on the engine clock.  Barrier rounds leave the defaults.
    stall_time: float = 0.0
    stall_time_contended: float = 0.0
    overlap_time: float = 0.0
    inflight: int = 1
    completed_at: float = 0.0
    #: Op-granular DAG scheduling only (``dag_scheduling=True``): longest
    #: component critical path and widest component antichain this round,
    #: plus the round's chained-op count against the sum of component
    #: critical paths — the intrinsic intra-component parallelism the DAG
    #: schedule can exploit.  Chain-atomic rounds leave the defaults.
    dag_critical_path: int = 0
    dag_width: int = 0
    dag_chain_ops: int = 0
    dag_critical_ops: int = 0


@dataclass
class EngineStats:
    """Aggregate over a full engine run."""

    num_lanes: int = 1
    window: int = 0
    op_cost: float = 1.0

    ops_executed: int = 0
    #: Submissions shed by a bounded mempool (backpressure; see
    #: :class:`repro.engine.mempool.Mempool`).
    rejected_ops: int = 0
    waves: int = 0
    wave_ops: int = 0
    barrier_ops: int = 0
    escalated_ops: int = 0
    #: Tiered split of the escalated traffic (:mod:`repro.sync`): team-lane
    #: ops pay ``O(k²)`` among their spender bound, global ops pay the
    #: shared Tier ∞ lane.
    team_ops: int = 0
    global_ops: int = 0
    team_messages: int = 0
    global_messages: int = 0
    #: ``team size k -> team-lane instances of that size`` over the run.
    k_histogram: dict[int, int] = field(default_factory=dict)
    #: High-water mark of team lanes active in a single round.
    max_concurrent_teams: int = 0
    #: Cross-round pipelining (:mod:`repro.engine.pipeline`): configured
    #: window overlap depth (1 = the historical barrier), total stall time
    #: (split by contended attribution), total execution overlap between
    #: consecutive windows, and the high-water mark of in-flight windows.
    pipeline_depth: int = 1
    stall_time: float = 0.0
    stall_time_contended: float = 0.0
    overlap_time: float = 0.0
    max_inflight_windows: int = 0
    #: Op-granular DAG scheduling (:mod:`repro.engine.conflict_graph`
    #: ``ComponentDAG``): high-water marks of component critical path and
    #: antichain width, plus the run totals behind :attr:`dag_speedup`.
    #: All zero under chain-atomic scheduling (the default).
    max_dag_critical_path: int = 0
    max_dag_width: int = 0
    dag_chain_ops: int = 0
    dag_critical_ops: int = 0
    virtual_time: float = 0.0
    escalation_time: float = 0.0
    escalation_messages: int = 0
    wave_sizes: list[int] = field(default_factory=list)
    critical_paths: list[int] = field(default_factory=list)
    hot_account_waves: int = 0
    rounds: list[WaveStats] = field(default_factory=list)

    # ------------------------------------------------------------------

    def record_round(self, round_stats: WaveStats) -> None:
        self.waves += 1
        self.ops_executed += (
            round_stats.wave_ops
            + round_stats.barrier_ops
            + round_stats.escalated_ops
        )
        self.wave_ops += round_stats.wave_ops
        self.barrier_ops += round_stats.barrier_ops
        self.escalated_ops += round_stats.escalated_ops
        self.team_ops += round_stats.team_ops
        self.global_ops += round_stats.global_ops
        self.team_messages += round_stats.team_messages
        self.global_messages += round_stats.global_messages
        for size in round_stats.team_sizes:
            self.k_histogram[size] = self.k_histogram.get(size, 0) + 1
        self.max_concurrent_teams = max(
            self.max_concurrent_teams, round_stats.teams
        )
        self.stall_time += round_stats.stall_time
        self.stall_time_contended += round_stats.stall_time_contended
        self.overlap_time += round_stats.overlap_time
        self.max_inflight_windows = max(
            self.max_inflight_windows, round_stats.inflight
        )
        self.max_dag_critical_path = max(
            self.max_dag_critical_path, round_stats.dag_critical_path
        )
        self.max_dag_width = max(self.max_dag_width, round_stats.dag_width)
        self.dag_chain_ops += round_stats.dag_chain_ops
        self.dag_critical_ops += round_stats.dag_critical_ops
        self.virtual_time += round_stats.virtual_time
        self.escalation_time += round_stats.escalation_time
        self.escalation_messages += round_stats.escalation_messages
        self.wave_sizes.append(round_stats.wave_ops)
        self.critical_paths.append(round_stats.critical_path)
        if round_stats.hot_accounts:
            self.hot_account_waves += 1
        self.rounds.append(round_stats)

    # -- derived ---------------------------------------------------------

    @property
    def serial_virtual_time(self) -> float:
        """What the same workload costs with one lane and no overlap (the
        escalation time is paid either way)."""
        return self.ops_executed * self.op_cost + self.escalation_time

    @property
    def speedup(self) -> float:
        if self.virtual_time <= 0:
            return 1.0
        return self.serial_virtual_time / self.virtual_time

    @property
    def throughput(self) -> float:
        """Operations per virtual time unit."""
        if self.virtual_time <= 0:
            return 0.0
        return self.ops_executed / self.virtual_time

    @property
    def escalation_rate(self) -> float:
        if not self.ops_executed:
            return 0.0
        return self.escalated_ops / self.ops_executed

    @property
    def fast_path_rate(self) -> float:
        if not self.ops_executed:
            return 0.0
        return self.wave_ops / self.ops_executed

    @property
    def mean_wave_size(self) -> float:
        if not self.wave_sizes:
            return 0.0
        return sum(self.wave_sizes) / len(self.wave_sizes)

    @property
    def dag_speedup(self) -> float:
        """Chained ops over summed component critical paths — how much
        op-granular scheduling shortens components *intrinsically* (1.0
        when every component is a total order, or under chain-atomic
        scheduling where the DAGs are never built)."""
        if not self.dag_critical_ops:
            return 1.0
        return self.dag_chain_ops / self.dag_critical_ops

    @property
    def mean_team_size(self) -> float:
        """Mean *k* over all team-lane instances — the quantity the tiered
        claim turns on: tiered sync wins once mean k ≪ n."""
        total = sum(self.k_histogram.values())
        if not total:
            return 0.0
        return (
            sum(size * count for size, count in self.k_histogram.items())
            / total
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (used by ``benchmarks/bench_engine.py``)."""
        return {
            "num_lanes": self.num_lanes,
            "window": self.window,
            "op_cost": self.op_cost,
            "ops_executed": self.ops_executed,
            "rejected_ops": self.rejected_ops,
            "waves": self.waves,
            "wave_ops": self.wave_ops,
            "barrier_ops": self.barrier_ops,
            "escalated_ops": self.escalated_ops,
            "team_ops": self.team_ops,
            "global_ops": self.global_ops,
            "team_messages": self.team_messages,
            "global_messages": self.global_messages,
            "k_histogram": {
                str(k): v for k, v in sorted(self.k_histogram.items())
            },
            "mean_team_size": self.mean_team_size,
            "max_concurrent_teams": self.max_concurrent_teams,
            "pipeline_depth": self.pipeline_depth,
            "stall_time": self.stall_time,
            "stall_time_contended": self.stall_time_contended,
            "overlap_time": self.overlap_time,
            "max_inflight_windows": self.max_inflight_windows,
            "max_dag_critical_path": self.max_dag_critical_path,
            "max_dag_width": self.max_dag_width,
            "dag_chain_ops": self.dag_chain_ops,
            "dag_critical_ops": self.dag_critical_ops,
            "dag_speedup": self.dag_speedup,
            "escalation_rate": self.escalation_rate,
            "fast_path_rate": self.fast_path_rate,
            "mean_wave_size": self.mean_wave_size,
            "max_critical_path": max(self.critical_paths, default=0),
            "hot_account_waves": self.hot_account_waves,
            "virtual_time": self.virtual_time,
            "serial_virtual_time": self.serial_virtual_time,
            "speedup": self.speedup,
            "throughput": self.throughput,
            "escalation_time": self.escalation_time,
            "escalation_messages": self.escalation_messages,
        }

    def registry(self):
        """This summary re-derived as a :class:`repro.obs.MetricsRegistry`
        — every numeric leaf of :meth:`as_dict` becomes a dotted-name
        gauge, so renderers and exporters can consume engine and cluster
        stats through one uniform read interface."""
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry.from_summary(self.as_dict())
