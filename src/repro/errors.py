"""Exception hierarchy for the repro library.

The library distinguishes *domain errors* (malformed invocations that lie
outside the object's operation set ``O``; these raise) from *failed
operations* (invocations inside ``O`` whose sequential specification returns
``FALSE``; these return normally).  The distinction mirrors the paper's
Definition 3, where e.g. ``transfer`` with insufficient balance is a valid
transition returning ``FALSE``, whereas a transfer of a negative amount is
simply not an operation of the object.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SpecificationError(ReproError):
    """An invocation lies outside the object's operation set ``O``."""


class UnknownOperationError(SpecificationError):
    """The operation name is not part of the object type."""


class InvalidArgumentError(SpecificationError):
    """Operation arguments are outside the specification's domain."""


class ProcessCrashedError(ReproError):
    """An interaction was attempted with a crashed process."""


class SchedulingError(ReproError):
    """The scheduler was asked to perform an impossible step."""


class ExplorationLimitError(ReproError):
    """An exhaustive exploration exceeded its configured budget."""


class HistoryError(ReproError):
    """A concurrent history is malformed (e.g. response without invocation)."""


class NetworkError(ReproError):
    """A message-passing simulation was configured or used inconsistently."""


class ProtocolError(ReproError):
    """A distributed protocol reached an internally inconsistent state."""


class EngineError(ReproError):
    """The parallel execution engine was configured or driven inconsistently."""


class MempoolFullError(EngineError):
    """A bounded mempool rejected a submission at capacity (backpressure).

    The typed rejection lets admission edges — the cluster router in
    particular — distinguish "shed this operation and tell the client" from
    genuine misconfiguration.  Rejected submissions are counted by the
    mempool (``Mempool.rejected``) and surfaced in the engine/cluster stats.
    """


class ClusterError(ReproError):
    """The distributed token-processing cluster was configured or driven
    inconsistently (shard-ownership, lease protocol, or round wiring)."""


class StreamError(ReproError):
    """An open-loop arrival stream was configured or driven
    inconsistently (unsorted arrivals, missing tracer, stalled drain)."""
