"""repro.faults — deterministic fault injection for the token cluster.

The cluster runs on a virtual-time simulator (:mod:`repro.net`), so
faults can be *scheduled* the way everything else is: a
:class:`FaultSchedule` declares crash/restart events at virtual
timestamps plus message-type drop and delay rules, and a
:class:`FaultInjector` wires that plan into one run — it plants the
crash/restart events on the simulator, filters every network send and
delivery through the plan, and fires callbacks the cluster uses to drive
the node crash/restart lifecycle and the router's fail-over.

Two properties make crash experiments reproducible and composable:

* **Determinism** — randomized drop/delay rules draw from a dedicated
  seeded stream, never from the network's latency stream, so enabling a
  fault plan perturbs *nothing* about the fault-free schedule except the
  faults themselves, and the same plan replays identically every run.
* **Fencing** — the router declares a node dead on timeout evidence
  alone (it cannot read the schedule).  ``fence()`` lets it cut a
  suspected node off from the network, so even a *falsely* suspected
  node — alive, merely slow — can no longer deliver stale results or
  grants.  Exactly-once application is then guaranteed by the cluster's
  commit-side dedup, not by the accuracy of failure detection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.config import FaultConfig
from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Message
    from repro.net.simulation import Simulator

__all__ = ["CrashEvent", "FaultInjector", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One node crash at ``at``; ``restart_at=None`` = never rejoins."""

    node: int
    at: float
    restart_at: float | None = None


class FaultSchedule:
    """A validated, immutable fault plan (the runtime form of
    :class:`~repro.config.FaultConfig`)."""

    def __init__(
        self,
        crashes=(),
        drops=(),
        delays=(),
        seed: int = 0,
    ) -> None:
        # Reuse the config-layer validation so a schedule built directly
        # obeys the same invariants as one loaded from a bench JSON.
        config = FaultConfig(
            enabled=True,
            crashes=tuple(
                (c.node, c.at, c.restart_at)
                if isinstance(c, CrashEvent)
                else tuple(c)
                for c in crashes
            ),
            drops=tuple(drops),
            delays=tuple(delays),
            seed=seed,
        )
        self.crashes = tuple(
            CrashEvent(node, at, restart_at)
            for node, at, restart_at in config.crashes
        )
        self.drops = config.drops
        self.delays = config.delays
        self.seed = seed

    @classmethod
    def from_config(cls, config: FaultConfig) -> "FaultSchedule | None":
        """The schedule a config describes (``None`` when disabled)."""
        if not config.enabled:
            return None
        return cls(
            crashes=config.crashes,
            drops=config.drops,
            delays=config.delays,
            seed=config.seed,
        )

    @property
    def any_faults(self) -> bool:
        return bool(self.crashes or self.drops or self.delays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule(crashes={len(self.crashes)}, "
            f"drops={len(self.drops)}, delays={len(self.delays)}, "
            f"seed={self.seed})"
        )


class FaultInjector:
    """Wires a :class:`FaultSchedule` into one simulator + network run.

    The injector owns the ``down`` set — nodes currently crashed *or*
    fenced by the router — and is consulted by the network on every send
    and delivery.  Crash/restart events are planted on the simulator at
    :meth:`install` time; the cluster registers ``on_crash``/
    ``on_restart`` callbacks to drive the node lifecycle and the
    router's rejoin rebalancing.
    """

    def __init__(self, schedule: FaultSchedule, simulator: "Simulator"):
        self.schedule = schedule
        self.simulator = simulator
        self.down: set[int] = set()
        self._rng = random.Random(schedule.seed)
        self.on_crash: Callable[[int], None] | None = None
        self.on_restart: Callable[[int], None] | None = None
        self.crashes = 0
        self.restarts = 0
        self.fenced = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self._installed = False

    # -- lifecycle ------------------------------------------------------

    def install(self) -> None:
        """Plant every scheduled crash (and restart) on the simulator."""
        if self._installed:
            raise ClusterError("fault schedule already installed")
        self._installed = True
        for crash in self.schedule.crashes:
            self.simulator.schedule_at(
                crash.at, lambda c=crash: self._crash(c)
            )

    def _crash(self, crash: CrashEvent) -> None:
        if crash.node not in self.down:
            self.down.add(crash.node)
            self.crashes += 1
            if self.on_crash is not None:
                self.on_crash(crash.node)
        if crash.restart_at is not None:
            self.simulator.schedule_at(
                crash.restart_at, lambda: self._restart(crash.node)
            )

    def _restart(self, node: int) -> None:
        if node not in self.down:
            return
        self.down.discard(node)
        self.restarts += 1
        if self.on_restart is not None:
            self.on_restart(node)

    def fence(self, node: int) -> None:
        """Cut a router-suspected node off from the network.  Idempotent;
        a fenced node that was merely slow stays isolated until a
        scheduled restart (if any) readmits it."""
        if node not in self.down:
            self.down.add(node)
            self.fenced += 1

    def is_down(self, node: int) -> bool:
        return node in self.down

    # -- network filter -------------------------------------------------

    def disposition(self, message: "Message") -> tuple[bool, float]:
        """``(dropped, extra_delay)`` for one send, at send time.

        A crashed/fenced endpoint loses the message outright; otherwise
        the drop rules are consulted (first match wins) and the delay
        rules accumulate.  The dice stream is consumed in declaration
        order, so runs are reproducible for a fixed schedule.
        """
        if message.src in self.down or message.dst in self.down:
            self.messages_dropped += 1
            return True, 0.0
        now = self.simulator.now
        for message_type, probability, start, end in self.schedule.drops:
            if message_type != message.type or not start <= now < end:
                continue
            if probability >= 1.0 or self._rng.random() < probability:
                self.messages_dropped += 1
                return True, 0.0
        extra = 0.0
        for message_type, amount, probability in self.schedule.delays:
            if message_type != message.type:
                continue
            if probability >= 1.0 or self._rng.random() < probability:
                extra += amount
        if extra > 0.0:
            self.messages_delayed += 1
        return False, extra
