"""The consensus-based baseline ledger (total-order smart-contract
execution)."""

from repro.ledger.blockchain import (
    AppliedRecord,
    LedgerNode,
    LedgerStats,
    LedgerTransaction,
    build_ledger,
    measure_ledger,
)

__all__ = [
    "AppliedRecord",
    "LedgerNode",
    "LedgerStats",
    "LedgerTransaction",
    "build_ledger",
    "measure_ledger",
]
