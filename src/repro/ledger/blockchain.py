"""The consensus-based baseline: a replicated ERC20 ledger over total order.

Every token operation — even a plain owner ``transfer`` — is submitted to
the global total-order broadcast and executed by every replica in the
committed order.  This is the execution model of today's smart-contract
blockchains that the paper argues over-synchronizes: the ERC20 object at the
deployed state has consensus number 1, yet the baseline pays the full
``O(n²)``-message, leader-bottlenecked consensus cost per operation.

The benchmarks compare this baseline against the §7-style dynamic network in
:mod:`repro.dynamic.dynamic_token` on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.network import Network
from repro.net.total_order import TotalOrderNode
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class LedgerTransaction:
    """A client-signed token operation submitted to the chain."""

    pid: int
    operation: Operation
    #: Client-side metadata for latency accounting.
    tx_id: int
    submitted_at: float

    def __repr__(self) -> str:  # keep digests stable and compact
        return f"tx({self.tx_id},{self.pid},{self.operation})"


@dataclass
class AppliedRecord:
    """Execution record for one transaction on one replica."""

    tx_id: int
    response: Any
    sequence: int
    applied_at: float


class LedgerNode(TotalOrderNode):
    """A replica executing ERC20 transactions in total order."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        num_nodes: int,
        token_type: ERC20TokenType,
        leader: int = 0,
        max_batch: int = 64,
    ) -> None:
        super().__init__(
            node_id,
            network,
            num_nodes,
            deliver=self._execute_batch,
            leader=leader,
            max_batch=max_batch,
        )
        self.token_type = token_type
        self.token_state: TokenState = token_type.initial_state()
        self.applied: list[AppliedRecord] = []
        self._tx_counter = 0

    # -- client API -----------------------------------------------------------

    def submit_operation(self, pid: int, operation: Operation) -> int:
        """Submit a token operation on behalf of process ``pid``; returns the
        transaction id used for latency accounting."""
        self._tx_counter += 1
        tx_id = self.node_id * 1_000_000 + self._tx_counter
        tx = LedgerTransaction(
            pid=pid, operation=operation, tx_id=tx_id, submitted_at=self.now
        )
        self.submit(tx)
        return tx_id

    # -- execution --------------------------------------------------------------

    def _execute_batch(self, sequence: int, txs: list[Any]) -> None:
        for tx in txs:
            self.token_state, response = self.token_type.apply(
                self.token_state, tx.pid, tx.operation
            )
            self.applied.append(
                AppliedRecord(
                    tx_id=tx.tx_id,
                    response=response,
                    sequence=sequence,
                    applied_at=self.now,
                )
            )


@dataclass
class LedgerStats:
    """Aggregate measurements for one ledger run."""

    operations: int
    messages: int
    messages_per_op: float
    mean_latency: float
    p99_latency: float
    makespan: float
    by_type: dict[str, int] = field(default_factory=dict)


def measure_ledger(
    nodes: list[LedgerNode],
    submissions: dict[int, float],
) -> LedgerStats:
    """Compute latency/throughput statistics after a simulation run.

    Args:
        nodes: All replicas (node 0's applied log defines commit times).
        submissions: ``tx_id -> submit time`` recorded by the workload.
    """
    reference = nodes[0]
    latencies: list[float] = []
    for record in reference.applied:
        submitted = submissions.get(record.tx_id)
        if submitted is not None:
            latencies.append(record.applied_at - submitted)
    latencies.sort()
    operations = len(latencies)
    network = reference.network
    makespan = max((r.applied_at for r in reference.applied), default=0.0)
    return LedgerStats(
        operations=operations,
        messages=network.stats.messages_sent,
        messages_per_op=(
            network.stats.messages_sent / operations if operations else 0.0
        ),
        mean_latency=sum(latencies) / operations if operations else 0.0,
        p99_latency=(
            latencies[min(operations - 1, int(0.99 * operations))]
            if operations
            else 0.0
        ),
        makespan=makespan,
        by_type=dict(network.stats.by_type),
    )


def build_ledger(
    simulator_network: Network,
    num_nodes: int,
    token_type: ERC20TokenType,
    max_batch: int = 64,
) -> list[LedgerNode]:
    """Instantiate ``num_nodes`` replicas on an existing network."""
    return [
        LedgerNode(
            node_id,
            simulator_network,
            num_nodes,
            token_type,
            max_batch=max_batch,
        )
        for node_id in range(num_nodes)
    ]
