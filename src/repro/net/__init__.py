"""Message-passing substrate: simulator, network, reliable broadcast, total
order (paper §1/§7 context)."""

from repro.net.network import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Message,
    Network,
    NetworkStats,
    UniformLatency,
)
from repro.net.node import Node
from repro.net.reliable_broadcast import (
    BrachaBroadcast,
    FifoReliableBroadcast,
    ReliableBroadcastNode,
)
from repro.net.simulation import EventHandle, Simulator
from repro.net.total_order import TotalOrderNode

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "Network",
    "NetworkStats",
    "UniformLatency",
    "Node",
    "BrachaBroadcast",
    "FifoReliableBroadcast",
    "ReliableBroadcastNode",
    "EventHandle",
    "Simulator",
    "TotalOrderNode",
]
