"""Message-passing substrate: simulator, network, reliable broadcast, total
order (paper §1/§7 context)."""

from repro.net.network import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Message,
    Network,
    NetworkStats,
    UniformLatency,
)
from repro.net.node import Node
from repro.net.reliable_broadcast import (
    BrachaBroadcast,
    FifoReliableBroadcast,
    ReliableBroadcastNode,
)
from repro.net.simulation import EventHandle, Simulator
from repro.net.team_lanes import LaneOrder, PoolRound, TeamLane, TeamLanePool
from repro.net.total_order import TotalOrderNode

__all__ = [
    "LaneOrder",
    "PoolRound",
    "TeamLane",
    "TeamLanePool",
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "Network",
    "NetworkStats",
    "UniformLatency",
    "Node",
    "BrachaBroadcast",
    "FifoReliableBroadcast",
    "ReliableBroadcastNode",
    "EventHandle",
    "Simulator",
    "TotalOrderNode",
]
