"""Simulated point-to-point network with latency models and statistics.

Message complexity and latency are the quantities behind the paper's
scalability claims; the network counts every message (globally and per
message type) and samples per-link latencies from a pluggable, seeded model,
so every experiment is reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import NetworkError
from repro.net.simulation import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True, slots=True)
class Message:
    """A typed protocol message."""

    type: str
    src: int
    dst: int
    payload: Any = None

    def __str__(self) -> str:
        return f"{self.type} {self.src}->{self.dst}"


class LatencyModel(ABC):
    """Per-link latency distribution."""

    @abstractmethod
    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        """One-way delay for a message from ``src`` to ``dst``."""


class ConstantLatency(LatencyModel):
    """Fixed one-way delay (useful for analytically checkable tests)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise NetworkError("latency must be non-negative")
        self.delay = delay

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise NetworkError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays (median ``exp(mu)``), the shape WAN latencies have."""

    def __init__(self, mu: float = 0.0, sigma: float = 0.25) -> None:
        self.mu = mu
        self.sigma = sigma

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


@dataclass
class NetworkStats:
    """Counters maintained by the network.

    Besides the global and per-type tallies, sends and deliveries are
    billed per node (``sent_by_node`` / ``delivered_by_node``) — the
    per-node message bills the cluster layer (:mod:`repro.cluster`)
    reports for its load-imbalance and coordination-cost accounting.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    sent_by_node: dict[int, int] = field(default_factory=dict)
    delivered_by_node: dict[int, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.by_type[message.type] = self.by_type.get(message.type, 0) + 1
        self.sent_by_node[message.src] = (
            self.sent_by_node.get(message.src, 0) + 1
        )

    def record_delivery(self, message: Message) -> None:
        self.messages_delivered += 1
        self.delivered_by_node[message.dst] = (
            self.delivered_by_node.get(message.dst, 0) + 1
        )


class Network:
    """Reliable (unless partitioned) asynchronous point-to-point links."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.rng = random.Random(seed)
        self.nodes: dict[int, "Node"] = {}
        self.stats = NetworkStats()
        #: Partition: when set, messages crossing group boundaries are dropped.
        self._partition: list[frozenset[int]] | None = None
        #: Fault injector (:class:`repro.faults.FaultInjector`); when set
        #: it filters every send (crashed endpoints, drop rules, extra
        #: delays) and every delivery (destination crashed in flight).
        self.faults = None

    # ------------------------------------------------------------------

    def register(self, node: "Node") -> None:
        if node.node_id in self.nodes:
            raise NetworkError(f"node {node.node_id} already registered")
        self.nodes[node.node_id] = node

    @property
    def node_ids(self) -> list[int]:
        return sorted(self.nodes)

    def partition(self, *groups: frozenset[int] | set[int]) -> None:
        """Install a partition; messages across groups are dropped."""
        self._partition = [frozenset(group) for group in groups]

    def heal(self) -> None:
        """Remove any installed partition."""
        self._partition = None

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        for group in self._partition:
            if src in group:
                return dst not in group
        return False  # src not in any group: unaffected

    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, type: str, payload: Any = None) -> None:
        """Send one message; delivery is scheduled after a sampled latency."""
        if dst not in self.nodes:
            raise NetworkError(f"unknown destination node {dst}")
        message = Message(type=type, src=src, dst=dst, payload=payload)
        self.stats.record_send(message)
        if self._crosses_partition(src, dst):
            self.stats.messages_dropped += 1
            return
        extra = 0.0
        if self.faults is not None:
            dropped, extra = self.faults.disposition(message)
            if dropped:
                self.stats.messages_dropped += 1
                return
        delay = self.latency.sample(src, dst, self.rng) if src != dst else 0.0
        node = self.nodes[dst]

        def deliver() -> None:
            # A destination that crashed while the message was in flight
            # loses it — in-flight traffic is not queued across a crash.
            if self.faults is not None and self.faults.is_down(dst):
                self.stats.messages_dropped += 1
                self.faults.messages_dropped += 1
                return
            self.stats.record_delivery(message)
            node.on_message(message)

        self.simulator.schedule(delay + extra, deliver)

    def broadcast(self, src: int, type: str, payload: Any = None) -> None:
        """Send to every node, including the sender (self-delivery is local
        and immediate, matching the usual broadcast abstractions)."""
        for dst in self.node_ids:
            self.send(src, dst, type, payload)
