"""Protocol node base class with typed message dispatch."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError
from repro.net.network import Message, Network


class Node:
    """A network participant; subclasses register per-type message handlers.

    Handler convention: a message of type ``"foo"`` is dispatched to
    ``self.handle_foo(message)``; unknown types raise, surfacing wiring bugs
    immediately instead of silently dropping protocol traffic.
    """

    def __init__(self, node_id: int, network: Network) -> None:
        self.node_id = node_id
        self.network = network
        network.register(self)
        self._handlers: dict[str, Callable[[Message], None]] = {}

    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        handler = self._handlers.get(message.type)
        if handler is None:
            handler = getattr(self, f"handle_{message.type}", None)
            if handler is None:
                raise NetworkError(
                    f"node {self.node_id} has no handler for {message.type!r}"
                )
            self._handlers[message.type] = handler
        handler(message)

    # -- convenience ------------------------------------------------------

    def send(self, dst: int, type: str, payload: Any = None) -> None:
        self.network.send(self.node_id, dst, type, payload)

    def broadcast(self, type: str, payload: Any = None) -> None:
        self.network.broadcast(self.node_id, type, payload)

    def schedule(self, delay: float, callback: Callable[[], None]):
        """Schedule a local timer; returns the :class:`EventHandle` so
        fault-tolerant subclasses can cancel pending work on crash."""
        return self.network.simulator.schedule(delay, callback)

    @property
    def now(self) -> float:
        return self.network.simulator.now
