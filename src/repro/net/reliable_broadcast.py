"""Byzantine reliable broadcast (Bracha) and a FIFO ordering layer.

The consensus-free payment systems the paper points to ([6] Collins et al.)
rest on Byzantine reliable broadcast rather than total order.  This module
implements the classic Bracha protocol for ``n = 3f + 1`` nodes:

* the sender broadcasts ``SEND(m)``;
* on the first ``SEND`` for an instance, a node broadcasts ``ECHO(m)``;
* on ``2f + 1`` matching ``ECHO`` s — or ``f + 1`` matching ``READY`` s — a
  node broadcasts ``READY(m)`` (once);
* on ``2f + 1`` matching ``READY`` s, a node *delivers* ``m``.

Guarantees (with at most ``f`` Byzantine nodes): validity (a correct sender's
message is delivered), consistency (no two correct nodes deliver different
messages for the same instance — equivocation is filtered by the quorum
intersection), and totality (if one correct node delivers, all do).

:class:`FifoReliableBroadcast` adds per-sender FIFO order by buffering
deliveries until all predecessors are delivered — the "source ordering" that
broadcast-based payment systems need for per-account operation logs.

Message complexity per broadcast: ``n`` SEND + ``n²`` ECHO + ``n²`` READY
— quadratic but *leaderless and concurrent across instances*, which is
exactly the structural advantage over total-order protocols that the
benchmarks quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetworkError
from repro.net.network import Message, Network
from repro.net.node import Node

#: Delivery callback: (sender, sequence_number, payload).
DeliverFn = Callable[[int, int, Any], None]


def _digest(value: Any) -> str:
    """A stable comparison key for payload equality under quorum counting."""
    return repr(value)


@dataclass
class _Instance:
    """Per-(sender, seq) broadcast instance state."""

    echoed: bool = False
    readied: bool = False
    delivered: bool = False
    echoes: dict[str, set[int]] = field(default_factory=dict)
    readies: dict[str, set[int]] = field(default_factory=dict)
    payloads: dict[str, Any] = field(default_factory=dict)


class BrachaBroadcast:
    """Bracha reliable broadcast endpoint embedded in a :class:`Node`.

    The owner node must route messages of types ``brb_send``, ``brb_echo``
    and ``brb_ready`` to :meth:`handle_send` / :meth:`handle_echo` /
    :meth:`handle_ready`; :class:`ReliableBroadcastNode` below does this
    wiring for standalone use.
    """

    def __init__(
        self,
        node: Node,
        num_nodes: int,
        deliver: DeliverFn,
        max_faulty: int | None = None,
    ) -> None:
        self.node = node
        self.n = num_nodes
        self.f = (num_nodes - 1) // 3 if max_faulty is None else max_faulty
        if self.n < 3 * self.f + 1:
            raise NetworkError(
                f"Bracha broadcast needs n >= 3f+1; got n={self.n}, f={self.f}"
            )
        self.deliver = deliver
        self._instances: dict[tuple[int, int], _Instance] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------

    def _instance(self, sender: int, seq: int) -> _Instance:
        return self._instances.setdefault((sender, seq), _Instance())

    @property
    def echo_quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def ready_quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def ready_amplification(self) -> int:
        return self.f + 1

    # ------------------------------------------------------------------

    def broadcast(self, payload: Any) -> int:
        """Reliably broadcast ``payload``; returns the instance sequence."""
        seq = self._next_seq
        self._next_seq += 1
        self.node.broadcast(
            "brb_send",
            {"sender": self.node.node_id, "seq": seq, "value": payload},
        )
        return seq

    # -- handlers -----------------------------------------------------------

    def handle_send(self, message: Message) -> None:
        body = message.payload
        sender, seq, value = body["sender"], body["seq"], body["value"]
        if message.src != sender:
            return  # only the original sender may open its own instance
        instance = self._instance(sender, seq)
        if instance.echoed:
            return
        instance.echoed = True
        self.node.broadcast(
            "brb_echo", {"sender": sender, "seq": seq, "value": value}
        )

    def handle_echo(self, message: Message) -> None:
        body = message.payload
        sender, seq, value = body["sender"], body["seq"], body["value"]
        instance = self._instance(sender, seq)
        key = _digest(value)
        instance.payloads.setdefault(key, value)
        voters = instance.echoes.setdefault(key, set())
        voters.add(message.src)
        if len(voters) >= self.echo_quorum and not instance.readied:
            instance.readied = True
            self.node.broadcast(
                "brb_ready", {"sender": sender, "seq": seq, "value": value}
            )

    def handle_ready(self, message: Message) -> None:
        body = message.payload
        sender, seq, value = body["sender"], body["seq"], body["value"]
        instance = self._instance(sender, seq)
        key = _digest(value)
        instance.payloads.setdefault(key, value)
        voters = instance.readies.setdefault(key, set())
        voters.add(message.src)
        if len(voters) >= self.ready_amplification and not instance.readied:
            instance.readied = True
            self.node.broadcast(
                "brb_ready", {"sender": sender, "seq": seq, "value": value}
            )
        if len(voters) >= self.ready_quorum and not instance.delivered:
            instance.delivered = True
            self.deliver(sender, seq, instance.payloads[key])


class FifoReliableBroadcast:
    """Per-sender FIFO layer over :class:`BrachaBroadcast`.

    Buffers out-of-order deliveries so the application sees each sender's
    broadcasts in sending order — the per-account operation logs of
    broadcast-based payments rely on this.
    """

    def __init__(
        self,
        node: Node,
        num_nodes: int,
        deliver: DeliverFn,
        max_faulty: int | None = None,
    ) -> None:
        self.app_deliver = deliver
        self._expected: dict[int, int] = {}
        self._buffered: dict[int, dict[int, Any]] = {}
        self.brb = BrachaBroadcast(
            node, num_nodes, self._on_brb_deliver, max_faulty
        )

    def broadcast(self, payload: Any) -> int:
        return self.brb.broadcast(payload)

    def _on_brb_deliver(self, sender: int, seq: int, payload: Any) -> None:
        buffered = self._buffered.setdefault(sender, {})
        buffered[seq] = payload
        expected = self._expected.get(sender, 0)
        while expected in buffered:
            self.app_deliver(sender, expected, buffered.pop(expected))
            expected += 1
        self._expected[sender] = expected

    # -- handler pass-throughs (for the owning node's dispatch) -----------

    def handle_send(self, message: Message) -> None:
        self.brb.handle_send(message)

    def handle_echo(self, message: Message) -> None:
        self.brb.handle_echo(message)

    def handle_ready(self, message: Message) -> None:
        self.brb.handle_ready(message)


class ReliableBroadcastNode(Node):
    """A standalone node running one Bracha endpoint (tests, examples)."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        num_nodes: int,
        fifo: bool = False,
        max_faulty: int | None = None,
    ) -> None:
        super().__init__(node_id, network)
        self.delivered: list[tuple[int, int, Any]] = []

        def record(sender: int, seq: int, payload: Any) -> None:
            self.delivered.append((sender, seq, payload))

        if fifo:
            self.endpoint: FifoReliableBroadcast | BrachaBroadcast = (
                FifoReliableBroadcast(self, num_nodes, record, max_faulty)
            )
        else:
            self.endpoint = BrachaBroadcast(self, num_nodes, record, max_faulty)

    def broadcast_value(self, payload: Any) -> int:
        return self.endpoint.broadcast(payload)

    def handle_brb_send(self, message: Message) -> None:
        self.endpoint.handle_send(message)

    def handle_brb_echo(self, message: Message) -> None:
        self.endpoint.handle_echo(message)

    def handle_brb_ready(self, message: Message) -> None:
        self.endpoint.handle_ready(message)
