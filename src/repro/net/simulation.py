"""Virtual-time discrete-event simulation.

The paper's motivation (§1, §7) contrasts consensus-based blockchains with
broadcast-based token networks.  Comparing those *protocol structures* needs
an asynchronous message-passing substrate; real wall-clock threading in
Python would measure the GIL, not the protocols, so the library uses a
deterministic event-driven simulator with virtual time: every message
delivery and timer is an event on a priority queue, and latency/throughput
are measured in simulated time units (interpreted as milliseconds in the
benchmarks).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetworkError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise NetworkError("cannot schedule events in the past")
        event = _Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns events processed."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = max(self.now, event.time)
            event.callback()
            processed += 1
        self.events_processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)
