"""Virtual-time discrete-event simulation.

The paper's motivation (§1, §7) contrasts consensus-based blockchains with
broadcast-based token networks.  Comparing those *protocol structures* needs
an asynchronous message-passing substrate; real wall-clock threading in
Python would measure the GIL, not the protocols, so the library uses a
deterministic event-driven simulator with virtual time: every message
delivery and timer is an event on a priority queue, and latency/throughput
are measured in simulated time units (interpreted as milliseconds in the
benchmarks).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    def __init__(self, event: _Event, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        if not self._event.cancelled:
            self._event.cancelled = True
            self._simulator._note_cancelled()

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still scheduled (not cancelled and not
        yet consumed by the loop)."""
        return not self._event.cancelled


class Simulator:
    """A minimal, deterministic discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._cancelled = 0
        self.events_processed = 0
        self.purges = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise NetworkError("cannot schedule events in the past")
        event = _Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual timestamp — the
        hook fault plans use to plant crash/restart events declared in
        absolute time (:mod:`repro.faults`)."""
        if time < self.now:
            raise NetworkError("cannot schedule events in the past")
        return self.schedule(time - self.now, callback)

    def _note_cancelled(self) -> None:
        """Track tombstones; compact the heap once they dominate.

        A cancelled event used to linger until popped, so workloads that
        schedule-and-cancel (timeouts, retransmission timers) grew the heap
        without bound.  Rebuilding costs ``O(live)`` and is amortized free:
        it runs only when more than half the queue is dead.
        """
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._queue = [
                event for event in self._queue if not event.cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0
            self.purges += 1

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns events processed."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = max(self.now, event.time)
            # Mark consumed so a late ``cancel()`` on the handle is a no-op
            # rather than a phantom tombstone in the bookkeeping.
            event.cancelled = True
            event.callback()
            processed += 1
        self.events_processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue) - self._cancelled

    @property
    def next_event_time(self) -> float | None:
        """Virtual time of the earliest live event, ``None`` when the
        queue holds nothing runnable — what an external driver may
        advance :attr:`now` up to without skipping scheduled work."""
        live = min(
            (event for event in self._queue if not event.cancelled),
            default=None,
        )
        return live.time if live is not None else None

    @property
    def queued_entries(self) -> int:
        """Heap entries including tombstones (for leak diagnostics)."""
        return len(self._queue)
