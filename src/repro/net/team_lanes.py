"""Team lanes: a pool of independent total-order instances on one simulator.

The paper's Theorems 2–4 say a token state whose largest enabled-spender
set has size *k* is exactly a *k*-consensus object — so a contended
component whose spenders number *k* only ever needs agreement among those
*k* participants, not among all *n* processes.  A :class:`TeamLane` is the
operational form of that observation: a private
:class:`~repro.net.total_order.TotalOrderNode` replica group sized to one
team, paying the three-phase quorum pattern over *k* nodes (``O(k²)``
messages) instead of the global lane's ``O(n²)``.

A :class:`TeamLanePool` keeps one lane per distinct team, **all on one
shared** :class:`~repro.net.simulation.Simulator`: each lane has its own
:class:`~repro.net.network.Network` (so node ids and broadcasts never
cross lanes), but their events interleave on the common virtual clock —
submitting batches to several lanes and running the simulator once makes
the independent mini-consensus instances genuinely concurrent, which is
the whole scalability point: the round's synchronization phase costs the
*slowest team*, not the sum of teams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import NetworkError
from repro.net.network import ConstantLatency, LatencyModel, Network
from repro.net.simulation import Simulator
from repro.net.total_order import TotalOrderNode

#: Seed mixer so each lane's latency stream is distinct but reproducible.
_SEED_MIX = 1_000_003


class TeamLane:
    """One team-scoped total-order instance (k replicas, private network)."""

    def __init__(
        self,
        team: frozenset[int],
        simulator: Simulator,
        latency: LatencyModel,
        seed: int,
        max_batch: int = 64,
    ) -> None:
        if not team:
            raise NetworkError("a team lane needs at least one participant")
        self.team = frozenset(team)
        self.k = len(self.team)
        #: The lane's network shares the pool's simulator but is otherwise
        #: private: local node ids 0..k-1, broadcasts confined to the team.
        self.network = Network(simulator, latency, seed=seed)
        #: The current round's deliveries (drained by the pool each round,
        #: so a long-lived lane never accumulates past operations) and
        #: their per-operation delivery timestamps.
        self.delivered: list[Any] = []
        self.delivery_times: list[float] = []
        self.last_delivery: float = 0.0
        self.nodes = [
            TotalOrderNode(
                node_id,
                self.network,
                self.k,
                deliver=self._on_deliver if node_id == 0 else None,
                max_batch=max_batch,
            )
            for node_id in range(self.k)
        ]
        self.batches = 0
        self.total_messages = 0

    # ------------------------------------------------------------------

    def _on_deliver(self, sequence: int, txs: list) -> None:
        now = self.network.simulator.now
        self.delivered.extend(txs)
        self.delivery_times.extend(now for _ in txs)
        self.last_delivery = now

    def submit(self, ops: Iterable[Any]) -> int:
        """Queue a submission-ordered batch at the lane's leader; returns
        the number of operations submitted.  The caller runs the shared
        simulator (usually via :meth:`TeamLanePool.order`)."""
        count = 0
        leader = self.nodes[0]
        for op in ops:
            leader.submit(op)
            count += 1
        return count


@dataclass(frozen=True, slots=True)
class LaneOrder:
    """Outcome of one team batch within a pool round."""

    team: frozenset[int]
    ordered: tuple
    #: Completion relative to the round's start on the shared clock: the
    #: virtual time at which this batch's *own* last operation was
    #: delivered (batches queued behind it on a shared lane finish later).
    completed: float
    #: Messages this lane's network carried for the round (``O(k²)``).
    messages: int


@dataclass(frozen=True, slots=True)
class PoolRound:
    """Outcome of one concurrent multi-team ordering round."""

    orders: tuple[LaneOrder, ...]
    #: Virtual time until every lane fully quiesced (trailing quorum
    #: messages included) — comparable to the global lane's accounting.
    makespan: float
    messages: int
    #: Distinct team lanes active this round (components naming the same
    #: team share a lane, so this can be below ``len(orders)``).
    teams: int = 0


class TeamLanePool:
    """Lanes keyed by team, sharing one simulator for true concurrency."""

    def __init__(
        self,
        simulator: Simulator | None = None,
        latency: LatencyModel | None = None,
        seed: int = 0,
        max_batch: int = 64,
        idle_ttl: int | None = None,
    ) -> None:
        if idle_ttl is not None and idle_ttl < 1:
            raise NetworkError("idle_ttl must be positive (or None to disable)")
        self.simulator = simulator if simulator is not None else Simulator()
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.seed = seed
        self.max_batch = max_batch
        #: Garbage-collect a lane unused for this many ordering rounds
        #: (``None`` = keep lanes forever, the historical behavior).  A
        #: long run over shifting approval patterns otherwise accumulates
        #: one live lane — k replicas, a private network — per distinct
        #: team it ever saw.
        self.idle_ttl = idle_ttl
        self._lanes: dict[frozenset[int], TeamLane] = {}
        #: team -> round count at its last use (GC bookkeeping).
        self._last_used: dict[frozenset[int], int] = {}
        self.rounds = 0
        self.total_messages = 0
        #: Lanes ever provisioned / garbage-collected over the pool's life.
        self._created = 0
        self.lanes_gcd = 0
        #: High-water mark of teams active in a single round.
        self.max_concurrent = 0
        #: Optional :class:`repro.obs.trace.TraceRecorder` (attached by a
        #: traced executor).  Lane spans are recorded on the pool's own
        #: private clock as informational overlays (``chain=False``) —
        #: they never enter the engine timeline's attribution walk.
        self.tracer = None

    # ------------------------------------------------------------------

    def lane(self, team: Iterable[int]) -> TeamLane:
        """The lane for a team, created on first use and reused after —
        repeat contention among the same spenders pays no setup (a
        GC'd lane is simply re-provisioned on next use)."""
        key = frozenset(team)
        existing = self._lanes.get(key)
        if existing is not None:
            return existing
        lane = TeamLane(
            key,
            self.simulator,
            self.latency,
            seed=(self.seed * _SEED_MIX + self._created + 1) & 0x7FFFFFFF,
            max_batch=self.max_batch,
        )
        self._lanes[key] = lane
        self._last_used[key] = self.rounds
        self._created += 1
        if self.tracer is not None:
            self.tracer.instant(
                "teamlanes.pool",
                "lane spin-up",
                self.simulator.now,
                args={
                    "team": "-".join(str(p) for p in sorted(key)),
                    "k": len(key),
                    "live": len(self._lanes),
                },
            )
        return lane

    @property
    def lanes_created(self) -> int:
        """Lanes ever provisioned (GC does not decrement this)."""
        return self._created

    @property
    def live_lanes(self) -> int:
        """Lanes currently held — the quantity ``idle_ttl`` bounds."""
        return len(self._lanes)

    def _collect_idle(self) -> None:
        """Drop lanes unused for ``idle_ttl`` rounds.  Safe at a round
        boundary: every lane quiesced (the shared simulator ran dry), so a
        dropped lane holds no pending events — only replicas and a private
        network, which is exactly the state worth reclaiming."""
        if self.idle_ttl is None:
            return
        for key in [
            key
            for key in self._lanes
            if self.rounds - self._last_used.get(key, 0) >= self.idle_ttl
        ]:
            del self._lanes[key]
            self._last_used.pop(key, None)
            self.lanes_gcd += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "teamlanes.pool",
                    "lane gc",
                    self.simulator.now,
                    args={
                        "team": "-".join(str(p) for p in sorted(key)),
                        "live": len(self._lanes),
                    },
                )

    def order(
        self, batches: Sequence[tuple[Iterable[int], Sequence[Any]]]
    ) -> PoolRound:
        """Order every ``(team, ops)`` batch concurrently.

        All batches are submitted to their lanes first, then the shared
        simulator runs until quiescence — so lanes with disjoint teams make
        progress in interleaved virtual time and the round costs the
        slowest lane, not the sum.  Batches sharing a team serialize on
        that team's lane (they contend by definition).  Returns per-batch
        committed orders plus the round's makespan and message bill.
        """
        if not batches:
            return PoolRound(orders=(), makespan=0.0, messages=0, teams=0)
        started = self.simulator.now
        # Group by lane first: batches naming the same team share one lane
        # and must be submitted (and sliced back out) contiguously.
        sequence: list[tuple[int, frozenset[int], tuple]] = [
            (index, frozenset(team), tuple(ops))
            for index, (team, ops) in enumerate(batches)
        ]
        by_lane: dict[frozenset[int], list[tuple[int, tuple]]] = {}
        for index, key, ops in sequence:
            by_lane.setdefault(key, []).append((index, ops))
        sent_before: dict[frozenset[int], int] = {}
        for key, lane_batches in by_lane.items():
            lane = self.lane(key)
            sent_before[key] = lane.network.stats.messages_sent
            for _, ops in lane_batches:
                lane.submit(ops)
        self.simulator.run()
        orders: list[LaneOrder | None] = [None] * len(sequence)
        round_messages = 0
        for key, lane_batches in by_lane.items():
            lane = self._lanes[key]
            expected = sum(len(ops) for _, ops in lane_batches)
            if len(lane.delivered) != expected:
                raise NetworkError(
                    f"team lane {sorted(lane.team)} lost operations: "
                    f"submitted {expected}, delivered {len(lane.delivered)}"
                )
            lane_messages = lane.network.stats.messages_sent - sent_before[key]
            round_messages += lane_messages
            lane.batches += len(lane_batches)
            lane.total_messages += lane_messages
            cursor = 0
            for position, (index, ops) in enumerate(lane_batches):
                end = cursor + len(ops)
                orders[index] = LaneOrder(
                    team=lane.team,
                    ordered=tuple(lane.delivered[cursor:end]),
                    # This batch's own last delivery: components queued
                    # behind it on a shared lane complete later.
                    completed=lane.delivery_times[end - 1] - started
                    if ops
                    else 0.0,
                    # The lane's bill is shared by its batches; charge it
                    # once (to the first) so round totals stay exact.
                    messages=lane_messages if position == 0 else 0,
                )
                cursor = end
            # Drain the round's deliveries so long-lived lanes never
            # accumulate past operations.
            lane.delivered.clear()
            lane.delivery_times.clear()
        if self.tracer is not None:
            for order in orders:
                if order is None or not order.ordered:
                    continue
                members = "-".join(str(p) for p in sorted(order.team))
                self.tracer.span(
                    f"teamlanes.k{len(order.team)} [{members}]",
                    f"batch r{self.rounds}",
                    "sync_wait",
                    started,
                    started + order.completed,
                    chain=False,
                    args={
                        "ops": len(order.ordered),
                        "messages": order.messages,
                    },
                )
        self.rounds += 1
        self.total_messages += round_messages
        self.max_concurrent = max(self.max_concurrent, len(by_lane))
        for key in by_lane:
            self._last_used[key] = self.rounds
        self._collect_idle()
        return PoolRound(
            orders=tuple(order for order in orders if order is not None),
            makespan=self.simulator.now - started,
            messages=round_messages,
            teams=len(by_lane),
        )
