"""Leader-based total-order broadcast (the "blockchain" baseline).

A deliberately standard quorum protocol in the PBFT/HotStuff family, reduced
to its message pattern (the benchmarks compare *structure*: phases, quorums,
message counts, sequencer contention — not cryptography):

* a client node submits a transaction to the current leader (``to_submit``);
* the leader assigns the next global sequence number and broadcasts
  ``to_propose(seq, txs)`` (transactions submitted while a proposal is in
  flight are batched into the next one);
* every node broadcasts ``to_prepare(seq, digest)``;
* on ``2f + 1`` matching prepares, a node broadcasts ``to_commit``;
* on ``2f + 1`` matching commits, a node delivers the batch — in global
  sequence order, buffering gaps.

Every transaction thus costs the full 3-phase, ``O(n²)``-message pattern and
waits for the *single global sequencer* — the synchronization cost the paper
argues is unnecessary for most token operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetworkError
from repro.net.network import Message, Network
from repro.net.node import Node

#: Delivery callback: (global sequence, list of transactions).
TODeliverFn = Callable[[int, list[Any]], None]


def _digest(value: Any) -> str:
    return repr(value)


@dataclass
class _SlotState:
    proposed: Any = None
    prepared: bool = False
    committed: bool = False
    delivered: bool = False
    prepares: dict[str, set[int]] = field(default_factory=dict)
    commits: dict[str, set[int]] = field(default_factory=dict)
    payloads: dict[str, Any] = field(default_factory=dict)


class TotalOrderNode(Node):
    """One replica of the leader-based total-order protocol."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        num_nodes: int,
        deliver: TODeliverFn | None = None,
        leader: int = 0,
        max_faulty: int | None = None,
        max_batch: int = 64,
    ) -> None:
        super().__init__(node_id, network)
        self.n = num_nodes
        self.f = (num_nodes - 1) // 3 if max_faulty is None else max_faulty
        if self.n < 3 * self.f + 1:
            raise NetworkError("total order needs n >= 3f+1")
        self.leader = leader
        self.max_batch = max_batch
        self._app_deliver = deliver
        self.delivered: list[tuple[int, list[Any]]] = []
        # Leader state.
        self._pending: list[Any] = []
        self._next_seq = 0
        self._in_flight = 0
        # Replica state.
        self._slots: dict[int, _SlotState] = {}
        self._next_deliver = 0
        self._ready: dict[int, list[Any]] = {}

    # ------------------------------------------------------------------

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def is_leader(self) -> bool:
        return self.node_id == self.leader

    def submit(self, tx: Any) -> None:
        """Client entry point: forward a transaction to the leader."""
        self.send(self.leader, "to_submit", tx)

    # -- leader -------------------------------------------------------------

    def handle_to_submit(self, message: Message) -> None:
        if not self.is_leader:
            # A stale client view; re-forward to the true leader.
            self.send(self.leader, "to_submit", message.payload)
            return
        self._pending.append(message.payload)
        self._maybe_propose()

    def _maybe_propose(self) -> None:
        # One proposal pipeline slot at a time keeps the sequencer's
        # contention visible in latency (the point of the baseline); higher
        # pipelining would only shift, not remove, the bottleneck.
        if not self._pending or self._in_flight > 0:
            return
        batch, self._pending = (
            self._pending[: self.max_batch],
            self._pending[self.max_batch :],
        )
        seq = self._next_seq
        self._next_seq += 1
        self._in_flight += 1
        self.broadcast("to_propose", {"seq": seq, "txs": batch})

    # -- replicas -------------------------------------------------------------

    def _slot(self, seq: int) -> _SlotState:
        return self._slots.setdefault(seq, _SlotState())

    def handle_to_propose(self, message: Message) -> None:
        if message.src != self.leader:
            return  # only the leader sequences
        body = message.payload
        seq, txs = body["seq"], body["txs"]
        slot = self._slot(seq)
        if slot.proposed is not None:
            return
        slot.proposed = txs
        key = _digest(txs)
        slot.payloads.setdefault(key, txs)
        self.broadcast("to_prepare", {"seq": seq, "digest": key})
        if slot.committed and seq not in self._ready and not slot.delivered:
            # Commits quorumed before the proposal reached us; now that the
            # payload is known the slot can be delivered.
            self._ready[seq] = txs
            self._drain()

    def handle_to_prepare(self, message: Message) -> None:
        body = message.payload
        seq, key = body["seq"], body["digest"]
        slot = self._slot(seq)
        voters = slot.prepares.setdefault(key, set())
        voters.add(message.src)
        if len(voters) >= self.quorum and not slot.prepared:
            slot.prepared = True
            self.broadcast("to_commit", {"seq": seq, "digest": key})

    def handle_to_commit(self, message: Message) -> None:
        body = message.payload
        seq, key = body["seq"], body["digest"]
        slot = self._slot(seq)
        voters = slot.commits.setdefault(key, set())
        voters.add(message.src)
        if len(voters) >= self.quorum and not slot.committed:
            slot.committed = True
            payload = slot.payloads.get(key)
            if payload is None and slot.proposed is not None:
                payload = slot.proposed
            if payload is None:
                return  # wait for the proposal to carry the transactions
            self._ready[seq] = payload
            self._drain()

    def _drain(self) -> None:
        while self._next_deliver in self._ready:
            seq = self._next_deliver
            txs = self._ready.pop(seq)
            slot = self._slot(seq)
            slot.delivered = True
            self._next_deliver += 1
            self.delivered.append((seq, txs))
            if self._app_deliver is not None:
                self._app_deliver(seq, txs)
            if self.is_leader:
                self._in_flight = max(0, self._in_flight - 1)
                self._maybe_propose()
