"""Shared objects: registers, consensus, asset transfer, token standards."""

from repro.objects.asset_transfer import (
    AssetTransfer,
    AssetTransferType,
    ATState,
    DynamicOwnerAT,
    DynamicOwnerATType,
)
from repro.objects.base import SharedObject
from repro.objects.consensus import UNDECIDED, ConsensusObject, ConsensusType
from repro.objects.erc20 import ERC20Token, ERC20TokenType, TokenState
from repro.objects.erc721 import (
    NO_APPROVAL,
    ERC721Token,
    ERC721TokenType,
    NFTState,
)
from repro.objects.erc777 import ERC777State, ERC777Token, ERC777TokenType
from repro.objects.erc1155 import (
    ERC1155Token,
    ERC1155TokenType,
    MultiTokenState,
)
from repro.objects.footprint import (
    EMPTY_FOOTPRINT,
    SUPPLY,
    OpFootprint,
    static_pair_kind,
)
from repro.objects.register import (
    BOTTOM,
    AtomicRegister,
    RegisterType,
    register_array,
    register_matrix,
)
from repro.objects.restricted import (
    RestrictedObject,
    RestrictedType,
    restrict_to_qk,
)

__all__ = [
    "AssetTransfer",
    "AssetTransferType",
    "ATState",
    "DynamicOwnerAT",
    "DynamicOwnerATType",
    "SharedObject",
    "UNDECIDED",
    "ConsensusObject",
    "ConsensusType",
    "ERC20Token",
    "ERC20TokenType",
    "TokenState",
    "NO_APPROVAL",
    "ERC721Token",
    "ERC721TokenType",
    "NFTState",
    "ERC777State",
    "ERC777Token",
    "ERC777TokenType",
    "ERC1155Token",
    "ERC1155TokenType",
    "MultiTokenState",
    "EMPTY_FOOTPRINT",
    "SUPPLY",
    "OpFootprint",
    "static_pair_kind",
    "BOTTOM",
    "AtomicRegister",
    "RegisterType",
    "register_array",
    "register_matrix",
    "RestrictedObject",
    "RestrictedType",
    "restrict_to_qk",
]
