"""The asset-transfer object (paper Definition 1; Guerraoui et al. [16]).

``AT = (Q, q0, O, R, Δ)`` over a finite account set ``A`` with owner map
``µ : A → 2^Π``.  State is the balance map ``β : A → N``.  Operations:

* ``transfer(a_s, a_d, v)`` — succeeds iff the caller is an owner of ``a_s``
  and ``β(a_s) ≥ v``; moves ``v`` tokens.
* ``balanceOf(a)`` — reads a balance.

If the maximum number of processes sharing an account is ``k``, the object is
a *k-shared asset transfer* (``k``-AT); its consensus number is ``k`` [16].

Accounts and processes are 0-indexed integers; the owner map is a tuple of
frozensets, fixed at type-construction time (the paper stresses that ``µ`` is
*static* — contrast with the dynamic spender sets of ERC20 tokens).  The
dynamic-owner extension needed to express Algorithm 2's sequence of fresh
``k``-AT instances lives in :class:`DynamicOwnerATType`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.objects.footprint import (
    EMPTY_FOOTPRINT,
    SUPPLY,
    OpFootprint,
    bal,
    footprint,
)
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class ATState:
    """Balance map ``β`` as an immutable tuple indexed by account."""

    balances: tuple[int, ...]

    def balance(self, account: int) -> int:
        return self.balances[account]

    def with_transfer(self, source: int, dest: int, value: int) -> "ATState":
        updated = list(self.balances)
        updated[source] -= value
        updated[dest] += value
        return ATState(tuple(updated))

    @property
    def total_supply(self) -> int:
        return sum(self.balances)


def _normalize_owner_map(
    owner_map: Sequence[Iterable[int]], num_accounts: int, num_processes: int
) -> tuple[frozenset[int], ...]:
    if len(owner_map) != num_accounts:
        raise InvalidArgumentError(
            f"owner map must cover all {num_accounts} accounts"
        )
    normalized: list[frozenset[int]] = []
    for account, owners in enumerate(owner_map):
        owner_set = frozenset(owners)
        if not owner_set:
            raise InvalidArgumentError(f"account {account} has no owners")
        for pid in owner_set:
            if not 0 <= pid < num_processes:
                raise InvalidArgumentError(
                    f"owner {pid} of account {account} is not a process id"
                )
        normalized.append(owner_set)
    return tuple(normalized)


class AssetTransferType(SequentialObjectType):
    """Sequential specification of Definition 1 with a static owner map."""

    name = "asset-transfer"

    def __init__(
        self,
        initial_balances: Sequence[int],
        owner_map: Sequence[Iterable[int]] | None = None,
        num_processes: int | None = None,
    ) -> None:
        """Create the type for ``|A| = len(initial_balances)`` accounts.

        Args:
            initial_balances: ``β0``; all balances must be non-negative.
            owner_map: ``µ``; defaults to single ownership ``µ(a_i) = {p_i}``.
            num_processes: ``|Π|``; defaults to the number of accounts.
        """
        balances = tuple(int(b) for b in initial_balances)
        if any(b < 0 for b in balances):
            raise InvalidArgumentError("initial balances must be non-negative")
        self.num_accounts = len(balances)
        self.num_processes = (
            self.num_accounts if num_processes is None else num_processes
        )
        if owner_map is None:
            if self.num_processes < self.num_accounts:
                raise InvalidArgumentError(
                    "default single-owner map needs one process per account"
                )
            owner_map = [{a} for a in range(self.num_accounts)]
        self.owner_map = _normalize_owner_map(
            owner_map, self.num_accounts, self.num_processes
        )
        self._initial = ATState(balances)

    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """The sharing level: max number of owners of any account (k-AT)."""
        return max(len(owners) for owners in self.owner_map)

    def owners(self, account: int) -> frozenset[int]:
        """``µ(a)``."""
        self._check_account(account)
        return self.owner_map[account]

    def initial_state(self) -> ATState:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        return ("transfer", "balanceOf", "totalSupply")

    def _check_account(self, account: Any) -> None:
        if not isinstance(account, int) or not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    def _check_value(self, value: Any) -> None:
        if not isinstance(value, int) or value < 0:
            raise InvalidArgumentError(f"amount must be a natural number: {value!r}")

    def apply(
        self, state: ATState, pid: int, operation: Operation
    ) -> tuple[ATState, Any]:
        self.validate_name(operation)
        handler = getattr(self, f"_apply_{operation.name}")
        return handler(state, pid, *operation.args)

    # Δ branches -------------------------------------------------------

    def _apply_transfer(
        self, state: ATState, pid: int, source: int, dest: int, value: int
    ) -> tuple[ATState, Any]:
        self._check_account(source)
        self._check_account(dest)
        self._check_value(value)
        if pid not in self.owner_map[source] or state.balance(source) < value:
            return state, FALSE
        return state.with_transfer(source, dest, value), TRUE

    def _apply_balanceOf(
        self, state: ATState, pid: int, account: int
    ) -> tuple[ATState, Any]:
        self._check_account(account)
        return state, state.balance(account)

    def _apply_totalSupply(
        self, state: ATState, pid: int
    ) -> tuple[ATState, Any]:
        return state, state.total_supply

    # -- static footprints (engine fast path) -----------------------------

    def footprint(self, pid: int, operation: Operation) -> OpFootprint:
        """Static footprint; the owner map µ is static, so an unauthorized
        transfer is a constant-``FALSE`` no-op with an empty footprint."""
        self.validate_name(operation)
        name, args = operation.name, operation.args
        if name == "transfer":
            source, dest, value = args
            self._check_account(source)
            if pid not in self.owner_map[source] or value == 0:
                # Always fails (non-owner) or always a successful no-op:
                # constant response, state never changes.
                return EMPTY_FOOTPRINT
            if dest == source:
                return footprint(observes=[bal(source)])
            return footprint(
                observes=[bal(source)], adds=[bal(source), bal(dest)]
            )
        if name == "balanceOf":
            return footprint(observes=[bal(args[0])])
        # totalSupply — conserved by every transfer.
        return footprint(observes=[SUPPLY])


class DynamicOwnerATType(AssetTransferType):
    """Asset transfer whose owner map is part of the *state*.

    Algorithm 2 keeps the owner map of its ``k``-AT in sync with the evolving
    allowances by (conceptually) creating a fresh ``k``-AT instance whenever
    the enabled-spender set of an account changes — "whenever the set of
    enabled spenders for a given account changes ... we create a new instance
    of the k-AT object, with the same balances as the previous instance and an
    owner map reflecting the updated allowances" (proof of Theorem 4).  A
    sequence of instances with copied balances is observationally equivalent
    to one object with an atomic owner-map-update meta-operation, which is
    what this class provides (``setOwners``).  The meta-operation enforces the
    ``k`` bound, so the object never exceeds the synchronization power of
    ``k``-AT.
    """

    name = "dynamic-asset-transfer"

    def __init__(
        self,
        initial_balances: Sequence[int],
        owner_map: Sequence[Iterable[int]] | None = None,
        num_processes: int | None = None,
        max_owners: int | None = None,
    ) -> None:
        super().__init__(initial_balances, owner_map, num_processes)
        #: The k bound enforced on every owner set (defaults to the initial k).
        self.max_owners = self.k if max_owners is None else max_owners
        if self.k > self.max_owners:
            raise InvalidArgumentError(
                f"initial owner map exceeds the k={self.max_owners} bound"
            )
        self._initial_dynamic = (self._initial, self.owner_map)

    # State is (ATState, owner_map) so that owner updates are atomic steps.

    def initial_state(self) -> tuple[ATState, tuple[frozenset[int], ...]]:
        return self._initial_dynamic

    def operation_names(self) -> tuple[str, ...]:
        return ("transfer", "balanceOf", "totalSupply", "setOwners")

    def apply(
        self,
        state: tuple[ATState, tuple[frozenset[int], ...]],
        pid: int,
        operation: Operation,
    ) -> tuple[tuple[ATState, tuple[frozenset[int], ...]], Any]:
        self.validate_name(operation)
        balances, owners = state
        if operation.name == "setOwners":
            account, new_owners = operation.args
            self._check_account(account)
            owner_set = frozenset(new_owners)
            if not owner_set:
                raise InvalidArgumentError("owner set may not be empty")
            if len(owner_set) > self.max_owners:
                return state, FALSE
            updated = list(owners)
            updated[account] = owner_set
            return (balances, tuple(updated)), TRUE
        if operation.name == "transfer":
            source, dest, value = operation.args
            self._check_account(source)
            self._check_account(dest)
            self._check_value(value)
            if pid not in owners[source] or balances.balance(source) < value:
                return state, FALSE
            return (balances.with_transfer(source, dest, value), owners), TRUE
        if operation.name == "balanceOf":
            (account,) = operation.args
            self._check_account(account)
            return state, balances.balance(account)
        # totalSupply
        return state, balances.total_supply

    def footprint(self, pid: int, operation: Operation) -> OpFootprint:
        """Here µ is *state*, so authorization observes the owner-map cell
        ``("own", a)`` and ``setOwners`` overwrites it."""
        self.validate_name(operation)
        name, args = operation.name, operation.args
        if name == "transfer":
            source, dest, value = args
            self._check_account(source)
            if value == 0:
                # Response still depends on ownership; state never changes.
                return footprint(observes=[("own", source)])
            observes = [bal(source), ("own", source)]
            if dest == source:
                return footprint(observes=observes)
            return footprint(observes=observes, adds=[bal(source), bal(dest)])
        if name == "setOwners":
            account = args[0]
            self._check_account(account)
            # Response depends only on the argument's size vs the k bound.
            return footprint(sets=[("own", account)])
        if name == "balanceOf":
            return footprint(observes=[bal(args[0])])
        return footprint(observes=[SUPPLY])


class AssetTransfer(SharedObject):
    """Runtime (static-µ) asset-transfer object."""

    def __init__(
        self,
        initial_balances: Sequence[int],
        owner_map: Sequence[Iterable[int]] | None = None,
        num_processes: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            AssetTransferType(initial_balances, owner_map, num_processes),
            name=name,
        )

    @property
    def k(self) -> int:
        return self.object_type.k

    def transfer(self, source: int, dest: int, value: int) -> OpCall:
        return self.call(Operation("transfer", (source, dest, value)))

    def balance_of(self, account: int) -> OpCall:
        return self.call(Operation("balanceOf", (account,)))

    def total_supply(self) -> OpCall:
        return self.call(Operation("totalSupply"))


class DynamicOwnerAT(SharedObject):
    """Runtime dynamic-owner asset transfer used by Algorithm 2."""

    def __init__(
        self,
        initial_balances: Sequence[int],
        owner_map: Sequence[Iterable[int]] | None = None,
        num_processes: int | None = None,
        max_owners: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            DynamicOwnerATType(
                initial_balances, owner_map, num_processes, max_owners
            ),
            name=name,
        )

    def transfer(self, source: int, dest: int, value: int) -> OpCall:
        return self.call(Operation("transfer", (source, dest, value)))

    def balance_of(self, account: int) -> OpCall:
        return self.call(Operation("balanceOf", (account,)))

    def total_supply(self) -> OpCall:
        return self.call(Operation("totalSupply"))

    def set_owners(self, account: int, owners: Iterable[int]) -> OpCall:
        return self.call(Operation("setOwners", (account, frozenset(owners))))
