"""Runtime shared objects.

A :class:`SharedObject` pairs a sequential object type with a current state
and executes invocations atomically.  It is the runtime realization of the
model's base objects: every invocation happens at a single indivisible point
(the scheduler only ever executes one `OpCall` at a time).

Typed subclasses (e.g. :class:`repro.objects.register.AtomicRegister`) add
ergonomic methods that *build* :class:`~repro.runtime.calls.OpCall` records
for protocol generators to yield.  For direct sequential use (tests, analysis
code) the same methods can be executed immediately via :meth:`SharedObject.invoke`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.calls import OpCall
from repro.spec.object_type import SequentialObjectType
from repro.spec.operation import Operation


class SharedObject:
    """A sequential object type instantiated with a mutable current state."""

    _counter = 0

    def __init__(
        self,
        object_type: SequentialObjectType,
        initial_state: Any | None = None,
        name: str | None = None,
    ) -> None:
        self.object_type = object_type
        self._state = (
            object_type.initial_state()
            if initial_state is None
            else initial_state
        )
        if name is None:
            SharedObject._counter += 1
            name = f"{object_type.name}#{SharedObject._counter}"
        self.name = name
        #: Optional hook invoked after each operation, used by executors to
        #: record histories: ``hook(pid, object, operation, result)``.
        self.on_invoke: (
            Callable[[int, "SharedObject", Operation, Any], None] | None
        ) = None

    # ------------------------------------------------------------------

    @property
    def state(self) -> Any:
        """The current (immutable) state ``q``."""
        return self._state

    def reset(self, state: Any | None = None) -> None:
        """Reset to ``q0`` (or an explicit state); used by replay harnesses."""
        self._state = (
            self.object_type.initial_state() if state is None else state
        )

    def invoke(self, pid: int, operation: Operation) -> Any:
        """Atomically execute one operation and return its response."""
        self._state, result = self.object_type.apply(
            self._state, pid, operation
        )
        if self.on_invoke is not None:
            self.on_invoke(pid, self, operation, result)
        return result

    def call(self, operation: Operation) -> OpCall:
        """Build a pending call for protocol generators to yield."""
        return OpCall(self, operation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedObject {self.name} state={self._state!r}>"
