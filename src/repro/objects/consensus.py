"""The consensus object (paper §3.1, "Consensus").

A single-shot object with one operation ``propose(v)``.  The first proposal
is decided; every proposal returns the decided value.  This is both the
*specification target* of the reductions in §5 (Algorithm 1 implements this
object from a token object and registers) and a usable *base object* for the
§6 ERC721 discussion, where a series of k-consensus instances replaces k-AT.

Validity and consistency are immediate from the sequential specification;
wait-freedom holds because `propose` is a single atomic step on the base
object.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.runtime.calls import OpCall
from repro.spec.object_type import SequentialObjectType
from repro.spec.operation import Operation

#: Sentinel for the undecided state (distinct from any proposal, including None).
UNDECIDED = object()


class ConsensusType(SequentialObjectType):
    """Sequential specification: state is UNDECIDED or the decided value."""

    name = "consensus"

    def initial_state(self) -> Any:
        return UNDECIDED

    def operation_names(self) -> tuple[str, ...]:
        return ("propose",)

    def apply(
        self, state: Any, pid: int, operation: Operation
    ) -> tuple[Any, Any]:
        self.validate_name(operation)
        if len(operation.args) != 1:
            raise InvalidArgumentError("propose takes exactly one argument")
        proposal = operation.args[0]
        if state is UNDECIDED:
            return proposal, proposal
        return state, state


class ConsensusObject(SharedObject):
    """Runtime single-shot consensus object."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(ConsensusType(), name=name)

    def propose(self, value: Any) -> OpCall:
        return self.call(Operation("propose", (value,)))

    @property
    def decided(self) -> Any:
        """The decided value, or None if no proposal has been made yet."""
        return None if self.state is UNDECIDED else self.state
