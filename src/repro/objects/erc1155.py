"""The ERC1155 multi-token object (paper §6; EIP-1155).

ERC1155 manages multiple token types in one contract and supports *batched*
transfers: "it specifies methods that enable the execution of a number of
transactions, possibly on different token types, or involving various source
and target accounts, within a single method-call" (§6).  Authorization is by
all-token operators (``setApprovalForAll``), as in the EIP.

The paper conjectures ERC1155 inherits ERC20's synchronization requirements
but leaves the formal analysis open; we provide the object so the analysis
toolkit (spender sets, commutativity) can be applied to it, and tests explore
the conjecture on small instances.

Batch semantics are atomic: either every component transfer of
``safeBatchTransferFrom`` applies or none does (EIP-1155 reverts on any
failing component; a revert maps to a state-preserving ``FALSE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class MultiTokenState:
    """``balances[account][token_type]`` plus per-holder operator sets."""

    balances: tuple[tuple[int, ...], ...]
    operators: tuple[frozenset[int], ...]

    def balance(self, account: int, token_type: int) -> int:
        return self.balances[account][token_type]

    def is_authorized(self, pid: int, holder: int) -> bool:
        return pid == holder or pid in self.operators[holder]

    def with_transfers(
        self, source: int, dest: int, moves: Sequence[tuple[int, int]]
    ) -> "MultiTokenState":
        """Apply ``(token_type, value)`` moves from ``source`` to ``dest``."""
        balances = [list(row) for row in self.balances]
        for token_type, value in moves:
            balances[source][token_type] -= value
            balances[dest][token_type] += value
        return MultiTokenState(
            tuple(tuple(row) for row in balances), self.operators
        )

    def with_operator(self, holder: int, operator: int, enabled: bool) -> "MultiTokenState":
        operators = list(self.operators)
        current = set(operators[holder])
        if enabled:
            current.add(operator)
        else:
            current.discard(operator)
        operators[holder] = frozenset(current)
        return MultiTokenState(self.balances, tuple(operators))


class ERC1155TokenType(SequentialObjectType):
    """Sequential specification of an ERC1155 contract."""

    name = "erc1155"

    def __init__(self, initial_balances: Sequence[Sequence[int]]) -> None:
        """``initial_balances[account][token_type]``; a rectangular grid."""
        grid = tuple(tuple(int(v) for v in row) for row in initial_balances)
        if not grid:
            raise InvalidArgumentError("need at least one account")
        widths = {len(row) for row in grid}
        if len(widths) != 1:
            raise InvalidArgumentError("balance grid must be rectangular")
        if any(v < 0 for row in grid for v in row):
            raise InvalidArgumentError("balances must be non-negative")
        self.num_accounts = len(grid)
        self.num_token_types = len(grid[0])
        self._initial = MultiTokenState(
            grid, tuple(frozenset() for _ in range(self.num_accounts))
        )

    def initial_state(self) -> MultiTokenState:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        return (
            "balanceOf",
            "balanceOfBatch",
            "safeTransferFrom",
            "safeBatchTransferFrom",
            "setApprovalForAll",
            "isApprovedForAll",
        )

    def _check_account(self, account: Any) -> None:
        if not isinstance(account, int) or not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    def _check_token_type(self, token_type: Any) -> None:
        if (
            not isinstance(token_type, int)
            or not 0 <= token_type < self.num_token_types
        ):
            raise InvalidArgumentError(f"unknown token type {token_type!r}")

    def _check_value(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise InvalidArgumentError(f"amount must be a natural number: {value!r}")

    def apply(
        self, state: MultiTokenState, pid: int, operation: Operation
    ) -> tuple[MultiTokenState, Any]:
        self.validate_name(operation)
        self._check_account(pid)
        handler = getattr(self, f"_apply_{operation.name}")
        return handler(state, pid, *operation.args)

    def _apply_balanceOf(
        self, state: MultiTokenState, pid: int, account: int, token_type: int
    ) -> tuple[MultiTokenState, Any]:
        self._check_account(account)
        self._check_token_type(token_type)
        return state, state.balance(account, token_type)

    def _apply_balanceOfBatch(
        self,
        state: MultiTokenState,
        pid: int,
        accounts: tuple[int, ...],
        token_types: tuple[int, ...],
    ) -> tuple[MultiTokenState, Any]:
        if len(accounts) != len(token_types):
            raise InvalidArgumentError("batch reads need matching lengths")
        results = []
        for account, token_type in zip(accounts, token_types):
            self._check_account(account)
            self._check_token_type(token_type)
            results.append(state.balance(account, token_type))
        return state, tuple(results)

    def _apply_safeTransferFrom(
        self,
        state: MultiTokenState,
        pid: int,
        source: int,
        dest: int,
        token_type: int,
        value: int,
    ) -> tuple[MultiTokenState, Any]:
        self._check_account(source)
        self._check_account(dest)
        self._check_token_type(token_type)
        self._check_value(value)
        if not state.is_authorized(pid, source):
            return state, FALSE
        if state.balance(source, token_type) < value:
            return state, FALSE
        return state.with_transfers(source, dest, [(token_type, value)]), TRUE

    def _apply_safeBatchTransferFrom(
        self,
        state: MultiTokenState,
        pid: int,
        source: int,
        dest: int,
        token_types: tuple[int, ...],
        values: tuple[int, ...],
    ) -> tuple[MultiTokenState, Any]:
        if len(token_types) != len(values):
            raise InvalidArgumentError("batch transfers need matching lengths")
        self._check_account(source)
        self._check_account(dest)
        if not state.is_authorized(pid, source):
            return state, FALSE
        needed: dict[int, int] = {}
        for token_type, value in zip(token_types, values):
            self._check_token_type(token_type)
            self._check_value(value)
            needed[token_type] = needed.get(token_type, 0) + value
        for token_type, total in needed.items():
            if state.balance(source, token_type) < total:
                return state, FALSE  # atomic: all-or-nothing
        moves = list(zip(token_types, values))
        return state.with_transfers(source, dest, moves), TRUE

    def _apply_setApprovalForAll(
        self, state: MultiTokenState, pid: int, operator: int, enabled: bool
    ) -> tuple[MultiTokenState, Any]:
        self._check_account(operator)
        if operator == pid:
            return state, FALSE
        return state.with_operator(pid, operator, bool(enabled)), TRUE

    def _apply_isApprovedForAll(
        self, state: MultiTokenState, pid: int, holder: int, operator: int
    ) -> tuple[MultiTokenState, Any]:
        self._check_account(holder)
        self._check_account(operator)
        return state, operator in state.operators[holder]


class ERC1155Token(SharedObject):
    """Runtime ERC1155 object with ergonomic call builders."""

    def __init__(
        self,
        initial_balances: Sequence[Sequence[int]],
        name: str | None = None,
    ) -> None:
        super().__init__(ERC1155TokenType(initial_balances), name=name)

    def balance_of(self, account: int, token_type: int) -> OpCall:
        return self.call(Operation("balanceOf", (account, token_type)))

    def balance_of_batch(
        self, accounts: Sequence[int], token_types: Sequence[int]
    ) -> OpCall:
        return self.call(
            Operation("balanceOfBatch", (tuple(accounts), tuple(token_types)))
        )

    def safe_transfer_from(
        self, source: int, dest: int, token_type: int, value: int
    ) -> OpCall:
        return self.call(
            Operation("safeTransferFrom", (source, dest, token_type, value))
        )

    def safe_batch_transfer_from(
        self,
        source: int,
        dest: int,
        token_types: Sequence[int],
        values: Sequence[int],
    ) -> OpCall:
        return self.call(
            Operation(
                "safeBatchTransferFrom",
                (source, dest, tuple(token_types), tuple(values)),
            )
        )

    def set_approval_for_all(self, operator: int, enabled: bool) -> OpCall:
        return self.call(Operation("setApprovalForAll", (operator, enabled)))

    def is_approved_for_all(self, holder: int, operator: int) -> OpCall:
        return self.call(Operation("isApprovedForAll", (holder, operator)))
