"""The ERC20 token object (paper Definition 3 and Appendix A, Algorithm 3).

State (Eq. 2): ``Q = {β : A → N} × {α : A × Π → N}`` — balances and
allowances.  One account per process (``|Π| = |A| = n``) with the identity
owner bijection ``ω(a_i) = p_i`` (paper §4); in code both accounts and
processes are 0-indexed integers and ``ω`` is the identity.

Operations (Eqs. 3–7):

* ``transfer(a_d, v)`` — caller ``p`` moves ``v`` tokens from its own account
  ``a_p`` to ``a_d``; fails (returns ``FALSE``) when ``β(a_p) < v``.
* ``transferFrom(a_s, a_d, v)`` — caller ``p`` moves ``v`` tokens from ``a_s``
  using its allowance; requires ``β(a_s) ≥ v`` and ``α(a_s, p) ≥ v``, and
  decrements both.
* ``approve(p̄, v)`` — caller sets ``α(a_p, p̄) = v`` (absolute assignment; the
  well-known ERC20 approve semantics).
* ``balanceOf(a)``, ``allowance(a, p̄)``, ``totalSupply()`` — read-only.

The sequential specification below is a line-by-line transcription of the Δ
relation in Definition 3 (which coincides with Algorithm 3's contract code on
their common methods).  Optional ``increaseAllowance``/``decreaseAllowance``
extension methods — present in real-world ERC20 implementations and needed by
the corrected Algorithm 2 variant — can be enabled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.objects.footprint import (
    EMPTY_FOOTPRINT,
    SUPPLY,
    OpFootprint,
    allow,
    bal,
    footprint,
)
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class TokenState:
    """Immutable token state ``q = (β, α)``.

    ``balances[a]`` is ``β(a)``; ``allowances[a][p]`` is ``α(a, p)``, the
    amount process ``p`` may transfer from account ``a``.
    """

    balances: tuple[int, ...]
    allowances: tuple[tuple[int, ...], ...]

    # -- reads ----------------------------------------------------------

    @property
    def num_accounts(self) -> int:
        return len(self.balances)

    def balance(self, account: int) -> int:
        return self.balances[account]

    def allowance(self, account: int, spender: int) -> int:
        return self.allowances[account][spender]

    @property
    def total_supply(self) -> int:
        return sum(self.balances)

    # -- functional updates ---------------------------------------------

    def with_transfer(self, source: int, dest: int, value: int) -> "TokenState":
        balances = list(self.balances)
        balances[source] -= value
        balances[dest] += value
        return TokenState(tuple(balances), self.allowances)

    def with_allowance(self, account: int, spender: int, value: int) -> "TokenState":
        allowances = [list(row) for row in self.allowances]
        allowances[account][spender] = value
        return TokenState(
            self.balances, tuple(tuple(row) for row in allowances)
        )

    def with_transfer_from(
        self, spender: int, source: int, dest: int, value: int
    ) -> "TokenState":
        return self.with_transfer(source, dest, value).with_allowance(
            source, spender, self.allowance(source, spender) - value
        )

    # -- constructors ----------------------------------------------------

    @staticmethod
    def create(
        balances: Sequence[int],
        allowances: Mapping[tuple[int, int], int] | None = None,
    ) -> "TokenState":
        """Build a state from a balance list and a sparse allowance mapping
        ``{(account, spender): amount}``."""
        n = len(balances)
        balance_tuple = tuple(int(b) for b in balances)
        if any(b < 0 for b in balance_tuple):
            raise InvalidArgumentError("balances must be non-negative")
        grid = [[0] * n for _ in range(n)]
        for (account, spender), amount in (allowances or {}).items():
            if not 0 <= account < n or not 0 <= spender < n:
                raise InvalidArgumentError(
                    f"allowance index out of range: ({account}, {spender})"
                )
            if int(amount) < 0:
                raise InvalidArgumentError("allowances must be non-negative")
            grid[account][spender] = int(amount)
        return TokenState(balance_tuple, tuple(tuple(row) for row in grid))

    @staticmethod
    def deploy(num_accounts: int, total_supply: int, deployer: int = 0) -> "TokenState":
        """The ERC20 standard's initial state ``q0`` (Algorithm 3, line 7):
        the deployer holds the whole supply, all allowances are 0."""
        if not 0 <= deployer < num_accounts:
            raise InvalidArgumentError("deployer must be a valid account")
        if total_supply < 0:
            raise InvalidArgumentError("total supply must be non-negative")
        balances = [0] * num_accounts
        balances[deployer] = total_supply
        return TokenState.create(balances)


class ERC20TokenType(SequentialObjectType):
    """Sequential specification of the ERC20 token object (Definition 3)."""

    name = "erc20"

    #: Methods of Definition 3 / Algorithm 3.
    CORE_OPERATIONS = (
        "transfer",
        "transferFrom",
        "approve",
        "balanceOf",
        "allowance",
        "totalSupply",
    )
    #: Real-world extension methods (OpenZeppelin-style), opt-in.
    EXTENSION_OPERATIONS = ("increaseAllowance", "decreaseAllowance")

    def __init__(
        self,
        num_accounts: int,
        initial_state: TokenState | None = None,
        total_supply: int | None = None,
        deployer: int = 0,
        with_extensions: bool = False,
    ) -> None:
        """Create the token type for ``n = num_accounts`` accounts/processes.

        Exactly one of ``initial_state`` / ``total_supply`` may be provided;
        with neither, the initial state has all balances zero.
        """
        if num_accounts <= 0:
            raise InvalidArgumentError("need at least one account")
        self.num_accounts = num_accounts
        self.with_extensions = with_extensions
        if initial_state is not None and total_supply is not None:
            raise InvalidArgumentError(
                "provide either initial_state or total_supply, not both"
            )
        if initial_state is not None:
            if initial_state.num_accounts != num_accounts:
                raise InvalidArgumentError("initial state has wrong account count")
            self._initial = initial_state
        elif total_supply is not None:
            self._initial = TokenState.deploy(
                num_accounts, total_supply, deployer
            )
        else:
            self._initial = TokenState.create([0] * num_accounts)

    # ------------------------------------------------------------------

    def initial_state(self) -> TokenState:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        if self.with_extensions:
            return self.CORE_OPERATIONS + self.EXTENSION_OPERATIONS
        return self.CORE_OPERATIONS

    def owner(self, account: int) -> int:
        """The owner bijection ``ω``; identity in the paper's model (§4)."""
        self._check_account(account)
        return account

    def account_of(self, pid: int) -> int:
        """``a_p``: the account owned by process ``p`` (inverse of ``ω``)."""
        self._check_account(pid)
        return pid

    # -- validation ------------------------------------------------------

    def _check_account(self, account: Any) -> None:
        if not isinstance(account, int) or not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    def _check_process(self, pid: Any) -> None:
        if not isinstance(pid, int) or not 0 <= pid < self.num_accounts:
            raise InvalidArgumentError(f"unknown process {pid!r}")

    def _check_value(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise InvalidArgumentError(f"amount must be a natural number: {value!r}")

    # -- Δ ----------------------------------------------------------------

    def apply(
        self, state: TokenState, pid: int, operation: Operation
    ) -> tuple[TokenState, Any]:
        self.validate_name(operation)
        self._check_process(pid)
        handler = getattr(self, f"_apply_{operation.name}")
        return handler(state, pid, *operation.args)

    def _apply_transfer(
        self, state: TokenState, pid: int, dest: int, value: int
    ) -> tuple[TokenState, Any]:
        self._check_account(dest)
        self._check_value(value)
        source = self.account_of(pid)
        if state.balance(source) < value:
            return state, FALSE
        return state.with_transfer(source, dest, value), TRUE

    def _apply_transferFrom(
        self, state: TokenState, pid: int, source: int, dest: int, value: int
    ) -> tuple[TokenState, Any]:
        self._check_account(source)
        self._check_account(dest)
        self._check_value(value)
        if (
            state.balance(source) < value
            or state.allowance(source, pid) < value
        ):
            return state, FALSE
        return state.with_transfer_from(pid, source, dest, value), TRUE

    def _apply_approve(
        self, state: TokenState, pid: int, spender: int, value: int
    ) -> tuple[TokenState, Any]:
        self._check_process(spender)
        self._check_value(value)
        account = self.account_of(pid)
        return state.with_allowance(account, spender, value), TRUE

    def _apply_balanceOf(
        self, state: TokenState, pid: int, account: int
    ) -> tuple[TokenState, Any]:
        self._check_account(account)
        return state, state.balance(account)

    def _apply_allowance(
        self, state: TokenState, pid: int, account: int, spender: int
    ) -> tuple[TokenState, Any]:
        self._check_account(account)
        self._check_process(spender)
        return state, state.allowance(account, spender)

    def _apply_totalSupply(
        self, state: TokenState, pid: int
    ) -> tuple[TokenState, Any]:
        return state, state.total_supply

    # -- static footprints (engine fast path) -----------------------------

    def footprint(self, pid: int, operation: Operation) -> OpFootprint:
        """Static may-access footprint of Definition 3's operations.

        Captures the paper's case analysis state-independently: transfers
        observe their source balance and apply commutative deltas; approve
        is an absolute write to one allowance cell; the read-only methods
        observe their cells.  Degenerate invocations (zero value,
        self-transfer) collapse to read-only or empty footprints, matching
        the semantic oracle's judgment at every state.
        """
        self.validate_name(operation)
        self._check_process(pid)
        name, args = operation.name, operation.args
        if name == "transfer":
            dest, value = args
            source = self.account_of(pid)
            if value == 0:
                return EMPTY_FOOTPRINT  # always succeeds, never writes
            if dest == source:
                return footprint(observes=[bal(source)])
            return footprint(
                observes=[bal(source)], adds=[bal(source), bal(dest)]
            )
        if name == "transferFrom":
            source, dest, value = args
            if value == 0:
                return EMPTY_FOOTPRINT
            cell = allow(source, pid)
            if dest == source:
                return footprint(observes=[bal(source), cell], adds=[cell])
            return footprint(
                observes=[bal(source), cell],
                adds=[bal(source), bal(dest), cell],
            )
        if name == "approve":
            spender, _value = args
            return footprint(sets=[allow(self.account_of(pid), spender)])
        if name == "balanceOf":
            return footprint(observes=[bal(args[0])])
        if name == "allowance":
            return footprint(observes=[allow(args[0], args[1])])
        if name == "totalSupply":
            # Transfers conserve the supply, so supply queries commute with
            # arbitrary transfer traffic (they observe only this pseudo-cell).
            return footprint(observes=[SUPPLY])
        if name == "increaseAllowance":
            spender, delta = args
            if delta == 0:
                return EMPTY_FOOTPRINT
            return footprint(adds=[allow(self.account_of(pid), spender)])
        # decreaseAllowance: guarded by the current allowance value.
        spender, delta = args
        if delta == 0:
            return EMPTY_FOOTPRINT
        cell = allow(self.account_of(pid), spender)
        return footprint(observes=[cell], adds=[cell])

    # -- extensions -------------------------------------------------------

    def _apply_increaseAllowance(
        self, state: TokenState, pid: int, spender: int, delta: int
    ) -> tuple[TokenState, Any]:
        if not self.with_extensions:
            raise InvalidArgumentError(
                "extensions disabled for this token type"
            )
        self._check_process(spender)
        self._check_value(delta)
        account = self.account_of(pid)
        current = state.allowance(account, spender)
        return state.with_allowance(account, spender, current + delta), TRUE

    def _apply_decreaseAllowance(
        self, state: TokenState, pid: int, spender: int, delta: int
    ) -> tuple[TokenState, Any]:
        if not self.with_extensions:
            raise InvalidArgumentError(
                "extensions disabled for this token type"
            )
        self._check_process(spender)
        self._check_value(delta)
        account = self.account_of(pid)
        current = state.allowance(account, spender)
        if current < delta:
            return state, FALSE
        return state.with_allowance(account, spender, current - delta), TRUE


class ERC20Token(SharedObject):
    """Runtime ERC20 token object with ergonomic call builders.

    The methods build :class:`OpCall` records for protocol generators; for
    direct sequential use, pass the call to :meth:`SharedObject.invoke` or use
    :meth:`execute` below.
    """

    def __init__(
        self,
        num_accounts: int,
        initial_state: TokenState | None = None,
        total_supply: int | None = None,
        deployer: int = 0,
        with_extensions: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__(
            ERC20TokenType(
                num_accounts,
                initial_state=initial_state,
                total_supply=total_supply,
                deployer=deployer,
                with_extensions=with_extensions,
            ),
            name=name,
        )

    # -- call builders ----------------------------------------------------

    def transfer(self, dest: int, value: int) -> OpCall:
        return self.call(Operation("transfer", (dest, value)))

    def transfer_from(self, source: int, dest: int, value: int) -> OpCall:
        return self.call(Operation("transferFrom", (source, dest, value)))

    def approve(self, spender: int, value: int) -> OpCall:
        return self.call(Operation("approve", (spender, value)))

    def balance_of(self, account: int) -> OpCall:
        return self.call(Operation("balanceOf", (account,)))

    def allowance(self, account: int, spender: int) -> OpCall:
        return self.call(Operation("allowance", (account, spender)))

    def total_supply(self) -> OpCall:
        return self.call(Operation("totalSupply"))

    def increase_allowance(self, spender: int, delta: int) -> OpCall:
        return self.call(Operation("increaseAllowance", (spender, delta)))

    def decrease_allowance(self, spender: int, delta: int) -> OpCall:
        return self.call(Operation("decreaseAllowance", (spender, delta)))

    # -- sequential convenience --------------------------------------------

    def execute(self, pid: int, call: OpCall) -> Any:
        """Execute one of this object's calls immediately (sequential use)."""
        if call.target is not self:
            raise InvalidArgumentError("call targets a different object")
        return self.invoke(pid, call.operation)
