"""The ERC721 non-fungible token object (paper §6; EIP-721).

Every token is unique, identified by ``tokenId``, and transferred
individually with ``transferFrom``.  An owner can ``approve`` one address per
token, and can enable *operators* with full control over all of its tokens
(``setApprovalForAll``) — both mechanisms appear in EIP-721 and both create
multi-spender races analogous to ERC20 allowances, which is what §6 exploits:
"Algorithm 1 can be adapted so that it uses a specific token ... which all
the participating processes are approved to spend; the winner of this race
can then be determined by invoking ``ownerOf``."

Failure semantics: the EVM contract *reverts* on unauthorized transfers; in
the shared-object formalism a revert is a state-preserving transition, so the
object returns ``FALSE`` (consistent with how the paper's Definition 3 folds
ERC20's require-failures into ``FALSE`` responses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.objects.footprint import EMPTY_FOOTPRINT, OpFootprint, footprint
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Operation

#: ERC721's zero address: "no approval" marker.
NO_APPROVAL = -1


@dataclass(frozen=True, slots=True)
class NFTState:
    """Immutable ERC721 state.

    ``owners[t]`` — owning account of token ``t``;
    ``approved[t]`` — account approved for token ``t`` (or ``NO_APPROVAL``);
    ``operators[a]`` — frozenset of operator accounts enabled by ``a``.
    """

    owners: tuple[int, ...]
    approved: tuple[int, ...]
    operators: tuple[frozenset[int], ...]

    def owner_of(self, token_id: int) -> int:
        return self.owners[token_id]

    def balance_of(self, account: int) -> int:
        return sum(1 for owner in self.owners if owner == account)

    def is_authorized(self, pid: int, token_id: int) -> bool:
        """Owner, per-token approved, or operator of the owner (EIP-721)."""
        owner = self.owners[token_id]
        return (
            pid == owner
            or self.approved[token_id] == pid
            or pid in self.operators[owner]
        )

    def with_transfer(self, token_id: int, dest: int) -> "NFTState":
        owners = list(self.owners)
        owners[token_id] = dest
        approved = list(self.approved)
        approved[token_id] = NO_APPROVAL  # approvals are cleared on transfer
        return NFTState(tuple(owners), tuple(approved), self.operators)

    def with_approval(self, token_id: int, account: int) -> "NFTState":
        approved = list(self.approved)
        approved[token_id] = account
        return NFTState(self.owners, tuple(approved), self.operators)

    def with_operator(
        self, holder: int, operator: int, enabled: bool
    ) -> "NFTState":
        operators = list(self.operators)
        current = set(operators[holder])
        if enabled:
            current.add(operator)
        else:
            current.discard(operator)
        operators[holder] = frozenset(current)
        return NFTState(self.owners, self.approved, tuple(operators))


class ERC721TokenType(SequentialObjectType):
    """Sequential specification of an ERC721 contract."""

    name = "erc721"

    def __init__(
        self, num_accounts: int, initial_owners: Sequence[int]
    ) -> None:
        """``initial_owners[t]`` assigns token ``t`` to an account (minting)."""
        if num_accounts <= 0:
            raise InvalidArgumentError("need at least one account")
        self.num_accounts = num_accounts
        owners = tuple(int(o) for o in initial_owners)
        for token_id, owner in enumerate(owners):
            if not 0 <= owner < num_accounts:
                raise InvalidArgumentError(
                    f"token {token_id} minted to unknown account {owner}"
                )
        self.num_tokens = len(owners)
        self._initial = NFTState(
            owners,
            tuple(NO_APPROVAL for _ in owners),
            tuple(frozenset() for _ in range(num_accounts)),
        )

    def initial_state(self) -> NFTState:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        return (
            "ownerOf",
            "balanceOf",
            "transferFrom",
            "approve",
            "getApproved",
            "setApprovalForAll",
            "isApprovedForAll",
        )

    # -- validation -----------------------------------------------------

    def _check_account(self, account: Any) -> None:
        if not isinstance(account, int) or not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    def _check_token(self, token_id: Any) -> None:
        if not isinstance(token_id, int) or not 0 <= token_id < self.num_tokens:
            raise InvalidArgumentError(f"unknown token {token_id!r}")

    # -- Δ ----------------------------------------------------------------

    def apply(
        self, state: NFTState, pid: int, operation: Operation
    ) -> tuple[NFTState, Any]:
        self.validate_name(operation)
        self._check_account(pid)
        handler = getattr(self, f"_apply_{operation.name}")
        return handler(state, pid, *operation.args)

    def _apply_ownerOf(
        self, state: NFTState, pid: int, token_id: int
    ) -> tuple[NFTState, Any]:
        self._check_token(token_id)
        return state, state.owner_of(token_id)

    def _apply_balanceOf(
        self, state: NFTState, pid: int, account: int
    ) -> tuple[NFTState, Any]:
        self._check_account(account)
        return state, state.balance_of(account)

    def _apply_transferFrom(
        self, state: NFTState, pid: int, source: int, dest: int, token_id: int
    ) -> tuple[NFTState, Any]:
        self._check_account(source)
        self._check_account(dest)
        self._check_token(token_id)
        if state.owner_of(token_id) != source or not state.is_authorized(
            pid, token_id
        ):
            return state, FALSE
        return state.with_transfer(token_id, dest), TRUE

    def _apply_approve(
        self, state: NFTState, pid: int, approved: int, token_id: int
    ) -> tuple[NFTState, Any]:
        if approved != NO_APPROVAL:
            self._check_account(approved)
        self._check_token(token_id)
        owner = state.owner_of(token_id)
        if pid != owner and pid not in state.operators[owner]:
            return state, FALSE
        return state.with_approval(token_id, approved), TRUE

    def _apply_getApproved(
        self, state: NFTState, pid: int, token_id: int
    ) -> tuple[NFTState, Any]:
        self._check_token(token_id)
        return state, state.approved[token_id]

    def _apply_setApprovalForAll(
        self, state: NFTState, pid: int, operator: int, enabled: bool
    ) -> tuple[NFTState, Any]:
        self._check_account(operator)
        if operator == pid:
            return state, FALSE  # EIP-721: self-approval is rejected
        return state.with_operator(pid, operator, bool(enabled)), TRUE

    def _apply_isApprovedForAll(
        self, state: NFTState, pid: int, holder: int, operator: int
    ) -> tuple[NFTState, Any]:
        self._check_account(holder)
        self._check_account(operator)
        return state, operator in state.operators[holder]

    # -- static footprints (engine fast path) -----------------------------

    def _nft(self, token_id: int):
        return ("nft", token_id)

    def _ops_cells(self):
        """Authorization may consult *any* account's operator set (the owner
        is state-dependent), so authorized methods observe all of them."""
        return [("ops", a) for a in range(self.num_accounts)]

    def footprint(self, pid: int, operation: Operation) -> OpFootprint:
        """Static footprint over per-token cells ``("nft", t)`` (owner +
        per-token approval, cleared together on transfer) and per-account
        operator cells ``("ops", a)``.

        Transfers of *different* tokens commute — the §6 race is always
        about one specific token — while any two authorized mutations of
        the same token conflict, which is exactly the ``ownerOf`` race
        Algorithm 1 (adapted) decides by consensus.
        """
        self.validate_name(operation)
        self._check_account(pid)
        name, args = operation.name, operation.args
        if name == "ownerOf" or name == "getApproved":
            return footprint(observes=[self._nft(args[0])])
        if name == "balanceOf":
            return footprint(
                observes=[self._nft(t) for t in range(self.num_tokens)]
            )
        if name == "transferFrom":
            _source, _dest, token_id = args
            cell = self._nft(token_id)
            return footprint(
                observes=[cell, *self._ops_cells()], sets=[cell]
            )
        if name == "approve":
            token_id = args[1]
            cell = self._nft(token_id)
            return footprint(
                observes=[cell, *self._ops_cells()], sets=[cell]
            )
        if name == "setApprovalForAll":
            operator = args[0]
            if operator == pid:
                return EMPTY_FOOTPRINT  # EIP-721 self-approval: constant FALSE
            return footprint(sets=[("ops", pid)])
        # isApprovedForAll
        return footprint(observes=[("ops", args[0])])


class ERC721Token(SharedObject):
    """Runtime ERC721 object with ergonomic call builders."""

    def __init__(
        self,
        num_accounts: int,
        initial_owners: Sequence[int],
        name: str | None = None,
    ) -> None:
        super().__init__(
            ERC721TokenType(num_accounts, initial_owners), name=name
        )

    def owner_of(self, token_id: int) -> OpCall:
        return self.call(Operation("ownerOf", (token_id,)))

    def balance_of(self, account: int) -> OpCall:
        return self.call(Operation("balanceOf", (account,)))

    def transfer_from(self, source: int, dest: int, token_id: int) -> OpCall:
        return self.call(Operation("transferFrom", (source, dest, token_id)))

    def approve(self, approved: int, token_id: int) -> OpCall:
        return self.call(Operation("approve", (approved, token_id)))

    def get_approved(self, token_id: int) -> OpCall:
        return self.call(Operation("getApproved", (token_id,)))

    def set_approval_for_all(self, operator: int, enabled: bool) -> OpCall:
        return self.call(Operation("setApprovalForAll", (operator, enabled)))

    def is_approved_for_all(self, holder: int, operator: int) -> OpCall:
        return self.call(Operation("isApprovedForAll", (holder, operator)))
