"""The ERC777 token object (paper §6; EIP-777).

ERC777 keeps ERC20's fungible-token semantics but replaces bounded
allowances with *operators*: "an operator p' in ERC777 is allowed to spend
all the tokens owned by the approving process p" (§6).  A holder is always an
operator for itself (EIP-777 mandates this).

The paper notes that both Algorithm 1 and Algorithm 2 "can be adapted by
replacing the approved spenders with the corresponding operators"; the
adaptation lives in :mod:`repro.protocols.erc777_consensus`.

Hooks (the EIP's send/receive callbacks) are modelled as no-ops: they do not
affect the synchronization analysis, and §6 of the paper does not analyze
them either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class ERC777State:
    """Balances plus per-holder operator sets."""

    balances: tuple[int, ...]
    operators: tuple[frozenset[int], ...]

    def balance(self, account: int) -> int:
        return self.balances[account]

    def is_operator_for(self, operator: int, holder: int) -> bool:
        # EIP-777: an address is always an operator for itself.
        return operator == holder or operator in self.operators[holder]

    def with_transfer(
        self, source: int, dest: int, value: int
    ) -> "ERC777State":
        balances = list(self.balances)
        balances[source] -= value
        balances[dest] += value
        return ERC777State(tuple(balances), self.operators)

    def with_operator(self, holder: int, operator: int, enabled: bool) -> "ERC777State":
        operators = list(self.operators)
        current = set(operators[holder])
        if enabled:
            current.add(operator)
        else:
            current.discard(operator)
        operators[holder] = frozenset(current)
        return ERC777State(self.balances, tuple(operators))

    @property
    def total_supply(self) -> int:
        return sum(self.balances)


class ERC777TokenType(SequentialObjectType):
    """Sequential specification of an ERC777 contract."""

    name = "erc777"

    def __init__(self, initial_balances: Sequence[int]) -> None:
        balances = tuple(int(b) for b in initial_balances)
        if any(b < 0 for b in balances):
            raise InvalidArgumentError("balances must be non-negative")
        self.num_accounts = len(balances)
        if self.num_accounts == 0:
            raise InvalidArgumentError("need at least one account")
        self._initial = ERC777State(
            balances, tuple(frozenset() for _ in balances)
        )

    def initial_state(self) -> ERC777State:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        return (
            "send",
            "operatorSend",
            "authorizeOperator",
            "revokeOperator",
            "isOperatorFor",
            "balanceOf",
            "totalSupply",
        )

    def _check_account(self, account: Any) -> None:
        if not isinstance(account, int) or not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    def _check_value(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise InvalidArgumentError(f"amount must be a natural number: {value!r}")

    def apply(
        self, state: ERC777State, pid: int, operation: Operation
    ) -> tuple[ERC777State, Any]:
        self.validate_name(operation)
        self._check_account(pid)
        handler = getattr(self, f"_apply_{operation.name}")
        return handler(state, pid, *operation.args)

    def _apply_send(
        self, state: ERC777State, pid: int, dest: int, value: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(dest)
        self._check_value(value)
        if state.balance(pid) < value:
            return state, FALSE
        return state.with_transfer(pid, dest, value), TRUE

    def _apply_operatorSend(
        self, state: ERC777State, pid: int, source: int, dest: int, value: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(source)
        self._check_account(dest)
        self._check_value(value)
        if (
            not state.is_operator_for(pid, source)
            or state.balance(source) < value
        ):
            return state, FALSE
        return state.with_transfer(source, dest, value), TRUE

    def _apply_authorizeOperator(
        self, state: ERC777State, pid: int, operator: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(operator)
        if operator == pid:
            return state, FALSE  # EIP-777 reverts on self-(de)authorization
        return state.with_operator(pid, operator, True), TRUE

    def _apply_revokeOperator(
        self, state: ERC777State, pid: int, operator: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(operator)
        if operator == pid:
            return state, FALSE
        return state.with_operator(pid, operator, False), TRUE

    def _apply_isOperatorFor(
        self, state: ERC777State, pid: int, operator: int, holder: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(operator)
        self._check_account(holder)
        return state, state.is_operator_for(operator, holder)

    def _apply_balanceOf(
        self, state: ERC777State, pid: int, account: int
    ) -> tuple[ERC777State, Any]:
        self._check_account(account)
        return state, state.balance(account)

    def _apply_totalSupply(
        self, state: ERC777State, pid: int
    ) -> tuple[ERC777State, Any]:
        return state, state.total_supply


class ERC777Token(SharedObject):
    """Runtime ERC777 object with ergonomic call builders."""

    def __init__(
        self, initial_balances: Sequence[int], name: str | None = None
    ) -> None:
        super().__init__(ERC777TokenType(initial_balances), name=name)

    def send(self, dest: int, value: int) -> OpCall:
        return self.call(Operation("send", (dest, value)))

    def operator_send(self, source: int, dest: int, value: int) -> OpCall:
        return self.call(Operation("operatorSend", (source, dest, value)))

    def authorize_operator(self, operator: int) -> OpCall:
        return self.call(Operation("authorizeOperator", (operator,)))

    def revoke_operator(self, operator: int) -> OpCall:
        return self.call(Operation("revokeOperator", (operator,)))

    def is_operator_for(self, operator: int, holder: int) -> OpCall:
        return self.call(Operation("isOperatorFor", (operator, holder)))

    def balance_of(self, account: int) -> OpCall:
        return self.call(Operation("balanceOf", (account,)))

    def total_supply(self) -> OpCall:
        return self.call(Operation("totalSupply"))
