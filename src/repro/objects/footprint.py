"""Static read/write footprints of token operations.

The paper's trichotomy (Theorem 3's case analysis) classifies a pair of
operations *semantically*, by running the sequential specification both ways
(:mod:`repro.analysis.commutativity`).  That oracle is exact but costs four
``apply`` calls per pair per state.  The execution engine
(:mod:`repro.engine`) needs the same judgment over every pair in a mempool
window on every round, so each object type exposes a *static* footprint: the
set of abstract state locations an invocation may observe or write,
independent of the current state.

A footprint distinguishes three access kinds:

* ``observes`` — locations whose current value can influence the response,
  a guard, or a written value (e.g. ``transfer`` observes the source
  balance);
* ``adds`` — locations updated by a commutative delta (balance increments
  and decrements, allowance decrements): two deltas to the same cell
  commute;
* ``sets`` — locations overwritten with a state-independent value
  (``approve``'s absolute assignment): order matters against any other
  write.

Token transfers conserve the total supply, so ``totalSupply`` observes the
dedicated :data:`SUPPLY` location that no transfer writes — the engine can
run supply queries in parallel with arbitrary transfer traffic.

:func:`static_pair_kind` folds two footprints into the paper's trichotomy.
The verdicts are *sound under-approximations* of the semantic oracle (see
``tests/engine/test_classifier.py`` for the machine-checked contract):

* static ``"commute"``  ⇒ the pair commutes at **every** state;
* static ``"read-only"`` ⇒ one op never changes state, so the oracle says
  read-only (or commute) at every state;
* static ``"conflict"`` is the conservative fallback — at a particular
  state the oracle may still find the pair commuting (e.g. two transfers
  from a richly funded account).

The string values deliberately match ``PairKind`` in
:mod:`repro.analysis.commutativity` (which imports :mod:`repro.objects` and
therefore cannot be imported from here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Abstract location: a hashable tuple such as ``("bal", 3)``,
#: ``("allow", 1, 2)``, ``("nft", 7)`` or :data:`SUPPLY`.
Location = tuple

#: Pseudo-location read by supply queries; transfers conserve it.
SUPPLY: Location = ("supply",)


def bal(account: int) -> Location:
    """The balance cell ``β(a)``."""
    return ("bal", account)


def allow(account: int, spender: int) -> Location:
    """The allowance cell ``α(a, p)``."""
    return ("allow", account, spender)


@dataclass(frozen=True, slots=True)
class OpFootprint:
    """Static may-access summary of one invocation.

    An empty footprint (no observes, no writes) describes an operation whose
    response is a constant and whose execution never changes the state —
    e.g. a zero-value ``transfer`` — which commutes with everything.
    """

    observes: frozenset = field(default_factory=frozenset)
    adds: frozenset = field(default_factory=frozenset)
    sets: frozenset = field(default_factory=frozenset)

    @property
    def writes(self) -> frozenset:
        """All locations this invocation may modify."""
        return self.adds | self.sets

    @property
    def is_read_only(self) -> bool:
        """True when the invocation can never change the state."""
        return not self.adds and not self.sets

    @property
    def touched(self) -> frozenset:
        return self.observes | self.adds | self.sets

    @property
    def contended(self) -> frozenset:
        """Locations this invocation *synchronizes on*: guarded decrements
        (cells both observed and delta-written — a transfer's source
        balance, a transferFrom's allowance) plus absolute writes.

        This is the footprint-level image of the paper's per-account
        synchronization groups: two operations of distinct processes need
        consensus exactly when their contended sets intersect (two enabled
        spenders debiting one balance, approve racing transferFrom on an
        allowance cell, two transfers of one NFT).  Blind credits
        (``adds`` that are never observed) are not contended — incoming
        transfers commute CRDT-style and at worst *enable* a guard, which
        an order (broadcast causality / the engine's barrier) resolves
        without consensus; that is why single-owner traffic is the
        consensus-number-1 regime."""
        return (self.adds & self.observes) | self.sets

    def accounts(self) -> frozenset:
        """Account indices appearing in any touched location (for sharding)."""
        return frozenset(accounts_in(self.touched))


def accounts_in(locations) -> list[int]:
    """Sorted account indices anchoring the given locations.

    The convention — shared by footprint reporting and the shard planner —
    is that a location's *first* index after its tag names the anchoring
    account (``("bal", a)``, ``("allow", a, spender)``, ``("nft", t)``).
    """
    found = {
        part
        for location in locations
        for part in location[1:2]
        if isinstance(part, int)
    }
    return sorted(found)


def anchor_account(fp: "OpFootprint | None", default: int) -> int:
    """The account an invocation *synchronizes on* — the owner-extraction
    rule shared by the engine's shard planner and the cluster's router.

    Preference order: the smallest contended account (the cell the paper's
    synchronization groups form around), else the smallest written account,
    else the smallest observed one, else ``default`` (conventionally the
    calling process).  Anchoring on the contended cell keeps every
    operation of one synchronization group on that account's owner — the
    placement under which owner-local traffic needs no coordination at all.
    """
    if fp is not None:
        for pool in (fp.contended, fp.writes, fp.observes):
            accounts = accounts_in(pool)
            if accounts:
                return accounts[0]
    return default


@dataclass(frozen=True, slots=True)
class FootprintSummary:
    """Kind-aware union of many footprints — one batch's may-access set.

    The cross-round pipelining layers (:mod:`repro.engine.pipeline`, the
    cluster router's frontier gating) need a *batch*-level commutativity
    test: may every operation of batch A be reordered against every
    operation of batch B?  :meth:`conflicts_with` answers with exactly the
    per-pair rule of :func:`static_pair_kind` lifted to unions — sound
    because a union can only over-approximate each member's accesses.  An
    ``unknown`` summary (some member had no footprint) conflicts with
    everything, the same conservative fallback the classifier uses.
    """

    observes: frozenset = field(default_factory=frozenset)
    adds: frozenset = field(default_factory=frozenset)
    sets: frozenset = field(default_factory=frozenset)
    unknown: bool = False

    @classmethod
    def over(cls, footprints) -> "FootprintSummary":
        """Summarize an iterable of ``OpFootprint | None``."""
        observes: set = set()
        adds: set = set()
        sets: set = set()
        unknown = False
        for fp in footprints:
            if fp is None:
                unknown = True
            else:
                observes |= fp.observes
                adds |= fp.adds
                sets |= fp.sets
        return cls(
            frozenset(observes), frozenset(adds), frozenset(sets), unknown
        )

    @property
    def writes(self) -> frozenset:
        return self.adds | self.sets

    def conflicts_with(self, other: "FootprintSummary") -> bool:
        """True unless every cross pair statically commutes: no write may
        touch what the other side observes, and shared written cells must
        be commutative deltas on both sides."""
        if self.unknown or other.unknown:
            return True
        if self.writes & other.observes or other.writes & self.observes:
            return True
        shared = self.writes & other.writes
        return not (shared <= self.adds and shared <= other.adds)


#: Footprint of a pure no-op (constant response, state never changes).
EMPTY_FOOTPRINT = OpFootprint()


def footprint(observes=(), adds=(), sets=()) -> OpFootprint:
    """Convenience constructor from iterables."""
    return OpFootprint(frozenset(observes), frozenset(adds), frozenset(sets))


def static_pair_kind(
    first: OpFootprint | None, second: OpFootprint | None
) -> str:
    """Classify a pair of footprints into the paper's trichotomy.

    Returns one of ``"commute"``, ``"read-only"``, ``"conflict"`` (the
    values of ``PairKind``).  ``None`` footprints (unknown operations)
    classify conservatively as ``"conflict"``.
    """
    if first is None or second is None:
        return "conflict"
    # An op whose writes stay clear of everything the other observes or
    # writes (shared cells allowed only when both access them as commutative
    # deltas) can be reordered freely: the other op takes the same branch,
    # writes the same values, and returns the same response either way.
    w1, w2 = first.writes, second.writes
    if not (w1 & second.observes) and not (w2 & first.observes):
        shared = w1 & w2
        if shared <= first.adds and shared <= second.adds:
            return "commute"
    if first.is_read_only or second.is_read_only:
        return "read-only"
    return "conflict"
