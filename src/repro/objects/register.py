"""Atomic registers (paper §3.1, "Registers").

An atomic multi-reader multi-writer register with ``read``/``write``.  The
runtime executes each operation at a single indivisible point, which yields
exactly the atomic-register semantics assumed by the paper (a total order of
operations consistent with real time).

Consensus number of a register is 1 (FLP / Herlihy); the hierarchy registry in
:mod:`repro.analysis.hierarchy` records this.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.runtime.calls import OpCall
from repro.spec.object_type import TRUE, SequentialObjectType
from repro.spec.operation import Operation


#: The paper initializes registers to an out-of-band "empty" value ⊥.
BOTTOM = None


class RegisterType(SequentialObjectType):
    """Sequential specification of an atomic register; state is the value."""

    name = "register"

    def __init__(self, initial: Any = BOTTOM) -> None:
        self._initial = initial

    def initial_state(self) -> Any:
        return self._initial

    def operation_names(self) -> tuple[str, ...]:
        return ("read", "write")

    def apply(
        self, state: Any, pid: int, operation: Operation
    ) -> tuple[Any, Any]:
        self.validate_name(operation)
        if operation.name == "read":
            if operation.args:
                raise InvalidArgumentError("read takes no arguments")
            return state, state
        # write
        if len(operation.args) != 1:
            raise InvalidArgumentError("write takes exactly one argument")
        return operation.args[0], TRUE


class AtomicRegister(SharedObject):
    """Runtime atomic register with ergonomic call builders."""

    def __init__(self, name: str | None = None, initial: Any = BOTTOM) -> None:
        super().__init__(
            RegisterType(initial), initial_state=initial, name=name
        )

    def read(self) -> OpCall:
        return self.call(Operation("read"))

    def write(self, value: Any) -> OpCall:
        return self.call(Operation("write", (value,)))


def register_array(count: int, prefix: str = "R") -> list[AtomicRegister]:
    """The paper's ``R[1..k]``: a list of named atomic registers.

    Indices are 0-based in code; register ``R[j]`` of the paper is
    ``array[j-1]`` here (see DESIGN.md, Reproduction notes).
    """
    if count < 0:
        raise InvalidArgumentError("register array size must be non-negative")
    return [AtomicRegister(name=f"{prefix}[{j}]") for j in range(count)]


def register_matrix(
    rows: int, cols: int, prefix: str = "R"
) -> list[list[AtomicRegister]]:
    """The paper's per-account allowance registers ``R_a[1..n]`` (Algorithm 2),
    initialized to 0 by callers as needed."""
    if rows < 0 or cols < 0:
        raise InvalidArgumentError("register matrix dimensions must be non-negative")
    return [
        [AtomicRegister(name=f"{prefix}[{a}][{j}]") for j in range(cols)]
        for a in range(rows)
    ]
