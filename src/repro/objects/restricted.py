"""Transition-restricted object types: ``T|_{Q'}`` (paper §4, "Further
notation").

``T|_{Q'} = (Q', q0, O, R, Δ')`` where ``Δ' = {(q,p,o,r,q') ∈ Δ : q' ∈ Q'}``.
Operationally: an invocation whose successor state would leave ``Q'`` has no
valid transition; we reject it by leaving the state unchanged and returning
``FALSE`` — exactly the behaviour Algorithm 2 implements for `approve`
invocations that would exceed ``k`` enabled spenders (its line 17/18
"Ensure we stay in Q_k").

Theorem 4 uses ``T|_{Q_k}``; build it with :func:`restrict_to_qk`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import InvalidArgumentError
from repro.objects.base import SharedObject
from repro.runtime.calls import OpCall
from repro.spec.object_type import FALSE, SequentialObjectType
from repro.spec.operation import Operation


class RestrictedType(SequentialObjectType):
    """Wrap an object type, rejecting transitions that leave ``Q'``."""

    def __init__(
        self,
        inner: SequentialObjectType,
        allowed: Callable[[Any], bool],
        name: str | None = None,
    ) -> None:
        """Args:
            inner: The unrestricted type ``T``.
            allowed: The characteristic function of ``Q'``.
            name: Optional display name (defaults to ``"<inner>|Q'"``).
        """
        self.inner = inner
        self.allowed = allowed
        self.name = name if name is not None else f"{inner.name}|Q'"
        if not allowed(inner.initial_state()):
            raise InvalidArgumentError("initial state q0 must lie inside Q'")

    def initial_state(self) -> Any:
        return self.inner.initial_state()

    def operation_names(self) -> tuple[str, ...]:
        return self.inner.operation_names()

    def apply(
        self, state: Any, pid: int, operation: Operation
    ) -> tuple[Any, Any]:
        successor, response = self.inner.apply(state, pid, operation)
        if successor != state and not self.allowed(successor):
            return state, FALSE
        return successor, response


class RestrictedObject(SharedObject):
    """Runtime wrapper for a restricted type; forwards call builders by
    delegating operation construction to the caller (use :meth:`call`)."""

    def __init__(
        self,
        inner: SequentialObjectType,
        allowed: Callable[[Any], bool],
        initial_state: Any | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            RestrictedType(inner, allowed),
            initial_state=initial_state,
            name=name,
        )

    def op(self, op_name: str, *args: Any) -> OpCall:
        return self.call(Operation(op_name, tuple(args)))


def restrict_to_qk(token_type: SequentialObjectType, k: int) -> RestrictedType:
    """Build ``T|_{Q_≤k}``: the token restricted to states whose
    synchronization level is at most ``k``.

    Note: the paper restricts to the partition cell ``Q_k`` (exactly ``k``
    spenders somewhere), but its Algorithm 2 only ever *blocks increases past
    k* — transitions that lower the level (consuming allowances) are allowed
    and leave ``Q_k`` downward.  The downward-closed set ``Q_{≤k} = Q_1 ∪ …
    ∪ Q_k`` is the set actually preserved by Algorithm 2; we follow the
    algorithm.  See DESIGN.md, Reproduction notes.
    """
    # Imported here to avoid a package cycle (analysis imports objects).
    from repro.analysis.partition import synchronization_level

    if k < 1:
        raise InvalidArgumentError("k must be at least 1")
    return RestrictedType(
        token_type,
        lambda state: synchronization_level(state) <= k,
        name=f"{token_type.name}|Q<={k}",
    )


def restrict_to_potential_qk(
    token_type: SequentialObjectType, k: int
) -> RestrictedType:
    """Build the token restricted to states whose *potential* spender count
    (allowance-based, ignoring balances — see
    :func:`repro.analysis.spenders.potential_spenders`) stays at most ``k``.

    This is the precise invariant Algorithm 2's approve guard enforces: the
    guard counts positive allowance registers without consulting balances.
    Since the potential count bounds the synchronization level from above,
    this restriction implies the paper's ``Q_{≤k}`` restriction; the
    differential tests for Theorem 4 compare the emulation against this exact
    specification.
    """
    from repro.analysis.spenders import potential_level

    if k < 1:
        raise InvalidArgumentError("k must be at least 1")
    return RestrictedType(
        token_type,
        lambda state: potential_level(state) <= k,
        name=f"{token_type.name}|Q^pot<={k}",
    )
