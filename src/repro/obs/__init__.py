"""Observability for the token-engine simulation stack.

Virtual-time span tracing (:class:`TraceRecorder`, with an optional
ring-buffer sampling mode for long runs), a unified metrics registry
(:class:`MetricsRegistry`), Chrome-trace-event export
(:func:`chrome_trace` / :func:`write_chrome_trace`, with lossless
reconstruction via :func:`trace_from_chrome`), exact makespan
attribution (:func:`critical_path_report`), per-track occupancy and
team-lane churn (:func:`utilization_report`), deterministic trace
diffing (:func:`explain_regression`), windowed virtual-time series with
a conservation guarantee (:class:`TimeSeries`), and per-window latency
SLO scanning (:class:`SLOMonitor`).  Attach a recorder via the
``tracer=`` parameter of :class:`repro.engine.BatchExecutor`,
:class:`repro.engine.PipelinedExecutor`, or
:class:`repro.cluster.TokenCluster`; with no tracer every
instrumentation site is a no-op.
"""

from repro.obs.diff import (
    CategoryDelta,
    RegressionExplanation,
    RunProfile,
    StageDelta,
    TrackDelta,
    diff_profiles,
    explain_regression,
    profile_document,
    profile_tracer,
)
from repro.obs.export import (
    TraceExportError,
    chrome_trace,
    trace_from_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.report import (
    AttributionReport,
    PathSegment,
    critical_path_report,
)
from repro.obs.series import SeriesError, TimeSeries
from repro.obs.slo import (
    SLOError,
    SLOMonitor,
    SLOReport,
    SLOWindow,
)
from repro.obs.trace import (
    CATEGORIES,
    LIFECYCLE_STAGES,
    Instant,
    Span,
    TraceError,
    TraceRecorder,
)
from repro.obs.utilization import (
    LaneChurn,
    QueueWait,
    TrackUtilization,
    UtilizationReport,
    lane_churn,
    utilization_report,
)

__all__ = [
    "AttributionReport",
    "CATEGORIES",
    "CategoryDelta",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "LIFECYCLE_STAGES",
    "LaneChurn",
    "MetricsError",
    "MetricsRegistry",
    "PathSegment",
    "QueueWait",
    "RegressionExplanation",
    "RunProfile",
    "SLOError",
    "SLOMonitor",
    "SLOReport",
    "SLOWindow",
    "SeriesError",
    "Span",
    "StageDelta",
    "TimeSeries",
    "TraceError",
    "TraceExportError",
    "TraceRecorder",
    "TrackDelta",
    "TrackUtilization",
    "UtilizationReport",
    "chrome_trace",
    "critical_path_report",
    "diff_profiles",
    "explain_regression",
    "lane_churn",
    "profile_document",
    "profile_tracer",
    "trace_from_chrome",
    "utilization_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]
