"""Observability for the token-engine simulation stack.

Virtual-time span tracing (:class:`TraceRecorder`), a unified metrics
registry (:class:`MetricsRegistry`), Chrome-trace-event export
(:func:`chrome_trace` / :func:`write_chrome_trace`), and exact makespan
attribution (:func:`critical_path_report`).  Attach a recorder via the
``tracer=`` parameter of :class:`repro.engine.BatchExecutor`,
:class:`repro.engine.PipelinedExecutor`, or
:class:`repro.cluster.TokenCluster`; with no tracer every
instrumentation site is a no-op.
"""

from repro.obs.export import (
    TraceExportError,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.report import (
    AttributionReport,
    PathSegment,
    critical_path_report,
)
from repro.obs.trace import (
    CATEGORIES,
    LIFECYCLE_STAGES,
    Instant,
    Span,
    TraceError,
    TraceRecorder,
)

__all__ = [
    "AttributionReport",
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "LIFECYCLE_STAGES",
    "MetricsError",
    "MetricsRegistry",
    "PathSegment",
    "Span",
    "TraceError",
    "TraceExportError",
    "TraceRecorder",
    "chrome_trace",
    "critical_path_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]
