"""Deterministic trace/attribution diffing: explain *why* a run moved.

The bench-regression gate can say "makespan drifted +12%"; this module
says where the time went.  Two runs are reduced to :class:`RunProfile`s
— the makespan, the category totals of the exact critical-path
attribution, the same totals refined per track (from the walk's
segments), and the per-op lifecycle stage aggregates — and
:func:`diff_profiles` aligns them into a ranked
:class:`RegressionExplanation`.

The headline property is inherited from the attribution's exactness:
each profile's category totals partition its own makespan, so the
per-category deltas **re-partition the makespan delta** exactly —
``sum(delta per category) == makespan_b − makespan_a`` up to float
re-association, enforced by :meth:`RegressionExplanation.check` and the
test suite.  A profile built from a *sampled* trace carries exact
occupancy totals instead (additive, not a makespan partition); the
explanation is still ranked and useful but drops the exactness claim
(``exact=False``).

Profiles come from live recorders (:func:`profile_tracer`) or from
exported Chrome-trace documents (:func:`profile_document`) — the latter
is what ``scripts/diff_trace.py`` and ``scripts/check_bench.py
--explain`` use to compare a fresh traced run against a committed
baseline trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.export import trace_from_chrome
from repro.obs.report import critical_path_report
from repro.obs.trace import TraceError, TraceRecorder


@dataclass(frozen=True, slots=True)
class CategoryDelta:
    """One attribution category's movement between two runs."""

    category: str
    base: float
    other: float

    @property
    def delta(self) -> float:
        return self.other - self.base

    def as_dict(self) -> dict:
        return {
            "category": self.category,
            "base": self.base,
            "run": self.other,
            "delta": self.delta,
        }


@dataclass(frozen=True, slots=True)
class TrackDelta:
    """One (track, category) cell's movement between two runs."""

    track: str
    category: str
    base: float
    other: float

    @property
    def delta(self) -> float:
        return self.other - self.base

    def as_dict(self) -> dict:
        return {
            "track": self.track,
            "category": self.category,
            "base": self.base,
            "run": self.other,
            "delta": self.delta,
        }


@dataclass(frozen=True, slots=True)
class StageDelta:
    """One lifecycle stage transition's mean-per-op movement."""

    stage: str
    base_mean: float
    other_mean: float
    base_count: int
    other_count: int

    @property
    def delta(self) -> float:
        return self.other_mean - self.base_mean

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "base_mean": self.base_mean,
            "run_mean": self.other_mean,
            "base_count": self.base_count,
            "run_count": self.other_count,
            "delta": self.delta,
        }


@dataclass(frozen=True, slots=True)
class RunProfile:
    """One run reduced to the aligned quantities the differ consumes."""

    label: str
    makespan: float
    #: category -> virtual time.  When ``exact``, the critical-path
    #: attribution (partitions the makespan); otherwise the additive
    #: occupancy totals of a sampled trace.
    totals: dict[str, float]
    #: category -> additive occupancy (every lane's busy + stall time).
    #: Always exact, even sampled — the common currency a mixed
    #: exact-vs-sampled diff falls back to.
    occupancy: dict[str, float]
    #: (track, category) -> additive occupancy per track; annotates each
    #: category delta with the track that moved it most.
    track_totals: dict[tuple[str, str], float]
    #: stage transition -> {"count", "total"} per-op lifecycle aggregates.
    stages: dict[str, dict]
    exact: bool
    spans: int


def profile_tracer(
    tracer: TraceRecorder, label: str = "run"
) -> RunProfile:
    """Profile a live recorder: exact critical-path attribution for a
    full trace, exact occupancy totals for a sampled one."""
    occupancy = tracer.category_totals()
    track_totals: dict[tuple[str, str], float] = {}
    for per_track in (tracer.busy_totals(), tracer.stall_totals()):
        for track, categories in per_track.items():
            for category, amount in categories.items():
                key = (track, category)
                track_totals[key] = track_totals.get(key, 0.0) + amount
    if tracer.sampled:
        totals = dict(occupancy)
        exact = False
    else:
        totals = dict(critical_path_report(tracer).check().totals)
        exact = True
    return RunProfile(
        label=label,
        makespan=tracer.makespan,
        totals=totals,
        occupancy=occupancy,
        track_totals=track_totals,
        stages=tracer.stage_totals(),
        exact=exact,
        spans=tracer.spans_recorded,
    )


def profile_document(document: dict, label: str = "run") -> RunProfile:
    """Profile an exported Chrome-trace document (see
    :func:`repro.obs.export.trace_from_chrome`).  The per-op lifecycle
    aggregates come from ``otherData.op_stages`` (lifecycles are not
    reconstructible from span events); a sampled document's exact
    category totals come from ``otherData.category_totals``."""
    recorder = trace_from_chrome(document)
    other = document.get("otherData", {})
    profile = profile_tracer(recorder, label=label)
    occupancy = profile.occupancy
    if "category_totals" in other:
        # A sampled document's retained spans under-count; the embedded
        # totals are the exact accumulators (and for a full document
        # they match the recomputed ones to float precision).
        occupancy = {
            str(category): float(amount)
            for category, amount in other["category_totals"].items()
        }
    return RunProfile(
        label=label,
        makespan=float(other.get("makespan", profile.makespan)),
        totals=occupancy if recorder.sampled else profile.totals,
        occupancy=occupancy,
        track_totals=profile.track_totals,
        stages={
            str(stage): dict(entry)
            for stage, entry in other.get("op_stages", {}).items()
        },
        exact=profile.exact,
        spans=profile.spans,
    )


def _ranked(deltas):
    return tuple(
        sorted(deltas, key=lambda d: (-abs(d.delta), str(d.as_dict())))
    )


def diff_profiles(
    base: RunProfile, other: RunProfile
) -> "RegressionExplanation":
    """Align two profiles category by category, track by track, and
    stage by stage; every key present on either side appears (missing
    side contributes 0), so nothing a run gained or lost can hide.

    When both profiles are exact the category deltas come from the
    critical-path totals (and re-partition the makespan delta); when
    either side is sampled, *both* sides fall back to the additive
    occupancy totals so the comparison stays like-for-like."""
    exact = base.exact and other.exact
    base_totals = base.totals if exact else base.occupancy
    other_totals = other.totals if exact else other.occupancy
    categories = _ranked(
        CategoryDelta(
            category=category,
            base=base_totals.get(category, 0.0),
            other=other_totals.get(category, 0.0),
        )
        for category in sorted(set(base_totals) | set(other_totals))
    )
    tracks = _ranked(
        TrackDelta(
            track=track,
            category=category,
            base=base.track_totals.get((track, category), 0.0),
            other=other.track_totals.get((track, category), 0.0),
        )
        for track, category in sorted(
            set(base.track_totals) | set(other.track_totals)
        )
    )
    stages = []
    for stage in sorted(set(base.stages) | set(other.stages)):
        base_entry = base.stages.get(stage, {"count": 0, "total": 0.0})
        other_entry = other.stages.get(stage, {"count": 0, "total": 0.0})
        stages.append(
            StageDelta(
                stage=stage,
                base_mean=(
                    base_entry["total"] / base_entry["count"]
                    if base_entry["count"]
                    else 0.0
                ),
                other_mean=(
                    other_entry["total"] / other_entry["count"]
                    if other_entry["count"]
                    else 0.0
                ),
                base_count=int(base_entry["count"]),
                other_count=int(other_entry["count"]),
            )
        )
    return RegressionExplanation(
        base=base,
        other=other,
        categories=categories,
        tracks=tracks,
        stages=_ranked(stages),
    )


@dataclass(frozen=True, slots=True)
class RegressionExplanation:
    """A ranked, exact explanation of where two runs' time diverged."""

    base: RunProfile
    other: RunProfile
    #: Ranked by |delta|, largest mover first.
    categories: tuple[CategoryDelta, ...]
    tracks: tuple[TrackDelta, ...]
    stages: tuple[StageDelta, ...]

    @property
    def makespan_delta(self) -> float:
        return self.other.makespan - self.base.makespan

    @property
    def exact(self) -> bool:
        """Both sides carry makespan-partitioning attribution, so the
        category deltas re-partition the makespan delta."""
        return self.base.exact and self.other.exact

    @property
    def attributed_delta(self) -> float:
        return sum(delta.delta for delta in self.categories)

    def check(self, tolerance: float = 1e-6) -> "RegressionExplanation":
        """Assert the per-category deltas re-partition the makespan
        delta exactly (float re-association aside).  Only meaningful —
        and only allowed — when both profiles are exact."""
        if not self.exact:
            raise TraceError(
                "a sampled profile carries occupancy totals, not a "
                "makespan partition; the delta-repartition check only "
                "applies to full traces"
            )
        bound = tolerance * max(
            1.0, abs(self.base.makespan), abs(self.other.makespan)
        )
        if abs(self.attributed_delta - self.makespan_delta) > bound:
            raise TraceError(
                f"category deltas do not re-partition the makespan "
                f"delta: sum {self.attributed_delta!r} vs "
                f"{self.makespan_delta!r}"
            )
        return self

    def worst_track(self, category: str) -> TrackDelta | None:
        """The track where ``category`` moved the most (same sign
        preference: the largest absolute contributor)."""
        candidates = [
            delta for delta in self.tracks if delta.category == category
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda d: abs(d.delta))

    def as_dict(self) -> dict:
        return {
            "base": {
                "label": self.base.label,
                "makespan": self.base.makespan,
                "spans": self.base.spans,
            },
            "run": {
                "label": self.other.label,
                "makespan": self.other.makespan,
                "spans": self.other.spans,
            },
            "makespan_delta": self.makespan_delta,
            "exact": self.exact,
            "categories": [d.as_dict() for d in self.categories],
            "tracks": [d.as_dict() for d in self.tracks],
            "stages": [d.as_dict() for d in self.stages],
        }

    def render(self, top: int | None = None) -> list[str]:
        """Ranked human-readable explanation lines.  ``top`` bounds the
        category lines (None = all); the makespan header and the stage
        summary always print, so even a zero-delta diff reads clearly."""
        relative = (
            self.makespan_delta / self.base.makespan
            if self.base.makespan > 0
            else 0.0
        )
        lines = [
            f"trace diff ({self.base.label} -> {self.other.label}): "
            f"makespan {self.base.makespan:.2f} -> "
            f"{self.other.makespan:.2f} vt "
            f"({self.makespan_delta:+.2f}, {relative:+.1%}"
            + ("" if self.exact else ", sampled/occupancy")
            + ")"
        ]
        shown = self.categories if top is None else self.categories[:top]
        for rank, delta in enumerate(shown, start=1):
            line = (
                f"  {rank}. {delta.category:<15}{delta.delta:>+9.2f} vt "
                f"({delta.base:.2f} -> {delta.other:.2f})"
            )
            worst = self.worst_track(delta.category)
            if worst is not None and abs(worst.delta) > 1e-9:
                line += (
                    f", worst on {worst.track} ({worst.delta:+.2f})"
                )
            lines.append(line)
        movers = [d for d in self.stages if abs(d.delta) > 0]
        if movers:
            lines.append(
                "  stages: "
                + ", ".join(
                    f"{d.stage} {d.delta:+.3f} vt/op"
                    for d in movers[: top if top is not None else None]
                )
            )
        if all(d.delta == 0 for d in self.categories):
            lines.append(
                "  no attribution movement: the traced re-run matches "
                "the baseline trace"
            )
        return lines


def explain_regression(
    base, other, labels: tuple[str, str] = ("base", "run")
) -> RegressionExplanation:
    """Diff two runs given recorders, profiles, or exported documents
    (any mix); the one-call form of profile→diff."""

    def as_profile(source, label: str) -> RunProfile:
        if isinstance(source, RunProfile):
            return source
        if isinstance(source, TraceRecorder):
            return profile_tracer(source, label=label)
        if isinstance(source, dict):
            return profile_document(source, label=label)
        raise TraceError(
            f"cannot profile a {type(source).__name__}; pass a "
            f"TraceRecorder, a RunProfile, or a Chrome-trace document"
        )

    return diff_profiles(
        as_profile(base, labels[0]), as_profile(other, labels[1])
    )
