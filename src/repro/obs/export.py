"""Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).

One process per layer (engine, cluster node, router, sync pool), one
thread per track (lane, node lane, team lane), so Perfetto renders the
virtual timeline the way the simulator ran it.  Virtual time units map
to microseconds (``ts = virtual_time * SCALE``) purely for display — the
trace stays unitless in substance, like everything else in the repo.

The :func:`validate_chrome_trace` checker is deliberately strict about
the subset of the trace-event format we emit ("X" complete events, "i"
instants, "M" metadata); CI validates every exported trace with it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.obs.trace import TraceRecorder

#: Virtual time units -> trace-event microseconds (display scale only).
SCALE = 1000.0


class TraceExportError(ReproError):
    """An exported document that is not valid Chrome trace-event JSON."""


def _track_ids(tracer: TraceRecorder) -> dict[str, tuple[int, int]]:
    """Assign stable (pid, tid) pairs per track: tracks sharing a dotted
    prefix ("node1.lane0", "node1.lane1") share a process."""
    processes: dict[str, int] = {}
    ids: dict[str, tuple[int, int]] = {}
    next_tid: dict[int, int] = {}
    for track in tracer.tracks():
        process = track.split(".", 1)[0] if "." in track else "engine"
        pid = processes.setdefault(process, len(processes) + 1)
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        ids[track] = (pid, tid)
    return ids


def chrome_trace(
    tracer: TraceRecorder, metadata: dict | None = None
) -> dict:
    """Render a recorder as a Chrome trace-event document (JSON-ready).

    Spans become "X" complete events; their stalls become separate "X"
    events immediately preceding them on the same track (so a stall is
    *visible* in Perfetto, not hidden in args); instants become "i"
    events; tracks are named through "M" metadata events.  Extra
    ``metadata`` (e.g. the attribution totals) rides in ``otherData``.
    """
    ids = _track_ids(tracer)
    events: list[dict] = []
    named_processes: set[int] = set()
    for track, (pid, tid) in ids.items():
        process = track.split(".", 1)[0] if "." in track else "engine"
        if pid not in named_processes:
            named_processes.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        pid, tid = ids[span.track]
        # ``stalls`` is latest-first; render earliest-first so the wait
        # boxes tile [start - total_stall, start).
        cursor = span.start - sum(amount for _, amount in span.stalls)
        for stall_category, amount in reversed(span.stalls):
            if amount > 0:
                events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "name": f"wait:{stall_category}",
                        "cat": stall_category,
                        "ts": cursor * SCALE,
                        "dur": amount * SCALE,
                        "args": {"for": span.name},
                    }
                )
            cursor += amount
        # The wait boxes above are display-only; the span itself carries
        # its exact stall list (virtual-time units) and its chain flag in
        # ``args`` so :func:`trace_from_chrome` can rebuild the recorder
        # losslessly from the file alone.
        span_args = dict(span.args)
        if span.stalls:
            span_args["stalls"] = [
                [stall_category, amount]
                for stall_category, amount in span.stalls
            ]
        if not span.chain:
            span_args["chain"] = False
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": span.start * SCALE,
                "dur": (span.end - span.start) * SCALE,
                "args": span_args,
            }
        )
    for instant in tracer.instants:
        pid, tid = ids[instant.track]
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tid,
                "name": instant.name,
                "ts": instant.ts * SCALE,
                "s": "t",
                "args": dict(instant.args),
            }
        )
    other = {
        "virtual_time_scale": SCALE,
        "makespan": tracer.makespan,
        # Sampling bookkeeping: ``sampled`` is true only when the ring
        # buffer actually dropped detail; the exact occupancy totals and
        # the per-stage lifecycle aggregates survive eviction, so they
        # are embedded for every trace and the validator cross-checks
        # them against the retained span events.
        "sampled": tracer.sampled,
        "spans_recorded": tracer.spans_recorded,
        "spans_retained": len(tracer.spans),
        "category_totals": tracer.category_totals(),
        "track_occupancy": {
            "busy": tracer.busy_totals(),
            "stalls": tracer.stall_totals(),
        },
        "op_stages": tracer.stage_totals(),
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: TraceRecorder, path: str | Path, metadata: dict | None = None
) -> dict:
    """Export, validate, and write a trace; returns the document."""
    document = chrome_trace(tracer, metadata=metadata)
    validate_chrome_trace(document)
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return document


def validate_chrome_trace(document: object) -> None:
    """Assert ``document`` is valid Chrome trace-event JSON (the JSON
    Object Format with the event subset we emit).  Raises
    :class:`TraceExportError` with the first offending event."""
    if not isinstance(document, dict):
        raise TraceExportError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise TraceExportError("trace document needs a traceEvents array")
    required = {
        "X": ("pid", "tid", "name", "ts", "dur"),
        "i": ("pid", "tid", "name", "ts", "s"),
        "M": ("pid", "name", "args"),
    }
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceExportError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in required:
            raise TraceExportError(
                f"event {index} has unsupported phase {phase!r}"
            )
        for key in required[phase]:
            if key not in event:
                raise TraceExportError(
                    f"{phase!r} event {index} ({event.get('name')!r}) "
                    f"is missing {key!r}"
                )
        if phase == "X":
            if not isinstance(event["ts"], (int, float)) or not isinstance(
                event["dur"], (int, float)
            ):
                raise TraceExportError(
                    f"event {index} has non-numeric ts/dur"
                )
            if event["dur"] < 0:
                raise TraceExportError(
                    f"event {index} has negative duration"
                )
        if phase == "i" and event["s"] not in ("g", "p", "t"):
            raise TraceExportError(
                f"event {index} has invalid instant scope {event['s']!r}"
            )


def trace_from_chrome(document: dict) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from an exported document.

    Spans come back with their exact stall lists and chain flags (the
    ``stalls`` / ``chain`` keys :func:`chrome_trace` embeds in each span
    event's args); the display-only ``wait:*`` boxes are skipped.  For a
    *sampled* document the sampling bookkeeping is restored too, so the
    reconstructed recorder keeps refusing the critical-path walk — its
    exact category totals live in ``otherData.category_totals``, not in
    the retained spans.  Timestamps round-trip through the display
    scale, so they match the original to float precision (well inside
    the attribution walk's tolerance).
    """
    validate_chrome_trace(document)
    tracks: dict[tuple[int, int], str] = {}
    for event in document["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "thread_name":
            tracks[(event["pid"], event["tid"])] = event["args"]["name"]
    recorder = TraceRecorder()
    for event in document["traceEvents"]:
        if event["ph"] not in ("X", "i"):
            continue
        key = (event["pid"], event["tid"])
        if key not in tracks:
            raise TraceExportError(
                f"event {event.get('name')!r} addresses unnamed track "
                f"pid={key[0]} tid={key[1]}"
            )
        track = tracks[key]
        if event["ph"] == "i":
            recorder.instant(
                track,
                event["name"],
                event["ts"] / SCALE,
                dict(event.get("args", {})),
            )
            continue
        if event["name"].startswith("wait:"):
            continue  # display tiling of a span's stalls, not a span
        args = dict(event.get("args", {}))
        stalls = tuple(
            (stall_category, float(amount))
            for stall_category, amount in args.pop("stalls", [])
        )
        chain = bool(args.pop("chain", True))
        recorder.span(
            track,
            event["name"],
            event.get("cat", "execute"),
            event["ts"] / SCALE,
            (event["ts"] + event["dur"]) / SCALE,
            stalls=stalls,
            args=args,
            chain=chain,
        )
    other = document.get("otherData", {})
    if other.get("sampled"):
        recorded = int(other.get("spans_recorded", recorder.spans_recorded))
        recorder.max_spans = len(recorder.spans)
        recorder.spans_recorded = recorded
        recorder.spans_evicted = max(recorded - len(recorder.spans), 1)
        # The retained spans under-count the occupancy accumulators;
        # restore the exact ones the export embedded so utilization and
        # category totals stay exact on the reconstruction too.
        occupancy = other.get("track_occupancy")
        if occupancy:
            recorder._busy = {
                str(track): {
                    str(category): float(amount)
                    for category, amount in totals.items()
                }
                for track, totals in occupancy.get("busy", {}).items()
            }
            recorder._stall = {
                str(track): {
                    str(category): float(amount)
                    for category, amount in totals.items()
                }
                for track, totals in occupancy.get("stalls", {}).items()
            }
        if "makespan" in other:
            recorder._chain_end = float(other["makespan"])
    return recorder
