"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

The hand-maintained stats aggregates (:class:`repro.engine.stats.EngineStats`,
:class:`repro.cluster.stats.ClusterStats`) answer *how much* of each quantity
a run accumulated; the registry is the shared vocabulary those aggregates
project into (``EngineStats.registry()`` / ``ClusterStats.registry()``) and
the sink the tracer feeds live — most importantly the per-op latency
histogram behind the p50/p99 figures the open-loop SLO work gates on.

Everything here measures virtual time (operation units + simulated
consensus latency); there is deliberately no wall-clock anywhere.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from numbers import Real
from typing import Callable, Iterator, Mapping

from repro.errors import ReproError

#: A registry watch callback: ``(kind, name, value, ts)`` where ``kind``
#: is ``"counter"`` / ``"gauge"`` / ``"histogram"``, ``value`` is the
#: increment / new value / sample, and ``ts`` is the virtual timestamp
#: the caller attached to the update (``None`` when the call site has no
#: timeline position — e.g. a summary projection).
Watcher = Callable[[str, str, float, "float | None"], None]

#: Default histogram bucket upper bounds: powers of two in virtual-time
#: units, wide enough for any workload the benches run (the final implicit
#: bucket is unbounded).  Fixed buckets keep percentile estimates
#: deterministic — the same run always reports the same p50/p99.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(15)
)


class MetricsError(ReproError):
    """Misuse of the registry (type clash, bad quantile, bad bucket)."""


@dataclass(slots=True)
class Counter:
    """A monotonically non-decreasing total."""

    name: str
    value: float = 0.0
    _watch: Watcher | None = field(default=None, repr=False, compare=False)

    def inc(self, amount: float = 1.0, ts: float | None = None) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        if self._watch is not None:
            self._watch("counter", self.name, amount, ts)


@dataclass(slots=True)
class Gauge:
    """A point-in-time value (set freely, last write wins)."""

    name: str
    value: float = 0.0
    _watch: Watcher | None = field(default=None, repr=False, compare=False)

    def set(self, value: float, ts: float | None = None) -> None:
        self.value = float(value)
        if self._watch is not None:
            self._watch("gauge", self.name, self.value, ts)


@dataclass(slots=True)
class Histogram:
    """Fixed-bucket histogram over non-negative virtual-time samples.

    ``buckets`` holds the *upper bounds* of each bucket; a final implicit
    unbounded bucket catches overflow.  Percentiles interpolate linearly
    inside the covering bucket (the overflow bucket reports the observed
    maximum), so estimates are deterministic functions of the samples.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    _watch: Watcher | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricsError(
                f"histogram {self.name!r} needs strictly increasing buckets"
            )
        self.buckets = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float, ts: float | None = None) -> None:
        value = float(value)
        if value < 0:
            raise MetricsError(
                f"histogram {self.name!r} takes non-negative samples"
            )
        if not self.count or value < self.min:
            self.min = value
        if not self.count or value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.counts[bisect_left(self.buckets, value)] += 1
        if self._watch is not None:
            self._watch("histogram", self.name, value, ts)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 1]), linearly interpolated
        within the covering bucket; 0.0 on an empty histogram.

        Estimates are clamped to the observed ``[min, max]``: bucket
        interpolation knows only the bucket bounds, so a lone sample (or
        a bucket holding every sample) would otherwise report a value
        below anything actually observed."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"percentile wants q in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.max
                low = self.buckets[index - 1] if index else 0.0
                high = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                estimate = low + (high - low) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
        }


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    Instruments are created on first use and addressed by name; asking
    for an existing name with a different instrument kind is an error
    (silent aliasing would corrupt both series).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._watchers: list[Watcher] = []

    def _get(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        if self._watchers:
            instrument._watch = self._dispatch
        self._instruments[name] = instrument
        return instrument

    def watch(self, watcher: Watcher) -> None:
        """Subscribe to every subsequent instrument update.

        Each ``inc`` / ``set`` / ``observe`` on any instrument of this
        registry (existing or future) invokes ``watcher(kind, name,
        value, ts)`` after the update lands — the live-derivation hook
        :class:`repro.obs.series.TimeSeries` attaches through.  Watchers
        see updates from subscription onward; a series that must account
        for earlier totals snapshots them at attach time.
        """
        self._watchers.append(watcher)
        for instrument in self._instruments.values():
            instrument._watch = self._dispatch

    def _dispatch(
        self, kind: str, name: str, value: float, ts: float | None
    ) -> None:
        for watcher in self._watchers:
            watcher(kind, name, value, ts)

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, buckets=buckets)
        )

    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def value(self, name: str) -> float:
        """Scalar view: counter/gauge value, histogram mean."""
        instrument = self._instruments.get(name)
        if instrument is None:
            raise MetricsError(f"no metric named {name!r}")
        if isinstance(instrument, Histogram):
            return instrument.mean
        return instrument.value

    def as_dict(self) -> dict:
        """JSON-ready snapshot: scalars for counters/gauges, summary
        dicts (count/mean/min/max/p50/p99) for histograms."""
        snapshot: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                snapshot[name] = instrument.summary()
            else:
                snapshot[name] = instrument.value
        return snapshot

    # ------------------------------------------------------------------

    @classmethod
    def from_summary(
        cls, summary: Mapping, prefix: str = ""
    ) -> "MetricsRegistry":
        """Project a nested stats summary (``EngineStats.as_dict()`` /
        ``ClusterStats.as_dict()`` output) into a registry of gauges,
        flattening nested mappings with dotted names.  Non-numeric leaves
        are skipped — the registry carries measurements, not labels."""
        registry = cls()
        registry.merge_summary(summary, prefix)
        return registry

    def merge_summary(self, summary: Mapping, prefix: str = "") -> None:
        for key, value in summary.items():
            name = f"{prefix}{key}"
            if isinstance(value, Mapping):
                self.merge_summary(value, f"{name}.")
            elif isinstance(value, bool):
                self.gauge(name).set(1.0 if value else 0.0)
            elif isinstance(value, Real):
                self.gauge(name).set(float(value))
