"""Makespan attribution: walk a committed run's spans backward and name
every unit of virtual time.

The executors compose every chained span's start as
``start = ready + stall₁ + stall₂ + …`` and record the stalls on the
span, so the walk is exact rather than heuristic: begin at the span that
finishes last, charge its duration to ``execute``, charge its stalls to
their categories, then jump to the latest span finishing at or before
the remaining frontier.  Any gap the jump crosses is time no recorded
activity explains locally — message flight and routing — charged to
``network``.  By construction the category totals partition
``[0, makespan]``, which the CI obs smoke job asserts on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import CATEGORIES, Span, TraceError, TraceRecorder

#: Slack for float comparisons on the virtual timeline.  Virtual times
#: are small sums of small floats; anything beyond 1e-9 is a real gap.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One attributed interval of the walked critical path (latest
    first in :attr:`AttributionReport.segments`)."""

    category: str
    start: float
    end: float
    track: str
    name: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class AttributionReport:
    """Category totals partitioning one run's virtual makespan."""

    makespan: float
    totals: dict[str, float] = field(default_factory=dict)
    segments: tuple[PathSegment, ...] = ()

    @property
    def attributed(self) -> float:
        return sum(self.totals.values())

    def check(self, tolerance: float = 1e-6) -> "AttributionReport":
        """Assert the category totals sum to the makespan (exact up to
        float re-association); raises :class:`TraceError` otherwise.
        Returns the report so call sites can chain."""
        if abs(self.attributed - self.makespan) > tolerance * max(
            1.0, self.makespan
        ):
            raise TraceError(
                f"attribution totals do not partition the makespan: "
                f"sum {self.attributed!r} vs makespan {self.makespan!r}"
            )
        return self

    def share(self, category: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.totals.get(category, 0.0) / self.makespan

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "totals": {
                category: self.totals.get(category, 0.0)
                for category in CATEGORIES
            },
        }

    def render(self) -> list[str]:
        """Human-readable summary lines for bench/example output."""
        lines = [
            f"makespan attribution (virtual time {self.makespan:.2f})",
            "  category         time      share",
        ]
        for category in CATEGORIES:
            amount = self.totals.get(category, 0.0)
            if amount <= 0 and category != "execute":
                continue
            lines.append(
                f"  {category:<15}{amount:>9.2f}   {self.share(category):>6.1%}"
            )
        return lines


def _latest_ending_at_or_before(
    spans: list[Span], frontier: float, visited: set[int]
) -> tuple[int, Span] | None:
    """The unvisited chained span with the greatest finish ≤ frontier;
    ties prefer the later start (a zero-length dispatch decision over a
    long lane span ending at the same instant), then recording order."""
    best: tuple[float, float, int] | None = None
    best_span: Span | None = None
    for index, span in enumerate(spans):
        if index in visited or span.end > frontier + _EPS:
            continue
        key = (span.end, span.start, index)
        if best is None or key > best:
            best = key
            best_span = span
    if best is None or best_span is None:
        return None
    return best[2], best_span


def critical_path_report(tracer: TraceRecorder) -> AttributionReport:
    """Attribute a finished run's makespan to named categories.

    Walks the chained spans backward from the run's last finish,
    charging execution, recorded stalls, and unexplained gaps
    (``network``) until the timeline origin.  The returned totals
    partition ``[0, makespan]`` exactly (up to float re-association).

    A sampled recorder (ring-buffer eviction dropped spans) is refused:
    the walk would charge the evicted prefix to ``network`` and lie.
    Sampled runs keep exact *occupancy* totals instead — see
    :meth:`repro.obs.trace.TraceRecorder.category_totals` and
    :func:`repro.obs.utilization.utilization_report`.
    """
    if tracer.spans_evicted:
        raise TraceError(
            f"critical-path attribution needs the full span set, but "
            f"this recorder evicted {tracer.spans_evicted} of "
            f"{tracer.spans_recorded} spans (max_spans="
            f"{tracer.max_spans}); use the exact occupancy totals "
            f"(category_totals / utilization_report) instead"
        )
    spans = [span for span in tracer.spans if span.chain]
    totals: dict[str, float] = {}
    segments: list[PathSegment] = []
    if not spans:
        return AttributionReport(makespan=0.0)

    def charge(
        category: str, start: float, end: float, track: str, name: str
    ) -> None:
        if end - start <= _EPS:
            return
        totals[category] = totals.get(category, 0.0) + (end - start)
        segments.append(
            PathSegment(
                category=category,
                start=start,
                end=end,
                track=track,
                name=name,
            )
        )

    makespan = max(span.end for span in spans)
    frontier = makespan
    visited: set[int] = set()
    while frontier > _EPS:
        found = _latest_ending_at_or_before(spans, frontier, visited)
        if found is None:
            # Nothing recorded explains [0, frontier): before the first
            # span there is only arrival/flight time.
            charge("network", 0.0, frontier, "", "origin gap")
            frontier = 0.0
            break
        index, span = found
        visited.add(index)
        if span.end < frontier - _EPS:
            charge("network", span.end, frontier, span.track, "gap")
            frontier = span.end
        charge(span.category, span.start, frontier, span.track, span.name)
        frontier = min(frontier, span.start)
        for stall_category, amount in span.stalls:
            if amount <= _EPS:
                continue
            charge(
                stall_category,
                frontier - amount,
                frontier,
                span.track,
                span.name,
            )
            frontier -= amount
    return AttributionReport(
        makespan=makespan, totals=totals, segments=tuple(segments)
    )
