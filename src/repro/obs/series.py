"""Virtual-time series: windowed counters, gauges, and histograms.

The registry (:mod:`repro.obs.metrics`) and the trace recorder
(:mod:`repro.obs.trace`) answer *how much* a run accumulated; an
open-loop arrival stream also needs *when* — per-window commit counts,
per-window latency percentiles, per-window occupancy — because a
saturating system looks fine in aggregate long after its tail windows
have collapsed.  :class:`TimeSeries` buckets those quantities over
fixed-width virtual-time windows, derived two ways:

* **live** — :meth:`attach` subscribes to a
  :class:`~repro.obs.metrics.MetricsRegistry` through its ``watch``
  hook; every timestamped ``inc``/``set``/``observe`` lands in the
  window covering its virtual timestamp;
* **post-hoc** — :meth:`from_trace` rebuilds the same windows from a
  completed :class:`~repro.obs.trace.TraceRecorder`: lifecycle
  timestamps for the op counters and the latency histogram, and the new
  :meth:`~repro.obs.trace.TraceRecorder.interval_occupancy` query for
  per-window busy/stall occupancy.

Either way the windows carry a **conservation guarantee**: summing any
windowed quantity over all windows reproduces the unwindowed total
exactly (up to float re-association) — registry totals for live series,
``category_totals()`` / lifecycle counts for post-hoc ones.
:meth:`check` enforces it, like the attribution report's ``check()``
(PR 6): an instrumentation change that drops or double-counts a sample
breaks the sum before it misleads anyone reading the dashboard.

Everything here measures virtual time; there is no wall-clock anywhere.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import TraceRecorder

#: Relative tolerance for the conservation sums (floating-point
#: re-association across windows, not measurement slack).
TOLERANCE = 1e-6


class SeriesError(ReproError):
    """Misuse of a series, or a broken conservation sum."""


class TimeSeries:
    """Fixed-width virtual-time windows over metrics and occupancy.

    Window ``i`` covers ``[origin + i*width, origin + (i+1)*width)``.
    Counter increments and histogram samples land in the window of
    their virtual timestamp; gauges keep the last write per window;
    occupancy (post-hoc only) is the exact
    :meth:`~repro.obs.trace.TraceRecorder.interval_occupancy` of each
    window.  Untimestamped samples (``ts=None``) land in the window of
    the latest timestamp seen so far — they are never dropped, which is
    what keeps the conservation sums exact.
    """

    def __init__(self, width: float, origin: float = 0.0) -> None:
        if width <= 0:
            raise SeriesError("window width must be positive")
        self.width = float(width)
        self.origin = float(origin)
        #: High-water window count (windows are stored sparsely).
        self._windows = 0
        self._counters: dict[str, dict[int, float]] = {}
        self._gauges: dict[str, dict[int, tuple[float, float]]] = {}
        self._histograms: dict[str, dict[int, Histogram]] = {}
        self._occupancy: dict[str, dict[int, float]] = {}
        self._registry: MetricsRegistry | None = None
        self._baseline: dict[str, tuple[float, float]] = {}
        self._tracer: TraceRecorder | None = None
        self._cursor = self.origin

    # -- derivation -----------------------------------------------------

    def attach(self, registry: MetricsRegistry) -> "TimeSeries":
        """Derive the series live from ``registry`` updates.

        Totals already accumulated before attaching are snapshotted as
        the baseline, so :meth:`check` compares window sums against the
        registry's *growth* since the subscription — attach before
        driving for windows that cover the whole run.
        """
        if self._registry is not None or self._tracer is not None:
            raise SeriesError("a series derives from exactly one source")
        self._registry = registry
        for name in registry:
            instrument = registry.get(name)
            if isinstance(instrument, Histogram):
                self._baseline[name] = (
                    float(instrument.count),
                    instrument.total,
                )
            else:
                self._baseline[name] = (instrument.value, 0.0)
        registry.watch(self._on_sample)
        return self

    @classmethod
    def from_trace(
        cls, tracer: TraceRecorder, width: float
    ) -> "TimeSeries":
        """Rebuild the windows post-hoc from a completed recorder.

        The origin extends below zero when a recorded stall tiles past
        the timeline start, so every clipped interval is covered and the
        occupancy windows sum to ``category_totals()`` exactly.  Refuses
        a sampled recorder (via ``interval_occupancy``): evicted spans
        would silently leak occupancy out of the windows.
        """
        low = 0.0
        for span in tracer.spans:
            if span.chain and span.stalls:
                extent = span.start - sum(a for _, a in span.stalls)
                low = min(low, extent)
        origin = (
            math.floor(low / width) * width if low < 0 else 0.0
        )
        series = cls(width, origin=origin)
        series._tracer = tracer
        count = max(
            1, math.ceil((tracer.makespan - origin) / width - TOLERANCE)
        )
        series._windows = count
        for index in range(count):
            t0 = origin + index * width
            occupancy = tracer.interval_occupancy(t0, t0 + width)
            for category, amount in occupancy.items():
                series._occupancy.setdefault(category, {})[index] = amount
        for seq in tracer.op_seqs:
            life = tracer.lifecycle(seq)
            if "submit" not in life:
                continue
            series._record_counter("ops_submitted", 1.0, life["submit"])
            if "commit" in life:
                commit = life["commit"]
                series._record_counter("ops_committed", 1.0, commit)
                series._record_histogram(
                    "op_latency", commit - life["submit"], commit
                )
        return series

    # -- recording ------------------------------------------------------

    def _index(self, ts: float | None) -> int:
        if ts is None:
            ts = self._cursor
        elif ts < self.origin:
            raise SeriesError(
                f"sample at {ts} precedes the series origin {self.origin}"
            )
        self._cursor = max(self._cursor, ts)
        index = int((ts - self.origin) // self.width)
        self._windows = max(self._windows, index + 1)
        return index

    def _on_sample(
        self, kind: str, name: str, value: float, ts: float | None
    ) -> None:
        if kind == "counter":
            self._record_counter(name, value, ts)
        elif kind == "gauge":
            index = self._index(ts)
            window = self._gauges.setdefault(name, {})
            stamp = self._cursor if ts is None else ts
            previous = window.get(index)
            if previous is None or stamp >= previous[0]:
                window[index] = (stamp, value)
        else:
            self._record_histogram(name, value, ts)

    def _record_counter(
        self, name: str, amount: float, ts: float | None
    ) -> None:
        index = self._index(ts)
        window = self._counters.setdefault(name, {})
        window[index] = window.get(index, 0.0) + amount

    def _record_histogram(
        self, name: str, value: float, ts: float | None
    ) -> None:
        index = self._index(ts)
        window = self._histograms.setdefault(name, {})
        histogram = window.get(index)
        if histogram is None:
            histogram = window[index] = Histogram(name)
        histogram.observe(value)

    # -- views ----------------------------------------------------------

    @property
    def window_count(self) -> int:
        return self._windows

    def window_bounds(self, index: int) -> tuple[float, float]:
        t0 = self.origin + index * self.width
        return (t0, t0 + self.width)

    def _dense(self, sparse: dict[int, float]) -> list[float]:
        return [
            sparse.get(index, 0.0) for index in range(self._windows)
        ]

    def counter_series(self, name: str) -> list[float]:
        """Per-window increments of one counter (0.0 where silent)."""
        return self._dense(self._counters.get(name, {}))

    def gauge_series(self, name: str) -> list[float]:
        """Per-window last-written gauge value, carried forward across
        silent windows (0.0 before the first write)."""
        window = self._gauges.get(name, {})
        series: list[float] = []
        current = 0.0
        for index in range(self._windows):
            entry = window.get(index)
            if entry is not None:
                current = entry[1]
            series.append(current)
        return series

    def histogram_series(self, name: str) -> list[Histogram | None]:
        """Per-window histograms (``None`` where no sample landed)."""
        window = self._histograms.get(name, {})
        return [window.get(index) for index in range(self._windows)]

    def percentile_series(self, name: str, q: float) -> list[float]:
        """Per-window percentile of one histogram (0.0 where empty)."""
        return [
            histogram.percentile(q) if histogram is not None else 0.0
            for histogram in self.histogram_series(name)
        ]

    def occupancy_series(self, category: str) -> list[float]:
        """Per-window occupancy of one category (post-hoc series)."""
        return self._dense(self._occupancy.get(category, {}))

    # -- conservation ---------------------------------------------------

    def _expected_totals(
        self,
    ) -> tuple[dict[str, float], dict[str, tuple[float, float]], dict]:
        """The unwindowed totals the windows must sum to:
        ``(counters, histograms as (count, total), occupancy)``."""
        counters: dict[str, float] = {}
        histograms: dict[str, tuple[float, float]] = {}
        occupancy: dict[str, float] = {}
        if self._registry is not None:
            for name in self._registry:
                instrument = self._registry.get(name)
                base = self._baseline.get(name, (0.0, 0.0))
                if isinstance(instrument, Histogram):
                    histograms[name] = (
                        instrument.count - base[0],
                        instrument.total - base[1],
                    )
                elif isinstance(instrument, Counter):
                    counters[name] = instrument.value - base[0]
        elif self._tracer is not None:
            metrics = self._tracer.metrics
            for name in ("ops_submitted", "ops_committed"):
                if name in metrics:
                    counters[name] = metrics.counter(name).value
            if "op_latency" in metrics:
                histogram = metrics.histogram("op_latency")
                histograms["op_latency"] = (
                    float(histogram.count),
                    histogram.total,
                )
            occupancy = self._tracer.category_totals()
        else:
            raise SeriesError(
                "an unattached series has no source to conserve against"
            )
        return counters, histograms, occupancy

    def check(self) -> "TimeSeries":
        """Enforce the conservation guarantee: every windowed sum equals
        its unwindowed source total exactly (within float tolerance).
        Raises :class:`SeriesError` listing each broken sum."""
        counters, histograms, occupancy = self._expected_totals()
        failures: list[str] = []

        def verify(label: str, windowed: float, total: float) -> None:
            bound = TOLERANCE * max(abs(total), 1.0)
            if abs(windowed - total) > bound:
                failures.append(
                    f"{label}: windows sum to {windowed!r}, source "
                    f"total is {total!r}"
                )

        for name, total in counters.items():
            verify(
                f"counter {name!r}",
                sum(self.counter_series(name)),
                total,
            )
        for name, (count, total) in histograms.items():
            windows = [
                histogram
                for histogram in self.histogram_series(name)
                if histogram is not None
            ]
            verify(
                f"histogram {name!r} count",
                float(sum(h.count for h in windows)),
                count,
            )
            verify(
                f"histogram {name!r} total",
                sum(h.total for h in windows),
                total,
            )
        for category, total in occupancy.items():
            verify(
                f"occupancy {category!r}",
                sum(self.occupancy_series(category)),
                total,
            )
        stray = set(self._occupancy) - set(occupancy)
        if stray:
            failures.append(
                f"windowed occupancy for categories the source never "
                f"recorded: {sorted(stray)}"
            )
        if failures:
            raise SeriesError(
                "series conservation violated:\n  " + "\n  ".join(failures)
            )
        return self

    # -- export ---------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready export: dense per-window arrays plus the source
        totals, so ``scripts/validate_series.py`` can re-verify the
        conservation sums without re-running anything."""
        counters, histograms, occupancy = self._expected_totals()
        return {
            "width": self.width,
            "origin": self.origin,
            "windows": self._windows,
            "counters": {
                name: self.counter_series(name)
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self.gauge_series(name)
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: [
                    histogram.summary()
                    if histogram is not None
                    else None
                    for histogram in self.histogram_series(name)
                ]
                for name in sorted(self._histograms)
            },
            "occupancy": {
                category: self.occupancy_series(category)
                for category in sorted(self._occupancy)
            },
            "totals": {
                "counters": dict(sorted(counters.items())),
                "histograms": {
                    name: {"count": count, "total": total}
                    for name, (count, total) in sorted(histograms.items())
                },
                "occupancy": dict(sorted(occupancy.items())),
            },
        }
