"""Latency SLOs over virtual-time windows: targets, breaches, burn.

A saturation bench needs more than percentiles — it needs a *verdict*:
did the run hold its latency objective, and if not, when did it stop?
:class:`SLOMonitor` scans the per-window latency histograms of a
:class:`~repro.obs.series.TimeSeries` against a p99 target and reports:

* **breach windows** — windows whose p99 exceeded the target (empty
  windows cannot breach: no commit, no latency evidence);
* **error-budget burn** — over a rolling horizon of windows, the
  breached fraction divided by the budgeted breach fraction.  Burn 1.0
  means breaching exactly as fast as the budget allows; a sustained
  burn above 1.0 is the saturation signal the adaptive-control work
  will act on;
* **breach instants** — optionally recorded into the run's trace
  (``slo`` track), so a Perfetto timeline shows *when* the objective
  fell over next to the spans that caused it.

Like everything in :mod:`repro.obs`, the monitor is a pure reader: it
never changes scheduling, and a run without one is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.series import TimeSeries
from repro.obs.trace import TraceRecorder


class SLOError(ReproError):
    """Misconfigured objective (bad target, horizon, or budget)."""


@dataclass(frozen=True, slots=True)
class SLOWindow:
    """One window's verdict against the objective."""

    index: int
    start: float
    end: float
    count: int
    p99: float
    breached: bool
    #: Error-budget burn of the horizon ending at this window.
    burn: float


@dataclass(slots=True)
class SLOReport:
    """The scan's outcome; ``met`` is the headline verdict."""

    target_p99: float
    horizon: int
    budget: float
    windows: list[SLOWindow] = field(default_factory=list)

    @property
    def breaches(self) -> list[int]:
        return [w.index for w in self.windows if w.breached]

    @property
    def max_burn(self) -> float:
        return max((w.burn for w in self.windows), default=0.0)

    @property
    def met(self) -> bool:
        """True when no rolling horizon burned past its error budget."""
        return self.max_burn <= 1.0

    def as_dict(self) -> dict:
        return {
            "target_p99": self.target_p99,
            "horizon": self.horizon,
            "budget": self.budget,
            "breaches": self.breaches,
            "breach_windows": len(self.breaches),
            "max_burn": self.max_burn,
            "met": self.met,
        }


class SLOMonitor:
    """Scan a series' latency windows against a p99 objective.

    ``target_p99`` is the per-window p99 latency bound (virtual-time
    units).  ``budget`` is the tolerated breach fraction over any
    rolling ``horizon`` of windows — burn is breach-rate over budget,
    so ``budget=0.1, horizon=10`` tolerates one breached window per ten
    before :attr:`SLOReport.met` flips false.
    """

    def __init__(
        self,
        target_p99: float,
        horizon: int = 8,
        budget: float = 0.1,
        metric: str = "op_latency",
    ) -> None:
        if target_p99 <= 0:
            raise SLOError("the p99 target must be positive")
        if horizon < 1:
            raise SLOError("the rolling horizon needs at least one window")
        if not 0 < budget <= 1:
            raise SLOError("the error budget is a fraction in (0, 1]")
        self.target_p99 = float(target_p99)
        self.horizon = horizon
        self.budget = float(budget)
        self.metric = metric

    def scan(
        self, series: TimeSeries, tracer: TraceRecorder | None = None
    ) -> SLOReport:
        """Judge every window; optionally record breach instants into
        ``tracer`` (one ``slo`` instant per breach, at the window end)."""
        report = SLOReport(
            target_p99=self.target_p99,
            horizon=self.horizon,
            budget=self.budget,
        )
        histograms = series.histogram_series(self.metric)
        breached: list[bool] = []
        for index, histogram in enumerate(histograms):
            start, end = series.window_bounds(index)
            count = histogram.count if histogram is not None else 0
            p99 = histogram.p99 if histogram is not None else 0.0
            is_breach = count > 0 and p99 > self.target_p99
            breached.append(is_breach)
            window = breached[max(0, index + 1 - self.horizon) :]
            burn = (sum(window) / len(window)) / self.budget
            report.windows.append(
                SLOWindow(
                    index=index,
                    start=start,
                    end=end,
                    count=count,
                    p99=p99,
                    breached=is_breach,
                    burn=burn,
                )
            )
            if is_breach and tracer is not None:
                tracer.instant(
                    "slo",
                    f"p99 breach w{index}",
                    end,
                    args={
                        "p99": p99,
                        "target": self.target_p99,
                        "count": count,
                        "burn": burn,
                    },
                )
        return report
