"""Virtual-time span tracing for engine, pipeline, and cluster runs.

A :class:`TraceRecorder` collects *completed* spans — the executors know
the exact virtual start/finish of every scheduled unit the moment they
place it, so there is no begin/end pairing to get wrong — plus instant
events (round stage transitions, lease protocol messages) and a per-op
lifecycle (``submit → classify → sync → schedule → execute → commit``).

Two properties the rest of the observability layer leans on:

* **Stalls ride on spans.**  A span's ``stalls`` tuple records the named
  waits that immediately preceded its start, in backward-walk order
  (latest wait first).  The executors compose starts as
  ``start = base + stall₁ + stall₂ + …`` exactly, which is what lets
  :func:`repro.obs.report.critical_path_report` partition the makespan
  without guessing.
* **No tracer, no cost.**  Every instrumentation site in the executors is
  guarded by ``if self.tracer is not None``; the historical stats dicts
  are bit-identical with ``tracer=None``, enforced by the same kind of
  identity tests that guard ``dag_scheduling`` and ``pipeline_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: Canonical lifecycle stage order; later stages may never precede
#: earlier ones on a single op (``sync`` is optional — fast-path ops
#: skip it).
LIFECYCLE_STAGES: tuple[str, ...] = (
    "submit",
    "classify",
    "sync",
    "schedule",
    "execute",
    "commit",
)

#: Attribution categories a span (or its stalls) may carry.  ``network``
#: is never recorded directly — the report assigns it to timeline gaps
#: (message flight, routing) between chained spans.
CATEGORIES: tuple[str, ...] = (
    "execute",
    "sync_wait",
    "frontier_stall",
    "lease_wait",
    "dispatch_stall",
    "network",
)


class TraceError(ReproError):
    """A malformed span or lifecycle transition."""


@dataclass(frozen=True, slots=True)
class Span:
    """One completed interval on a named track of the virtual timeline.

    ``chain=True`` spans participate in the critical-path walk (per-op
    execution, dispatch decisions); ``chain=False`` spans are purely
    informational overlays (sync-phase extents, team-lane internals on
    the pool's private clock).
    """

    track: str
    name: str
    category: str
    start: float
    end: float
    #: Named waits immediately preceding ``start``, latest first:
    #: ``start - sum(amounts)`` is the instant the unit was ready apart
    #: from these waits.
    stalls: tuple[tuple[str, float], ...] = ()
    args: dict = field(default_factory=dict)
    chain: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Instant:
    """A zero-duration marker (stage transition, protocol message)."""

    track: str
    name: str
    ts: float
    args: dict = field(default_factory=dict)


class TraceRecorder:
    """Accumulates spans, instants, and per-op lifecycles for one run.

    Pass one recorder to at most one executor run; the makespan and the
    attribution report are properties of a single virtual timeline.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: op seq -> {stage: virtual timestamp}
        self._oplife: dict[int, dict[str, float]] = {}

    # -- recording ------------------------------------------------------

    def span(
        self,
        track: str,
        name: str,
        category: str,
        start: float,
        end: float,
        stalls: tuple[tuple[str, float], ...] = (),
        args: dict | None = None,
        chain: bool = True,
    ) -> Span:
        if category not in CATEGORIES:
            raise TraceError(f"unknown span category {category!r}")
        if end < start:
            raise TraceError(
                f"span {name!r} on {track!r} ends before it starts "
                f"({end} < {start})"
            )
        for stall_category, amount in stalls:
            if stall_category not in CATEGORIES:
                raise TraceError(
                    f"unknown stall category {stall_category!r}"
                )
            if amount < 0:
                raise TraceError(
                    f"span {name!r} has negative {stall_category} stall"
                )
        span = Span(
            track=track,
            name=name,
            category=category,
            start=start,
            end=end,
            stalls=tuple(stalls),
            args=dict(args) if args else {},
            chain=chain,
        )
        self.spans.append(span)
        return span

    def instant(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        self.instants.append(
            Instant(
                track=track, name=name, ts=ts, args=dict(args) if args else {}
            )
        )

    # -- per-op lifecycle ----------------------------------------------

    def op_stage(self, seq: int, stage: str, ts: float) -> None:
        """Mark an op's lifecycle stage at a virtual timestamp.  Stages
        must be non-decreasing in time; re-marking a stage keeps the
        first timestamp (a chain op's schedule time is its unit's)."""
        if stage not in LIFECYCLE_STAGES:
            raise TraceError(f"unknown lifecycle stage {stage!r}")
        life = self._oplife.setdefault(seq, {})
        if stage in life:
            return
        latest = max(life.values(), default=None)
        if latest is not None and ts < latest:
            raise TraceError(
                f"op {seq} stage {stage!r} at {ts} precedes an earlier "
                f"stage at {latest}"
            )
        life[stage] = ts
        if stage == "commit" and "submit" in life:
            self.metrics.histogram("op_latency").observe(
                ts - life["submit"]
            )
            self.metrics.counter("ops_committed").inc()

    def op_submit(self, seq: int, ts: float) -> None:
        self.op_stage(seq, "submit", ts)
        self.metrics.counter("ops_submitted").inc()

    def op_commit(self, seq: int, ts: float) -> None:
        self.op_stage(seq, "commit", ts)

    def lifecycle(self, seq: int) -> dict[str, float]:
        """A copy of one op's recorded stage timestamps."""
        return dict(self._oplife.get(seq, {}))

    @property
    def op_seqs(self) -> list[int]:
        return sorted(self._oplife)

    def unterminated(self) -> list[int]:
        """Ops that were submitted but never reached ``commit`` — empty
        after any completed run (the well-formedness tests assert so)."""
        return sorted(
            seq
            for seq, life in self._oplife.items()
            if "commit" not in life
        )

    # -- derived --------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Last chained-span finish on the run's virtual timeline (the
        informational overlays, e.g. team-lane internals on the pool's
        private clock, do not count)."""
        return max(
            (span.end for span in self.spans if span.chain), default=0.0
        )

    def tracks(self) -> list[str]:
        """All track names, spans first, in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for instant in self.instants:
            seen.setdefault(instant.track, None)
        return list(seen)
