"""Virtual-time span tracing for engine, pipeline, and cluster runs.

A :class:`TraceRecorder` collects *completed* spans — the executors know
the exact virtual start/finish of every scheduled unit the moment they
place it, so there is no begin/end pairing to get wrong — plus instant
events (round stage transitions, lease protocol messages) and a per-op
lifecycle (``submit → classify → sync → schedule → execute → commit``).

Two properties the rest of the observability layer leans on:

* **Stalls ride on spans.**  A span's ``stalls`` tuple records the named
  waits that immediately preceded its start, in backward-walk order
  (latest wait first).  The executors compose starts as
  ``start = base + stall₁ + stall₂ + …`` exactly, which is what lets
  :func:`repro.obs.report.critical_path_report` partition the makespan
  without guessing.
* **No tracer, no cost.**  Every instrumentation site in the executors is
  guarded by ``if self.tracer is not None``; the historical stats dicts
  are bit-identical with ``tracer=None``, enforced by the same kind of
  identity tests that guard ``dag_scheduling`` and ``pipeline_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: Canonical lifecycle stage order; later stages may never precede
#: earlier ones on a single op (``sync`` is optional — fast-path ops
#: skip it).
LIFECYCLE_STAGES: tuple[str, ...] = (
    "submit",
    "classify",
    "sync",
    "schedule",
    "execute",
    "commit",
)

#: Attribution categories a span (or its stalls) may carry.  ``network``
#: is never recorded directly by the executors — the report assigns it to
#: timeline gaps (message flight, routing) between chained spans — but
#: client-side traces (e.g. the dynamic-network bench, where the
#: observed interval *is* flight time) may record it explicitly.
CATEGORIES: tuple[str, ...] = (
    "execute",
    "sync_wait",
    "frontier_stall",
    "lease_wait",
    "dispatch_stall",
    "recovery",
    "network",
)


class TraceError(ReproError):
    """A malformed span or lifecycle transition."""


@dataclass(frozen=True, slots=True)
class Span:
    """One completed interval on a named track of the virtual timeline.

    ``chain=True`` spans participate in the critical-path walk (per-op
    execution, dispatch decisions); ``chain=False`` spans are purely
    informational overlays (sync-phase extents, team-lane internals on
    the pool's private clock).
    """

    track: str
    name: str
    category: str
    start: float
    end: float
    #: Named waits immediately preceding ``start``, latest first:
    #: ``start - sum(amounts)`` is the instant the unit was ready apart
    #: from these waits.
    stalls: tuple[tuple[str, float], ...] = ()
    args: dict = field(default_factory=dict)
    chain: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Instant:
    """A zero-duration marker (stage transition, protocol message)."""

    track: str
    name: str
    ts: float
    args: dict = field(default_factory=dict)


class TraceRecorder:
    """Accumulates spans, instants, and per-op lifecycles for one run.

    Pass one recorder to at most one executor run; the makespan and the
    attribution report are properties of a single virtual timeline.

    ``max_spans`` turns on **sampling**: the span list becomes a ring
    buffer of the most recent ``max_spans`` spans, so a long open-loop
    run can stay traced with bounded memory.  Two things survive
    eviction exactly: the per-track *occupancy* totals (busy time per
    span category plus stall time per stall category, accumulated at
    record time) and the metrics registry — so
    :func:`repro.obs.utilization.utilization_report` and the category
    totals stay exact while span *detail* is bounded.  The critical-path
    walk, which needs the full span set, refuses an evicted recorder.
    ``max_spans=None`` (the default) retains everything and is
    bit-identical to the historical recorder.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        max_spans: int | None = None,
    ) -> None:
        if max_spans is not None and max_spans < 1:
            raise TraceError(
                "max_spans must be positive (or None for full retention)"
            )
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_spans = max_spans
        #: Spans ever recorded / evicted by the ring buffer; their
        #: difference is ``len(self.spans)`` (the retained detail).
        self.spans_recorded = 0
        self.spans_evicted = 0
        #: op seq -> {stage: virtual timestamp}
        self._oplife: dict[int, dict[str, float]] = {}
        #: Exact additive occupancy, maintained at record time so it
        #: survives ring-buffer eviction: track -> category -> summed
        #: span durations (chained spans only) / summed stall amounts.
        self._busy: dict[str, dict[str, float]] = {}
        self._stall: dict[str, dict[str, float]] = {}
        self._chain_end = 0.0

    # -- recording ------------------------------------------------------

    def span(
        self,
        track: str,
        name: str,
        category: str,
        start: float,
        end: float,
        stalls: tuple[tuple[str, float], ...] = (),
        args: dict | None = None,
        chain: bool = True,
    ) -> Span:
        if category not in CATEGORIES:
            raise TraceError(f"unknown span category {category!r}")
        if end < start:
            raise TraceError(
                f"span {name!r} on {track!r} ends before it starts "
                f"({end} < {start})"
            )
        for stall_category, amount in stalls:
            if stall_category not in CATEGORIES:
                raise TraceError(
                    f"unknown stall category {stall_category!r}"
                )
            if amount < 0:
                raise TraceError(
                    f"span {name!r} has negative {stall_category} stall"
                )
        span = Span(
            track=track,
            name=name,
            category=category,
            start=start,
            end=end,
            stalls=tuple(stalls),
            args=dict(args) if args else {},
            chain=chain,
        )
        self.spans.append(span)
        self.spans_recorded += 1
        if chain:
            if end > self._chain_end:
                self._chain_end = end
            busy = self._busy.setdefault(track, {})
            busy[category] = busy.get(category, 0.0) + (end - start)
            if span.stalls:
                stall = self._stall.setdefault(track, {})
                for stall_category, amount in span.stalls:
                    stall[stall_category] = (
                        stall.get(stall_category, 0.0) + amount
                    )
        if self.max_spans is not None and len(self.spans) > self.max_spans:
            del self.spans[0]
            self.spans_evicted += 1
        return span

    def instant(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        self.instants.append(
            Instant(
                track=track, name=name, ts=ts, args=dict(args) if args else {}
            )
        )

    # -- per-op lifecycle ----------------------------------------------

    def op_stage(self, seq: int, stage: str, ts: float) -> None:
        """Mark an op's lifecycle stage at a virtual timestamp.  Stages
        must be non-decreasing in time; re-marking a stage keeps the
        first timestamp (a chain op's schedule time is its unit's)."""
        if stage not in LIFECYCLE_STAGES:
            raise TraceError(f"unknown lifecycle stage {stage!r}")
        life = self._oplife.setdefault(seq, {})
        if stage in life:
            return
        latest = max(life.values(), default=None)
        if latest is not None and ts < latest:
            raise TraceError(
                f"op {seq} stage {stage!r} at {ts} precedes an earlier "
                f"stage at {latest}"
            )
        life[stage] = ts
        if stage == "commit" and "submit" in life:
            self.metrics.histogram("op_latency").observe(
                ts - life["submit"], ts=ts
            )
            self.metrics.counter("ops_committed").inc(ts=ts)

    def op_submit(self, seq: int, ts: float) -> None:
        self.op_stage(seq, "submit", ts)
        self.metrics.counter("ops_submitted").inc(ts=ts)

    def op_commit(self, seq: int, ts: float) -> None:
        self.op_stage(seq, "commit", ts)

    def lifecycle(self, seq: int) -> dict[str, float]:
        """A copy of one op's recorded stage timestamps."""
        return dict(self._oplife.get(seq, {}))

    @property
    def op_seqs(self) -> list[int]:
        return sorted(self._oplife)

    def unterminated(self) -> list[int]:
        """Ops that were submitted but never reached ``commit`` — empty
        after any completed run (the well-formedness tests assert so)."""
        return sorted(
            seq
            for seq, life in self._oplife.items()
            if "commit" not in life
        )

    def stage_totals(self) -> dict[str, dict[str, float]]:
        """Aggregate per-op lifecycle waterfalls: for every consecutive
        pair of *recorded* stages (``submit->classify``,
        ``classify->schedule``, …) the number of ops that traversed it
        and the total virtual time they spent in it.  This is the
        stage-level view the trace differ aligns on."""
        totals: dict[str, dict[str, float]] = {}
        for life in self._oplife.values():
            present = [
                stage for stage in LIFECYCLE_STAGES if stage in life
            ]
            for earlier, later in zip(present, present[1:]):
                entry = totals.setdefault(
                    f"{earlier}->{later}", {"count": 0, "total": 0.0}
                )
                entry["count"] += 1
                entry["total"] += life[later] - life[earlier]
        return totals

    # -- derived --------------------------------------------------------

    @property
    def sampled(self) -> bool:
        """True once the ring buffer has actually dropped span detail.
        A bounded recorder that never overflowed still holds the full
        trace, so it is not sampled."""
        return self.spans_evicted > 0

    @property
    def makespan(self) -> float:
        """Last chained-span finish on the run's virtual timeline (the
        informational overlays, e.g. team-lane internals on the pool's
        private clock, do not count).  Maintained as a running maximum
        so it stays exact under ring-buffer eviction."""
        return self._chain_end

    def busy_totals(self) -> dict[str, dict[str, float]]:
        """Exact per-track busy time by span category (chained spans
        only), accumulated at record time — exact even when sampled."""
        return {
            track: dict(totals) for track, totals in self._busy.items()
        }

    def stall_totals(self) -> dict[str, dict[str, float]]:
        """Exact per-track stall time by stall category (chained spans
        only), accumulated at record time — exact even when sampled."""
        return {
            track: dict(totals) for track, totals in self._stall.items()
        }

    def category_totals(self) -> dict[str, float]:
        """Exact occupancy totals by category across all tracks: summed
        span durations plus summed stall amounts.  Unlike the
        critical-path attribution (which charges one backward walk),
        these are *additive* — every lane's busy time counts — and they
        survive ring-buffer eviction exactly."""
        totals: dict[str, float] = {}
        for per_track in (self._busy, self._stall):
            for track_totals in per_track.values():
                for category, amount in track_totals.items():
                    totals[category] = totals.get(category, 0.0) + amount
        return {
            category: totals[category]
            for category in CATEGORIES
            if category in totals
        }

    def interval_occupancy(self, t0: float, t1: float) -> dict[str, float]:
        """Occupancy by category restricted to the half-open virtual-time
        interval ``[t0, t1)``: chained span durations clipped to the
        interval, plus their recorded stalls, which tile the timeline
        backward from each span's start (``start − stall₁ − stall₂ …``,
        the same composition the executors use), clipped the same way.

        Summing this query over any partition of the timeline reproduces
        :meth:`category_totals` exactly (up to float re-association) —
        the conservation guarantee :class:`repro.obs.series.TimeSeries`
        builds its windows on.  Needs every span, so an evicted
        (ring-buffer-sampled) recorder is refused, like the
        critical-path walk.
        """
        if t1 < t0:
            raise TraceError(
                f"interval_occupancy wants t0 <= t1, got [{t0}, {t1})"
            )
        if self.sampled:
            raise TraceError(
                f"interval occupancy needs every span, but this recorder "
                f"evicted {self.spans_evicted} of {self.spans_recorded} "
                f"(ring buffer max_spans={self.max_spans}); use the exact "
                f"category_totals() instead"
            )
        totals: dict[str, float] = {}

        def clip(category: str, lo: float, hi: float) -> None:
            overlap = min(hi, t1) - max(lo, t0)
            if overlap > 0:
                totals[category] = totals.get(category, 0.0) + overlap

        for span in self.spans:
            if not span.chain:
                continue
            clip(span.category, span.start, span.end)
            cursor = span.start
            for stall_category, amount in span.stalls:
                clip(stall_category, cursor - amount, cursor)
                cursor -= amount
        return {
            category: totals[category]
            for category in CATEGORIES
            if category in totals
        }

    def tracks(self) -> list[str]:
        """All track names, spans first, in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for instant in self.instants:
            seen.setdefault(instant.track, None)
        return list(seen)
