"""Per-track timeline occupancy and team-lane pool lifecycle attribution.

The critical-path report answers *what the makespan is made of* along
one backward walk; this module answers *what every lane was doing* for
the whole run: each chained track's virtual timeline splits into
**busy** (span durations, by span category), **stall** (recorded waits,
by stall category), and **idle** (the remainder), and the three
fractions sum to 1 per track by construction — the same exact-sum
discipline :meth:`repro.obs.report.AttributionReport.check` enforces,
here as "a track cannot be more than 100% occupied".  Tracks that never
execute anything (the router's dispatch gate, whose recorded waits
belong to concurrently queued units and overlap freely) are reported as
:class:`QueueWait` aggregates instead of fractions.

The inputs are the recorder's *additive occupancy accumulators*
(:meth:`TraceRecorder.busy_totals` / :meth:`~TraceRecorder.stall_totals`),
maintained exactly at record time — so the report is exact even for a
sampling (ring-buffer) recorder whose span detail was evicted.  On a
full recorder the accumulators are cross-checked against the retained
spans, so accumulator drift cannot go unnoticed.

Team-lane pools (:class:`repro.net.team_lanes.TeamLanePool`) run on a
private clock, so their lanes appear here not as timeline tracks but as
*lifecycle churn*: spin-up and idle-GC instants recorded by the pool
(``lane spin-up`` / ``lane gc`` on the ``teamlanes.pool`` track),
summarized per run by :func:`lane_churn`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import TraceError, TraceRecorder

#: Track the team-lane pool records its lifecycle instants on (the pool
#: itself has no timeline extent — its lanes run on a private clock).
POOL_TRACK = "teamlanes.pool"

#: Slack for cross-checking accumulated totals against retained spans.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TrackUtilization:
    """One chained track's occupancy over ``[0, extent]``."""

    track: str
    #: The run's makespan — every track is judged against the same
    #: global timeline, so an early-finishing lane shows up as idle.
    extent: float
    busy: dict[str, float]
    stalls: dict[str, float]

    @property
    def busy_time(self) -> float:
        return sum(self.busy.values())

    @property
    def stall_time(self) -> float:
        return sum(self.stalls.values())

    @property
    def idle_time(self) -> float:
        return self.extent - self.busy_time - self.stall_time

    def fractions(self) -> dict[str, float]:
        """``{"busy", "stall", "idle"}`` fractions of the extent; they
        sum to 1 by construction (idle is the remainder)."""
        if self.extent <= 0:
            return {"busy": 0.0, "stall": 0.0, "idle": 0.0}
        return {
            "busy": self.busy_time / self.extent,
            "stall": self.stall_time / self.extent,
            "idle": self.idle_time / self.extent,
        }

    def as_dict(self) -> dict:
        return {
            "busy": dict(self.busy),
            "stalls": dict(self.stalls),
            "idle": self.idle_time,
            "fractions": self.fractions(),
        }


@dataclass(frozen=True, slots=True)
class QueueWait:
    """A track that never executes — it only queues.

    The router's dispatch gate records zero-length chained spans whose
    stalls belong to *concurrently waiting* units, so the waits overlap
    and cannot be read as timeline occupancy (their sum routinely
    exceeds the makespan).  Such tracks are reported as aggregate wait
    by category instead of busy/stall/idle fractions.
    """

    track: str
    waits: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.waits.values())

    def as_dict(self) -> dict:
        return {"waits": dict(self.waits), "total": self.total}


@dataclass(frozen=True, slots=True)
class LaneChurn:
    """Team-lane pool lifecycle over one run, from the pool's instants."""

    #: Lane provisioning events (``lane spin-up``) — repeat contention
    #: among the same spenders reuses a live lane and records nothing.
    spinups: int
    #: Idle-GC events (``lane gc``) — each reclaims one lane's replicas
    #: and private network after ``idle_ttl`` unused rounds.
    collections: int
    #: High-water mark of lanes held live at any instant.
    peak_live: int
    #: Distinct teams that ever got a lane (re-provisioning after GC
    #: names the same team again).
    teams: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "spinups": self.spinups,
            "collections": self.collections,
            "peak_live": self.peak_live,
            "teams": len(self.teams),
        }


@dataclass(frozen=True, slots=True)
class UtilizationReport:
    """Per-track occupancy plus pool churn for one traced run."""

    makespan: float
    tracks: tuple[TrackUtilization, ...]
    queues: tuple[QueueWait, ...] = ()
    lanes: LaneChurn | None = None
    sampled: bool = False

    def check(self, tolerance: float = 1e-6) -> "UtilizationReport":
        """Enforce the exact-sum discipline: on every track the busy /
        stall / idle split must tile ``[0, makespan]`` — idle is the
        remainder by construction, so the real invariants are that no
        component is negative (an over-committed track means an
        instrumentation site double-billed time) and the fractions sum
        to 1.  Raises :class:`TraceError`; returns self for chaining."""
        bound = tolerance * max(1.0, self.makespan)
        for track in self.tracks:
            if track.idle_time < -bound:
                raise TraceError(
                    f"track {track.track!r} is over-committed: busy "
                    f"{track.busy_time!r} + stall {track.stall_time!r} "
                    f"exceeds the makespan {self.makespan!r}"
                )
            if any(
                amount < 0
                for totals in (track.busy, track.stalls)
                for amount in totals.values()
            ):
                raise TraceError(
                    f"track {track.track!r} carries a negative "
                    f"occupancy total"
                )
            fractions = track.fractions()
            if self.makespan > 0 and (
                abs(sum(fractions.values()) - 1.0) > tolerance
            ):
                raise TraceError(
                    f"track {track.track!r} fractions do not sum to 1: "
                    f"{fractions}"
                )
        for queue in self.queues:
            if any(amount < 0 for amount in queue.waits.values()):
                raise TraceError(
                    f"queue track {queue.track!r} carries a negative wait"
                )
        return self

    def track(self, name: str) -> TrackUtilization:
        for entry in self.tracks:
            if entry.track == name:
                return entry
        raise TraceError(f"no chained track named {name!r}")

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "sampled": self.sampled,
            "tracks": {
                entry.track: entry.as_dict() for entry in self.tracks
            },
            "queues": {
                entry.track: entry.as_dict() for entry in self.queues
            },
            "lanes": self.lanes.as_dict() if self.lanes else None,
        }

    def render(self) -> list[str]:
        """Human-readable occupancy table for bench/example output."""
        lines = [
            f"utilization (virtual time {self.makespan:.2f}"
            + (", sampled)" if self.sampled else ")"),
            "  track                      busy    stall     idle",
        ]
        for entry in self.tracks:
            fractions = entry.fractions()
            lines.append(
                f"  {entry.track:<24}{fractions['busy']:>7.1%}"
                f"{fractions['stall']:>9.1%}{fractions['idle']:>9.1%}"
            )
        for queue in self.queues:
            waited = ", ".join(
                f"{category} {amount:.2f}"
                for category, amount in sorted(queue.waits.items())
                if amount > 0
            )
            lines.append(
                f"  {queue.track:<24}queue wait: {waited or 'none'} "
                f"(concurrent units, overlaps allowed)"
            )
        if self.lanes is not None:
            lines.append(
                f"  team lanes: {self.lanes.spinups} spun up, "
                f"{self.lanes.collections} collected, "
                f"peak {self.lanes.peak_live} live, "
                f"{len(self.lanes.teams)} distinct teams"
            )
        return lines


def lane_churn(tracer: TraceRecorder) -> LaneChurn | None:
    """Summarize the team-lane pool's lifecycle instants, or None when
    the run never touched a pool."""
    spinups = 0
    collections = 0
    peak_live = 0
    teams: dict[str, None] = {}
    for instant in tracer.instants:
        if instant.track != POOL_TRACK:
            continue
        live = int(instant.args.get("live", 0))
        if live > peak_live:
            peak_live = live
        if instant.name == "lane spin-up":
            spinups += 1
            teams.setdefault(str(instant.args.get("team", "")), None)
        elif instant.name == "lane gc":
            collections += 1
    if not spinups and not collections:
        return None
    return LaneChurn(
        spinups=spinups,
        collections=collections,
        peak_live=peak_live,
        teams=tuple(teams),
    )


def _recheck_against_spans(tracer: TraceRecorder) -> None:
    """On a full recorder, re-derive the occupancy from the retained
    spans and insist it matches the accumulators — the guard that keeps
    'exact even when sampled' an enforced property rather than a hope."""
    busy: dict[str, dict[str, float]] = {}
    stall: dict[str, dict[str, float]] = {}
    for span in tracer.spans:
        if not span.chain:
            continue
        per = busy.setdefault(span.track, {})
        per[span.category] = per.get(span.category, 0.0) + span.duration
        if span.stalls:
            per = stall.setdefault(span.track, {})
            for category, amount in span.stalls:
                per[category] = per.get(category, 0.0) + amount
    for derived, accumulated, kind in (
        (busy, tracer.busy_totals(), "busy"),
        (stall, tracer.stall_totals(), "stall"),
    ):
        if set(derived) != set(accumulated):
            raise TraceError(
                f"{kind} occupancy tracks diverged from the span list"
            )
        for track, totals in derived.items():
            for category, amount in totals.items():
                recorded = accumulated[track].get(category)
                if recorded is None or abs(recorded - amount) > (
                    _EPS * max(1.0, abs(amount))
                ):
                    raise TraceError(
                        f"accumulated {kind} occupancy for "
                        f"{track!r}/{category} diverged from the "
                        f"retained spans ({recorded!r} vs {amount!r})"
                    )


def utilization_report(tracer: TraceRecorder) -> UtilizationReport:
    """Build the per-track occupancy report for one traced run.

    Only *chained* tracks appear — informational overlays (sync-phase
    extents, team-lane internals) live on private clocks and would make
    fractions meaningless.  Tracks that execute (nonzero busy time) get
    busy/stall/idle fractions; tracks that only queue (the router's
    dispatch gate, whose per-unit waits overlap) are reported as
    :class:`QueueWait` aggregates.  Exact for sampled recorders;
    cross-checked against the span list for full ones.
    """
    if not tracer.sampled:
        _recheck_against_spans(tracer)
    busy = tracer.busy_totals()
    stall = tracer.stall_totals()
    makespan = tracer.makespan
    tracks: list[TrackUtilization] = []
    queues: list[QueueWait] = []
    # busy_totals is keyed in first-chained-appearance order; a track
    # with only stalls cannot exist (stalls ride on spans).
    for track in busy:
        busy_time = sum(busy[track].values())
        stalls = stall.get(track, {})
        if busy_time <= 0 and sum(stalls.values()) > 0:
            queues.append(QueueWait(track=track, waits=dict(stalls)))
            continue
        tracks.append(
            TrackUtilization(
                track=track,
                extent=makespan,
                busy=busy[track],
                stalls=stalls,
            )
        )
    return UtilizationReport(
        makespan=makespan,
        tracks=tuple(tracks),
        queues=tuple(queues),
        lanes=lane_churn(tracer),
        sampled=tracer.sampled,
    )
