"""The paper's algorithms: consensus constructions and the Theorem 4
emulation."""

from repro.protocols.base import (
    ConsensusProtocol,
    consensus_checks,
    decided_values,
)
from repro.protocols.erc721_consensus import (
    ERC721Consensus,
    erc721_consensus_system,
)
from repro.protocols.erc1155_consensus import (
    ERC1155Consensus,
    erc1155_consensus_system,
)
from repro.protocols.escrow_token import EscrowToken, escrow_from_deploy
from repro.protocols.erc777_consensus import (
    ERC777Consensus,
    erc777_consensus_system,
)
from repro.protocols.kat_consensus import KATConsensus, kat_consensus_system
from repro.protocols.register_consensus import (
    DoomedRegisterConsensus,
    doomed_register_system,
)
from repro.protocols.token_consensus import TokenConsensus, algorithm1_system
from repro.protocols.token_from_kat import (
    EmulatedToken,
    SafeEmulatedToken,
    run_sequential,
    workload_program,
)

__all__ = [
    "ConsensusProtocol",
    "consensus_checks",
    "decided_values",
    "ERC721Consensus",
    "erc721_consensus_system",
    "ERC1155Consensus",
    "erc1155_consensus_system",
    "EscrowToken",
    "escrow_from_deploy",
    "ERC777Consensus",
    "erc777_consensus_system",
    "KATConsensus",
    "kat_consensus_system",
    "DoomedRegisterConsensus",
    "doomed_register_system",
    "TokenConsensus",
    "algorithm1_system",
    "EmulatedToken",
    "SafeEmulatedToken",
    "run_sequential",
    "workload_program",
]
