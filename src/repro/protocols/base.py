"""Protocol interfaces and the consensus correctness properties.

The paper's consensus object (§3.1) requires, for every execution:

* **termination** (wait-freedom): every correct process's ``propose`` returns;
* **validity**: the decided value is the proposal of some process;
* **consistency/agreement**: every process returns the same decided value.

:func:`consensus_checks` packages these as a terminal-execution check for the
exhaustive explorer and the randomized executor sweeps; termination itself is
enforced structurally (an execution only terminates when every non-crashed
process has returned, and step budgets catch non-terminating protocols).
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol

from repro.runtime.executor import System
from repro.runtime.explorer import TerminalCheck
from repro.runtime.process import ProcessRunner, ProcessStatus
from repro.runtime.scheduler import Action


class ConsensusProtocol(Protocol):
    """Structural interface every consensus construction in this library
    implements: ``propose`` is a generator program for one process."""

    def propose(self, pid: int, value: Any):  # pragma: no cover - interface
        """Return a generator yielding one OpCall per atomic step and
        ``return``-ing the decided value."""
        ...


def consensus_checks(proposals: Mapping[int, Any]) -> TerminalCheck:
    """Build a terminal check validating agreement + validity.

    Args:
        proposals: Proposal per participating pid; validity requires every
            decision to be one of these values.
    """
    valid_values = set(proposals.values())

    def check(
        runners: list[ProcessRunner],
        system: System,
        schedule: tuple[Action, ...],
    ) -> list[str]:
        problems: list[str] = []
        decided = {
            r.pid: r.result for r in runners if r.status is ProcessStatus.DONE
        }
        values = set(decided.values())
        if len(values) > 1:
            problems.append(f"agreement violated: decisions {decided}")
        for pid, value in decided.items():
            if value not in valid_values:
                problems.append(
                    f"validity violated: p{pid} decided {value!r}, "
                    f"not a proposal in {sorted(map(repr, valid_values))}"
                )
        return problems

    return check


def decided_values(runners: list[ProcessRunner]) -> dict[int, Any]:
    """Final decisions of the processes that completed."""
    return {r.pid: r.result for r in runners if r.status is ProcessStatus.DONE}
