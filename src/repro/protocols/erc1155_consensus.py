"""Consensus from an ERC1155 token (paper §6, the open conjecture).

§6 states: "it is plausible that ERC1155 tokens inherit the synchronization
requirements of ERC20 tokens", leaving the analysis open.  This module
demonstrates the *lower-bound half* of the conjecture constructively: the
operator mechanism of ERC1155 supports the same race as ERC777, on any one
token type, so ``CN`` at a state with ``k`` operators on a funded holder is
at least ``k``.

Construction (mirrors :mod:`repro.protocols.erc777_consensus`): a holder
funds token type 0 with ``B`` units and enables ``k - 1`` operators; every
participant races ``safeTransferFrom(holder, target_i, type_0, B)`` toward a
distinct target; the unique winner is read off the target balances.

The *batch* methods add a twist worth demonstrating (see the tests): one
``safeBatchTransferFrom`` can race on several token types **atomically**,
which single-type tokens cannot express — consistent with the paper's
suspicion that ERC1155's combinations need an analysis of their own.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping

from repro.errors import InvalidArgumentError, ProtocolError
from repro.objects.erc1155 import ERC1155Token, MultiTokenState
from repro.objects.register import AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class ERC1155Consensus:
    """Operator race on one token type of a funded ERC1155 holder."""

    def __init__(
        self,
        token: ERC1155Token,
        holder: int,
        token_type: int,
        sink: int,
        registers: list[AtomicRegister] | None = None,
    ) -> None:
        state: MultiTokenState = token.state
        self.balance = state.balance(holder, token_type)
        if self.balance <= 0:
            raise InvalidArgumentError("the holder needs a positive balance")
        operators = state.operators[holder]
        participants = (holder,) + tuple(sorted(operators))
        if sink in participants:
            raise InvalidArgumentError("the sink must not participate")
        self.token = token
        self.holder = holder
        self.token_type = token_type
        self.sink = sink
        self.participants: tuple[int, ...] = participants
        self.k = len(participants)
        self.targets: dict[int, int] = {holder: sink}
        for pid in operators:
            self.targets[pid] = pid
        for target in self.targets.values():
            if state.balance(target, token_type) != 0:
                raise InvalidArgumentError(
                    f"target account {target} must start empty for type "
                    f"{token_type}"
                )
        if registers is None:
            registers = register_array(self.k, prefix="R")
        if len(registers) != self.k:
            raise InvalidArgumentError(f"need exactly k={self.k} registers")
        self.registers = list(registers)

    def index_of(self, pid: int) -> int:
        try:
            return self.participants.index(pid)
        except ValueError:
            raise InvalidArgumentError(
                f"process {pid} is not a race participant"
            ) from None

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        i = self.index_of(pid)
        yield self.registers[i].write(value)
        yield self.token.safe_transfer_from(
            self.holder, self.targets[pid], self.token_type, self.balance
        )
        for j, participant in enumerate(self.participants):
            target_balance = yield self.token.balance_of(
                self.targets[participant], self.token_type
            )
            if target_balance >= self.balance:
                decision = yield self.registers[j].read()
                return decision
        raise ProtocolError("no winning target found after the ERC1155 race")


def erc1155_consensus_system(
    proposals: Mapping[int, Any],
    balance: int = 1,
    num_token_types: int = 2,
) -> System:
    """Build a fresh ERC1155 operator-race system for ``k = len(proposals)``
    participants (pids ``0..k-1``; account ``k`` is the sink; account 0 the
    funded holder)."""
    participants = sorted(proposals)
    k = len(participants)
    if k < 1:
        raise InvalidArgumentError("need at least one participant")
    if participants != list(range(k)):
        raise InvalidArgumentError("participants must be pids 0..k-1")
    if balance <= 0:
        raise InvalidArgumentError("balance must be positive")
    num_accounts = k + 1
    grid = [[0] * num_token_types for _ in range(num_accounts)]
    grid[0][0] = balance
    token = ERC1155Token(grid)
    for pid in participants[1:]:
        token.invoke(0, token.set_approval_for_all(pid, True).operation)
    protocol = ERC1155Consensus(token, holder=0, token_type=0, sink=k)
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p]))
        for pid in participants
    ]
    return System(
        programs=programs,
        objects=[token, *protocol.registers],
        meta={"proposals": dict(proposals), "protocol": protocol},
        pids=participants,
    )
