"""Consensus from an ERC721 token (paper §6).

"Algorithm 1 can be adapted so that it uses a specific token, determined by
its identifier tokenId, which all the participating processes are approved to
spend; the winner of this race can then be determined by invoking ownerOf."

The adaptation implemented here ("with some adjustment", as §6 says):

* The token's owner enables the ``k - 1`` other participants as *operators*
  (ERC721's per-token ``approve`` admits a single approved address, so
  operators are the mechanism that supports ``k > 2``).
* Every participant races ``transferFrom(owner_account, target_i, tokenId)``.
  The owner's target is a dedicated *sink* account (owned by nobody in the
  race): if the owner transferred the token to itself the state would not
  change and the losers' transfers would still be authorized, breaking the
  uniqueness of the winner.  Every other participant targets its own account.
* After the race, ``ownerOf(tokenId)`` names the winner's target account,
  which identifies the winner; its registered proposal is decided.

Uniqueness: the first successful ``transferFrom`` moves the token away from
``owner_account``; all later attempts fail the ``ownerOf(tokenId) == source``
check.  No participant is an operator for the winner's account or the sink,
so the token cannot move again during the protocol.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping

from repro.errors import InvalidArgumentError, ProtocolError
from repro.objects.erc721 import ERC721Token, NFTState
from repro.objects.register import AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class ERC721Consensus:
    """The §6 race on a single NFT.

    Args:
        nft: The shared ERC721 object; participants (other than the token
            owner) must already be operators for the owner's account.
        token_id: The NFT raced on.
        sink: The owner's target account: distinct from every participant's
            account and with no operators.
        registers: ``k`` atomic registers (created fresh when omitted).
    """

    def __init__(
        self,
        nft: ERC721Token,
        token_id: int,
        sink: int,
        registers: list[AtomicRegister] | None = None,
    ) -> None:
        state: NFTState = nft.state
        owner_account = state.owner_of(token_id)
        operators = state.operators[owner_account]
        participants = (owner_account,) + tuple(sorted(operators))
        if sink in participants:
            raise InvalidArgumentError("the sink must not participate")
        if state.operators[sink]:
            raise InvalidArgumentError(
                "the sink account must have no operators"
            )
        for pid in operators:
            if state.operators[pid]:
                raise InvalidArgumentError(
                    f"participant {pid}'s account must have no operators, or "
                    "the token could move again after the race"
                )
        self.nft = nft
        self.token_id = token_id
        self.sink = sink
        self.owner_account = owner_account
        self.participants: tuple[int, ...] = participants
        self.k = len(participants)
        #: Target account per participant: sink for the owner, own account
        #: otherwise.  Targets are distinct, making the winner identifiable.
        self.targets: dict[int, int] = {owner_account: sink}
        for pid in operators:
            self.targets[pid] = pid
        if registers is None:
            registers = register_array(self.k, prefix="R")
        if len(registers) != self.k:
            raise InvalidArgumentError(f"need exactly k={self.k} registers")
        self.registers = list(registers)

    def index_of(self, pid: int) -> int:
        try:
            return self.participants.index(pid)
        except ValueError:
            raise InvalidArgumentError(
                f"process {pid} is not racing on token {self.token_id}"
            ) from None

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        i = self.index_of(pid)
        yield self.registers[i].write(value)
        yield self.nft.transfer_from(
            self.owner_account, self.targets[pid], self.token_id
        )
        holder = yield self.nft.owner_of(self.token_id)
        for j, participant in enumerate(self.participants):
            if self.targets[participant] == holder:
                decision = yield self.registers[j].read()
                return decision
        raise ProtocolError(
            f"token {self.token_id} ended up with non-participant account "
            f"{holder}; the race was not isolated"
        )


def erc721_consensus_system(proposals: Mapping[int, Any]) -> System:
    """Build a fresh §6 NFT-race system for ``k = len(proposals)``
    participants (pids ``0..k-1``; account ``k`` is the sink).

    The initial state already has the operators enabled — reaching it from a
    freshly-minted contract requires the owner's ``setApprovalForAll`` calls
    to succeed, the same non-wait-free preparation as for ERC20 (§5.2).
    """
    participants = sorted(proposals)
    k = len(participants)
    if k < 1:
        raise InvalidArgumentError("need at least one participant")
    if participants != list(range(k)):
        raise InvalidArgumentError("participants must be pids 0..k-1")
    num_accounts = k + 1  # + the sink
    sink = k
    nft = ERC721Token(num_accounts, initial_owners=[0])
    # Enable every non-owner participant as an operator of the owner.
    for pid in participants[1:]:
        nft.invoke(0, nft.set_approval_for_all(pid, True).operation)
    protocol = ERC721Consensus(nft, token_id=0, sink=sink)
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p]))
        for pid in participants
    ]
    return System(
        programs=programs,
        objects=[nft, *protocol.registers],
        meta={"proposals": dict(proposals), "protocol": protocol},
        pids=participants,
    )
