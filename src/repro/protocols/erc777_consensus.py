"""Consensus from an ERC777 token (paper §6).

"It is immediate to extend our results to ERC777.  Specifically, both
Algorithms 1 and 2 can be adapted by replacing the approved spenders with the
corresponding operators."

The adaptation: operators may spend the holder's *entire* balance (there is
no bounded allowance), so the unique-transfer predicate ``U`` is satisfied
automatically — every racer attempts the full balance ``B``, and after the
first success the account is empty, failing all others.  Because ERC777 has
no allowance that zeroes out, the winner is identified (as in the ``k``-AT
race) by scanning per-participant *target* accounts for the ``B`` tokens.

Account layout mirrors :mod:`repro.protocols.erc721_consensus`: the holder
sends to a dedicated sink; every operator sends to its own account (distinct
targets make the winner unambiguous; targets start empty and receive no other
traffic).
"""

from __future__ import annotations

from typing import Any, Generator, Mapping

from repro.errors import InvalidArgumentError, ProtocolError
from repro.objects.erc777 import ERC777State, ERC777Token
from repro.objects.register import AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class ERC777Consensus:
    """Operator race on a funded ERC777 account.

    Args:
        token: The shared ERC777 object; the racing operators must already be
            authorized for ``holder``'s account.
        holder: The account whose balance is raced for (its owner is the
            paper's ``p1``).
        sink: The holder's target account: distinct from all participants'
            accounts, empty, and receiving no other traffic.
    """

    def __init__(
        self,
        token: ERC777Token,
        holder: int,
        sink: int,
        registers: list[AtomicRegister] | None = None,
    ) -> None:
        state: ERC777State = token.state
        self.balance = state.balance(holder)
        if self.balance <= 0:
            raise InvalidArgumentError("the holder needs a positive balance")
        operators = state.operators[holder]
        participants = (holder,) + tuple(sorted(operators))
        if sink in participants:
            raise InvalidArgumentError("the sink must not participate")
        self.token = token
        self.holder = holder
        self.sink = sink
        self.participants: tuple[int, ...] = participants
        self.k = len(participants)
        self.targets: dict[int, int] = {holder: sink}
        for pid in operators:
            self.targets[pid] = pid
        for target in self.targets.values():
            if state.balance(target) != 0:
                raise InvalidArgumentError(
                    f"target account {target} must start empty"
                )
        if registers is None:
            registers = register_array(self.k, prefix="R")
        if len(registers) != self.k:
            raise InvalidArgumentError(f"need exactly k={self.k} registers")
        self.registers = list(registers)

    def index_of(self, pid: int) -> int:
        try:
            return self.participants.index(pid)
        except ValueError:
            raise InvalidArgumentError(
                f"process {pid} is not an operator race participant"
            ) from None

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        i = self.index_of(pid)
        yield self.registers[i].write(value)
        if pid == self.holder:
            yield self.token.send(self.targets[pid], self.balance)
        else:
            yield self.token.operator_send(
                self.holder, self.targets[pid], self.balance
            )
        for j, participant in enumerate(self.participants):
            target_balance = yield self.token.balance_of(
                self.targets[participant]
            )
            if target_balance >= self.balance:
                decision = yield self.registers[j].read()
                return decision
        raise ProtocolError("no winning target found after the operator race")


def erc777_consensus_system(
    proposals: Mapping[int, Any], balance: int = 1
) -> System:
    """Build a fresh §6 operator-race system for ``k = len(proposals)``
    participants (pids ``0..k-1``; account ``k`` is the sink; account 0 is
    the funded holder)."""
    participants = sorted(proposals)
    k = len(participants)
    if k < 1:
        raise InvalidArgumentError("need at least one participant")
    if participants != list(range(k)):
        raise InvalidArgumentError("participants must be pids 0..k-1")
    if balance <= 0:
        raise InvalidArgumentError("balance must be positive")
    num_accounts = k + 1
    balances = [0] * num_accounts
    balances[0] = balance
    token = ERC777Token(balances)
    for pid in participants[1:]:
        token.invoke(0, token.authorize_operator(pid).operation)
    protocol = ERC777Consensus(token, holder=0, sink=k)
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p]))
        for pid in participants
    ]
    return System(
        programs=programs,
        objects=[token, *protocol.registers],
        meta={"proposals": dict(proposals), "protocol": protocol},
        pids=participants,
    )
