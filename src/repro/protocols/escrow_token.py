"""Escrowed allowances: a token variant that *loses* synchronization power.

A by-product of the reproduction (see DESIGN.md note 5): Algorithm 2's
emulated ``transferFrom`` is non-atomic because the allowance check (a
register) and the balance move (the k-AT) are separate base objects.  The
natural repair is to make each allowance a *funded escrow*: represent
account ``a`` as a **free** sub-account owned by ``ω(a)`` plus one **escrow**
sub-account per spender ``p``, owned by ``{ω(a), p}`` (a 2-shared account).

* ``increaseAllowance(p, δ)``  = ``AT.transfer(free_a, escrow_{a,p}, δ)``
* ``decreaseAllowance(p, δ)``  = ``AT.transfer(escrow_{a,p}, free_a, δ)``
* ``transferFrom(a, d, v)``    = ``AT.transfer(escrow_{a,p}, free_d, v)``
* ``allowance(a, p)``          = ``AT.balanceOf(escrow_{a,p})``
* ``transfer(d, v)``           = ``AT.transfer(free_a, free_d, v)``

Every operation is now a **single atomic step** on a 2-shared asset-transfer
object — no seam, no approve race, no allowance leak.

The theoretical punchline: this "fixed" token is *strictly weaker* than
ERC20.  Approving a spender no longer creates contention on a shared balance
— the escrow pre-partitions the funds — so the object cannot host the
k-way race Algorithm 1 needs.  Its synchronization power is that of 2-AT
(owner/spender pairs), **regardless of how many spenders an account has**:
the consensus number of the escrow token is 2, not "k, dynamically".  The
synchronization power of ERC20 comes precisely from the contention that
escrowing removes.  Tests demonstrate both directions:

* every escrow-token operation is one base step (atomicity restored);
* the Algorithm 1 race on an escrow token *fails to have a unique winner* —
  all spenders' transfers succeed independently.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import InvalidArgumentError
from repro.objects.asset_transfer import AssetTransfer
from repro.objects.erc20 import TokenState
from repro.runtime.calls import OpCall

EscrowOp = Generator[OpCall, Any, Any]


class EscrowToken:
    """A token with escrowed (pre-funded) allowances over one 2-AT object.

    Account layout inside the underlying asset-transfer object, for ``n``
    logical accounts: sub-account ``a`` (``0 ≤ a < n``) is the free balance
    of account ``a``; sub-account ``n + a·n + p`` is the escrow of account
    ``a`` toward spender ``p``, owned by ``{a, p}``.
    """

    def __init__(
        self, initial_state: TokenState, name: str = "escrow-token"
    ) -> None:
        self.name = name
        self.num_accounts = n = initial_state.num_accounts
        balances: list[int] = list(initial_state.balances)
        owner_map: list[set[int]] = [{a} for a in range(n)]
        for account in range(n):
            for spender in range(n):
                balances.append(initial_state.allowance(account, spender))
                owner_map.append({account, spender})
        total_free = sum(initial_state.balances)
        total_escrow = sum(balances[n:])
        if total_escrow > 0 and total_free + total_escrow != sum(balances):
            raise InvalidArgumentError("inconsistent escrow initialization")
        self.kat = AssetTransfer(
            initial_balances=balances,
            owner_map=owner_map,
            num_processes=n,
            name=f"{name}.at",
        )

    # -- sub-account addressing -------------------------------------------

    def free(self, account: int) -> int:
        self._check(account)
        return account

    def escrow(self, account: int, spender: int) -> int:
        self._check(account)
        self._check(spender)
        return self.num_accounts + account * self.num_accounts + spender

    def _check(self, account: int) -> None:
        if not 0 <= account < self.num_accounts:
            raise InvalidArgumentError(f"unknown account {account!r}")

    @property
    def base_objects(self) -> list[Any]:
        return [self.kat]

    # -- operations: each one atomic base step ------------------------------

    def transfer(self, pid: int, dest: int, value: int) -> EscrowOp:
        result = yield self.kat.transfer(self.free(pid), self.free(dest), value)
        return result

    def transfer_from(
        self, pid: int, source: int, dest: int, value: int
    ) -> EscrowOp:
        result = yield self.kat.transfer(
            self.escrow(source, pid), self.free(dest), value
        )
        return result

    def increase_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EscrowOp:
        result = yield self.kat.transfer(
            self.free(pid), self.escrow(pid, spender), delta
        )
        return result

    def decrease_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EscrowOp:
        result = yield self.kat.transfer(
            self.escrow(pid, spender), self.free(pid), delta
        )
        return result

    def allowance(self, pid: int, account: int, spender: int) -> EscrowOp:
        result = yield self.kat.balance_of(self.escrow(account, spender))
        return result

    def free_balance_of(self, pid: int, account: int) -> EscrowOp:
        """The owner's immediately-spendable balance."""
        result = yield self.kat.balance_of(self.free(account))
        return result

    def balance_of(self, pid: int, account: int) -> EscrowOp:
        """ERC20-style total balance: free + all outstanding escrows.

        NOTE: this is a non-atomic sum of reads — the one operation the
        escrow design cannot make atomic (the reverse trade-off from
        Algorithm 2, whose reads were atomic but whose transferFrom was not).
        """
        total = yield self.kat.balance_of(self.free(account))
        for spender in range(self.num_accounts):
            total += yield self.kat.balance_of(self.escrow(account, spender))
        return total

    def total_supply(self, pid: int) -> EscrowOp:
        result = yield self.kat.total_supply()
        return result


def escrow_from_deploy(num_accounts: int, supply: int) -> EscrowToken:
    """An escrow token from the standard deployment state."""
    return EscrowToken(TokenState.deploy(num_accounts, supply))
