"""Consensus among the ``k`` owners of a shared account from a ``k``-AT
object (lower-bound construction of Guerraoui et al. [16], which the paper
builds on: ``CN(k-AT) = k``).

The construction mirrors Algorithm 1's race, but uses shared *ownership*
instead of allowances: the ``k`` owners of a shared account (balance ``B >
0``) each attempt to drain the full balance into their personal *sink*
account.  Exactly the first attempt succeeds; every process then scans the
sinks — the unique sink holding ``≥ B`` tokens identifies the winner, whose
registered proposal is decided.

Contrast with Algorithm 1 (see §5.2, "ERC20 token vs k-shared asset
transfer"): here the set of potential winners is fixed by the static owner
map ``µ``, whereas the token object's spender set is dynamic.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping

from repro.errors import InvalidArgumentError, ProtocolError
from repro.objects.asset_transfer import AssetTransfer
from repro.objects.register import AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class KATConsensus:
    """Consensus for the ``k`` owners of one shared account.

    Args:
        kat: The shared asset-transfer object.
        shared_account: The account all participants own (``µ`` must contain
            exactly the participants).
        sinks: Per-participant sink accounts, distinct, zero-balance, and not
            receiving any other traffic during the protocol.
        registers: ``k`` atomic registers (created fresh when omitted).
    """

    def __init__(
        self,
        kat: AssetTransfer,
        shared_account: int,
        sinks: Mapping[int, int],
        registers: list[AtomicRegister] | None = None,
    ) -> None:
        owners = kat.object_type.owners(shared_account)
        if set(sinks) != set(owners):
            raise InvalidArgumentError(
                f"sinks must cover exactly the owners {sorted(owners)}"
            )
        if len(set(sinks.values())) != len(sinks):
            raise InvalidArgumentError("sink accounts must be distinct")
        if shared_account in sinks.values():
            raise InvalidArgumentError("the shared account cannot be a sink")
        state = kat.state
        self.balance = state.balance(shared_account)
        if self.balance <= 0:
            raise InvalidArgumentError(
                "the shared account needs a positive balance for the race"
            )
        for sink in sinks.values():
            if state.balance(sink) != 0:
                raise InvalidArgumentError(
                    f"sink account {sink} must start with balance 0"
                )
        self.kat = kat
        self.shared_account = shared_account
        self.participants: tuple[int, ...] = tuple(sorted(owners))
        self.k = len(self.participants)
        self.sinks = dict(sinks)
        if registers is None:
            registers = register_array(self.k, prefix="R")
        if len(registers) != self.k:
            raise InvalidArgumentError(f"need exactly k={self.k} registers")
        self.registers = list(registers)

    def index_of(self, pid: int) -> int:
        try:
            return self.participants.index(pid)
        except ValueError:
            raise InvalidArgumentError(
                f"process {pid} does not own account {self.shared_account}"
            ) from None

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        i = self.index_of(pid)
        yield self.registers[i].write(value)
        # Race: try to drain the shared account into my sink.
        yield self.kat.transfer(
            self.shared_account, self.sinks[pid], self.balance
        )
        # The winner's sink holds >= B; exactly one exists by now.
        for j, participant in enumerate(self.participants):
            sink_balance = yield self.kat.balance_of(self.sinks[participant])
            if sink_balance >= self.balance:
                decision = yield self.registers[j].read()
                return decision
        raise ProtocolError(
            "no winning sink found; the k-AT object violated atomicity"
        )


def kat_consensus_system(
    proposals: Mapping[int, Any],
    balance: int = 1,
) -> System:
    """Build a fresh ``k``-AT consensus system for ``k = len(proposals)``
    participants (pids ``0..k-1``).

    Account layout: account ``0`` is the shared account (owned by everyone),
    accounts ``1..k`` are the per-participant sinks.
    """
    participants = sorted(proposals)
    k = len(participants)
    if k < 1:
        raise InvalidArgumentError("need at least one participant")
    if participants != list(range(k)):
        raise InvalidArgumentError("participants must be pids 0..k-1")
    if balance <= 0:
        raise InvalidArgumentError("shared balance must be positive")
    num_accounts = k + 1
    owner_map: list[set[int]] = [set(participants)]
    owner_map += [{pid} for pid in participants]
    kat = AssetTransfer(
        initial_balances=[balance] + [0] * k,
        owner_map=owner_map,
        num_processes=k,
    )
    sinks = {pid: pid + 1 for pid in participants}
    protocol = KATConsensus(kat, shared_account=0, sinks=sinks)
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p]))
        for pid in participants
    ]
    return System(
        programs=programs,
        objects=[kat, *protocol.registers],
        meta={"proposals": dict(proposals), "protocol": protocol},
        pids=participants,
    )
