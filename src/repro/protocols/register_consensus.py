"""A deliberately *incorrect* register-only consensus protocol (FLP/Herlihy
demonstration).

``CN(register) = 1``: atomic registers cannot solve wait-free consensus for
two processes (FLP [13], Herlihy [18]; recalled by the paper in §3.1).  The
impossibility is about *all* protocols, which no finite experiment can cover;
what the library demonstrates mechanically is the proof's *mechanism* on a
natural attempt:

Each process writes its proposal to its own register, reads the other's
register, and applies a deterministic decision rule.  Whatever the rule, some
interleaving disagrees — the explorer finds it — and the valency analyzer
shows the initial configuration is bivalent while no critical configuration
with register pending-operations can decide consistently (register steps
commute or are read-only, the very cases ruled out in Theorem 3's proof).
"""

from __future__ import annotations

from typing import Any, Generator, Mapping

from repro.errors import InvalidArgumentError
from repro.objects.register import BOTTOM, AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class DoomedRegisterConsensus:
    """The natural-but-wrong write/read/decide protocol for two processes.

    Decision rule: if the other register is still empty, decide own value
    ("I was first"); otherwise decide the smaller of the two values (a
    deterministic symmetric tie-break).  The rule is consistent in solo and
    fully-synchronous runs but fails under the half-overlapped interleaving —
    which is exactly what bivalency predicts.
    """

    def __init__(self, registers: list[AtomicRegister] | None = None) -> None:
        self.registers = (
            registers if registers is not None else register_array(2)
        )
        if len(self.registers) != 2:
            raise InvalidArgumentError("the demonstration uses two processes")

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        if pid not in (0, 1):
            raise InvalidArgumentError("pids must be 0 and 1")
        yield self.registers[pid].write(value)
        other = yield self.registers[1 - pid].read()
        if other is BOTTOM:
            return value
        return min(value, other)


def doomed_register_system(proposals: Mapping[int, Any]) -> System:
    """A fresh two-process register-consensus attempt for the explorer."""
    if sorted(proposals) != [0, 1]:
        raise InvalidArgumentError("provide proposals for pids 0 and 1")
    protocol = DoomedRegisterConsensus()
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p])) for pid in (0, 1)
    ]
    return System(
        programs=programs,
        objects=list(protocol.registers),
        meta={"proposals": dict(proposals), "protocol": protocol},
    )
