"""Algorithm 1: wait-free consensus from an ERC20 token in a synchronization
state (paper, Theorem 2).

Given a token object ``T_q`` with ``q ∈ S_k`` — i.e. some account ``a1`` has
``k`` enabled spenders ``σ_q(a1) = {p1, …, pk}`` (owner first) and the
unique-transfer predicate ``U(a1, q)`` holds — plus ``k`` atomic registers,
the following solves consensus among the ``k`` spenders (paper Algorithm 1,
transcribed with 0-based indices):

    operation propose(v):                        # code for process p_i
        R[i].write(v)
        if p_i is the owner p_1:  T.transfer(a_d, B)            # full balance
        else:                     T.transferFrom(a_1, a_d, A_i) # full allowance
        for j in {2, …, k}:
            if T.allowance(a_1, p_j) = 0:  return R[j].read()
        return R[1].read()

Exactly one of the transfer attempts succeeds (guaranteed by ``U``; see the
erratum note in :mod:`repro.analysis.partition` — the library's canonical
setups use the strengthened ``U*``), the winner is identified either by its
zeroed allowance or, when no allowance is zero, as the owner, and every
process decides the winner's registered proposal.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Sequence

from repro.analysis.partition import (
    make_synchronization_state,
    synchronization_accounts,
    unique_transfer,
    unique_transfer_strict,
)
from repro.analysis.spenders import enabled_spenders
from repro.errors import InvalidArgumentError, ProtocolError
from repro.objects.erc20 import ERC20Token, TokenState
from repro.objects.register import AtomicRegister, register_array
from repro.runtime.calls import OpCall
from repro.runtime.executor import System


class TokenConsensus:
    """Algorithm 1, configured from a token object in a synchronization state.

    Args:
        token: The shared ERC20 token object ``T_q``.
        account: The synchronization account ``a1`` (auto-detected from the
            token's current state when omitted).
        dest: The destination account ``a_d``; the paper picks any account in
            the spender set other than ``a1``; any account ≠ ``a1`` works and
            is accepted.
        registers: The ``k`` atomic registers ``R[1..k]`` (created fresh when
            omitted).
        require_unique_transfer: Verify that the configured account satisfies
            the (strengthened) unique-transfer predicate at construction.
        strict: Use the strengthened predicate ``U*`` (see DESIGN.md erratum);
            set ``False`` to reproduce the paper's literal, weaker check.
    """

    def __init__(
        self,
        token: ERC20Token,
        account: int | None = None,
        dest: int | None = None,
        registers: Sequence[AtomicRegister] | None = None,
        require_unique_transfer: bool = True,
        strict: bool = True,
    ) -> None:
        state: TokenState = token.state
        if account is None:
            account = _detect_synchronization_account(state, strict)
        spenders = enabled_spenders(state, account)
        owner = account  # ω is the identity
        if owner not in spenders:
            raise ProtocolError("owner missing from enabled spenders")
        if require_unique_transfer:
            predicate = unique_transfer_strict if strict else unique_transfer
            if not predicate(state, account):
                raise InvalidArgumentError(
                    f"account {account} does not satisfy the unique-transfer "
                    f"predicate; the state is not in S_k"
                )
        self.token = token
        self.account = account
        #: Participants p_1..p_k, owner first then spenders in pid order.
        self.participants: tuple[int, ...] = (owner,) + tuple(
            sorted(spenders - {owner})
        )
        self.k = len(self.participants)
        if dest is None:
            dest = next(
                a for a in range(state.num_accounts + 1) if a != account
            ) if state.num_accounts > 1 else account
            if dest >= state.num_accounts:
                raise InvalidArgumentError(
                    "cannot pick a destination account distinct from a1"
                )
        self.dest = dest
        #: B: the balance of a1 at configuration time.
        self.balance = state.balance(account)
        #: A_i: allowance of each non-owner participant at configuration time.
        self.allowances: dict[int, int] = {
            pid: state.allowance(account, pid) for pid in self.participants[1:]
        }
        if registers is None:
            registers = register_array(self.k, prefix="R")
        if len(registers) != self.k:
            raise InvalidArgumentError(
                f"need exactly k={self.k} registers, got {len(registers)}"
            )
        self.registers = list(registers)

    # ------------------------------------------------------------------

    def index_of(self, pid: int) -> int:
        """Participant index (0 = owner = the paper's p1)."""
        try:
            return self.participants.index(pid)
        except ValueError:
            raise InvalidArgumentError(
                f"process {pid} is not an enabled spender of account {self.account}"
            ) from None

    def propose(self, pid: int, value: Any) -> Generator[OpCall, Any, Any]:
        """The propose operation for process ``pid`` (one generator per call)."""
        i = self.index_of(pid)
        yield self.registers[i].write(value)
        if i == 0:
            # The owner attempts to transfer the full balance B.
            yield self.token.transfer(self.dest, self.balance)
        else:
            # Spenders attempt to transfer their full allowance A_i.
            yield self.token.transfer_from(
                self.account, self.dest, self.allowances[pid]
            )
        for j in range(1, self.k):
            allowance = yield self.token.allowance(
                self.account, self.participants[j]
            )
            if allowance == 0:
                decision = yield self.registers[j].read()
                return decision
        decision = yield self.registers[0].read()
        return decision


def _detect_synchronization_account(state: TokenState, strict: bool) -> int:
    """Pick a witness account for the largest k with ``q ∈ S_k``."""
    max_level = max(
        len(enabled_spenders(state, a)) for a in range(state.num_accounts)
    )
    for k in range(max_level, 0, -1):
        witnesses = synchronization_accounts(state, k, strict=strict)
        if witnesses:
            return witnesses[0]
    raise InvalidArgumentError(
        "token state is not a synchronization state for any k"
    )


def algorithm1_system(
    proposals: Mapping[int, Any],
    num_accounts: int | None = None,
    account: int = 0,
    balance: int | None = None,
    state: TokenState | None = None,
    strict: bool = True,
) -> System:
    """Build a fresh Algorithm 1 system for the explorer/executor.

    By default constructs the canonical ``S_k`` state for ``k =
    len(proposals)`` participants via
    :func:`repro.analysis.partition.make_synchronization_state` and wires one
    ``propose`` program per participant.

    Args:
        proposals: Proposal per participating pid; participants must be
            exactly the enabled spenders of the chosen account.
        num_accounts: Total accounts ``n`` (defaults to ``max(k + 1, 2)``).
        account: The synchronization account ``a1``.
        balance: Balance ``B`` of ``a1`` (defaults to ``k``).
        state: Explicit initial token state overriding the canonical one.
        strict: Enforce the strengthened predicate ``U*``.
    """
    k = len(proposals)
    if k < 1:
        raise InvalidArgumentError("need at least one participant")
    if state is None:
        if num_accounts is None:
            num_accounts = max(k + 1, 2)
        state = make_synchronization_state(
            num_accounts, k, account=account, balance=balance
        )
    token = ERC20Token(state.num_accounts, initial_state=state)
    protocol = TokenConsensus(
        token, account=account, require_unique_transfer=True, strict=strict
    )
    participants = set(protocol.participants)
    if participants != set(proposals):
        raise InvalidArgumentError(
            f"proposals must cover exactly the enabled spenders "
            f"{sorted(participants)}, got {sorted(proposals)}"
        )
    ordered = sorted(protocol.participants)
    programs = [
        (lambda p=pid: protocol.propose(p, proposals[p])) for pid in ordered
    ]
    return System(
        programs=programs,
        objects=[token, *protocol.registers],
        meta={
            "proposals": dict(proposals),
            "protocol": protocol,
            "participants": ordered,
        },
        pids=ordered,
    )
