"""Algorithm 2: wait-free implementation of the restricted token ``T|_{Q_k}``
from ``k``-shared asset transfer plus atomic registers (paper, Theorem 4).

The implementation keeps, for every account ``a``, one allowance register
``R_a[j]`` per process ``p_j`` (initialized from the starting state's
``α``), and one asset-transfer object holding the balances with owner map
``µ(a) = σ_q(a)``.  The paper handles the *static* owner map of ``k``-AT by
spawning "a new instance of the k-AT object, with the same balances as the
previous instance and an owner map reflecting the updated allowances"
whenever a spender set changes; this library expresses the same thing with
the observationally-equivalent :class:`~repro.objects.asset_transfer.DynamicOwnerAT`
whose ``setOwners`` meta-operation enforces the ``k`` bound (see that class's
docstring).

Three variants are provided:

* ``literal`` — a line-by-line transcription of Algorithm 2, including its
  quirks: the approve guard rejects *any* approve once ``k`` spenders are
  enabled (even re-approvals and revocations), the allowance is decremented
  before the balance check so a failed transfer leaks allowance, and
  ``totalSupply`` sums non-atomic balance reads.
* ``corrected`` — same structure with the three quirks fixed (guard rejects
  only *new* spenders beyond ``k``; allowance restored when the inner
  transfer fails; atomic supply read).  Note that the allowance cells are
  still **multi-writer** (owner's approve vs. spender's decrement), so a
  targeted schedule can still lose an update — the erratum demonstrated in
  the tests (DESIGN.md, Reproduction note 2).
* :class:`SafeEmulatedToken` — replaces each allowance cell with a pair of
  *single-writer* cumulative counters (``granted`` written by the owner,
  ``spent`` by the spender), with increase/decrease-allowance semantics.
  This removes the multi-writer race entirely — the same move the Ethereum
  community made when the ERC20 approve front-running attack was found.

All emulated methods are generators intended for ``yield from`` inside
process programs; each yields one atomic base-object step at a time.  When a
:class:`~repro.spec.history.History` is attached, emulated-level invocation/
response events are recorded for linearizability checking against the
restricted sequential specification.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.analysis.spenders import spender_map
from repro.errors import InvalidArgumentError
from repro.objects.asset_transfer import DynamicOwnerAT
from repro.objects.erc20 import TokenState
from repro.objects.register import AtomicRegister
from repro.runtime.calls import OpCall
from repro.spec.history import History
from repro.spec.object_type import FALSE, TRUE
from repro.spec.operation import Operation

EmulatedOp = Generator[OpCall, Any, Any]

_VARIANTS = ("literal", "corrected")


class EmulatedToken:
    """Algorithm 2: ``T|_{Q_k}`` from a (dynamic-owner) ``k``-AT + registers."""

    def __init__(
        self,
        initial_state: TokenState,
        k: int,
        variant: str = "corrected",
        history: History | None = None,
        name: str = "emulated-token",
    ) -> None:
        """Args:
            initial_state: The starting token state ``q ∈ Q_k`` (its
                potential-spender count must not exceed ``k``).
            k: The sharing bound of the underlying asset-transfer object.
            variant: ``"literal"`` or ``"corrected"`` (see module docstring).
            history: Optional emulated-level history for linearizability
                checks.
            name: Object name used in recorded histories.
        """
        if variant not in _VARIANTS:
            raise InvalidArgumentError(f"variant must be one of {_VARIANTS}")
        self.variant = variant
        self.k = k
        self.name = name
        self.history = history
        self.num_accounts = initial_state.num_accounts
        sigma = spender_map(initial_state)
        # The initial owner map must respect the k bound (q ∈ Q_{<=k}).
        for account, spenders in enumerate(sigma):
            if len(spenders) > k:
                raise InvalidArgumentError(
                    f"account {account} has {len(spenders)} enabled spenders; "
                    f"the state lies outside Q_{k}"
                )
        # Lines 2-4: balances and owner map from state q.  The owner map uses
        # the *potential* spender sets (allowance-positive processes plus the
        # owner) so that funding an account later does not require an owner
        # update; it still respects the k bound whenever the initial state's
        # potential level does.
        owner_map: list[set[int]] = []
        for account in range(self.num_accounts):
            owners = {account} | {
                pid
                for pid in range(self.num_accounts)
                if initial_state.allowance(account, pid) > 0
            }
            if len(owners) > k:
                raise InvalidArgumentError(
                    f"account {account} has {len(owners)} potential spenders; "
                    f"Algorithm 2 requires at most k={k}"
                )
            owner_map.append(owners)
        self.kat = DynamicOwnerAT(
            initial_balances=initial_state.balances,
            owner_map=owner_map,
            num_processes=self.num_accounts,
            max_owners=k,
            name=f"{name}.kat",
        )
        # Lines 5-6: allowance registers R_a[j] initialized from α.
        self.allowance_registers: list[list[AtomicRegister]] = [
            [
                AtomicRegister(
                    name=f"{name}.R[{account}][{pid}]",
                    initial=initial_state.allowance(account, pid),
                )
                for pid in range(self.num_accounts)
            ]
            for account in range(self.num_accounts)
        ]

    # ------------------------------------------------------------------

    @property
    def base_objects(self) -> list[Any]:
        """Every base object the emulation uses (for explorer System specs)."""
        registers = [r for row in self.allowance_registers for r in row]
        return [self.kat, *registers]

    def _recorded(
        self, pid: int, op_name: str, args: tuple[Any, ...], body: EmulatedOp
    ) -> EmulatedOp:
        operation = Operation(op_name, args)
        if self.history is not None:
            self.history.invoke(pid, self.name, operation)
        result = yield from body
        if self.history is not None:
            self.history.respond(pid, self.name, operation, result)
        return result

    # -- public emulated operations (paper line numbers in comments) -----

    def transfer(self, pid: int, dest: int, value: int) -> EmulatedOp:
        """Lines 12-13: transfer from the caller's own account."""
        return self._recorded(
            pid, "transfer", (dest, value), self._transfer(pid, dest, value)
        )

    def transfer_from(
        self, pid: int, source: int, dest: int, value: int
    ) -> EmulatedOp:
        """Lines 7-11: spend from ``source`` using the caller's allowance."""
        return self._recorded(
            pid,
            "transferFrom",
            (source, dest, value),
            self._transfer_from(pid, source, dest, value),
        )

    def approve(self, pid: int, spender: int, value: int) -> EmulatedOp:
        """Lines 16-24: set the caller's allowance for ``spender``."""
        return self._recorded(
            pid, "approve", (spender, value), self._approve(pid, spender, value)
        )

    def balance_of(self, pid: int, account: int) -> EmulatedOp:
        """Lines 14-15."""
        return self._recorded(
            pid, "balanceOf", (account,), self._balance_of(pid, account)
        )

    def allowance(self, pid: int, account: int, spender: int) -> EmulatedOp:
        """Lines 25-26."""
        return self._recorded(
            pid,
            "allowance",
            (account, spender),
            self._allowance(pid, account, spender),
        )

    def total_supply(self, pid: int) -> EmulatedOp:
        """Lines 27-28."""
        return self._recorded(pid, "totalSupply", (), self._total_supply(pid))

    # -- implementations ---------------------------------------------------

    def _transfer(self, pid: int, dest: int, value: int) -> EmulatedOp:
        result = yield self.kat.transfer(pid, dest, value)
        return result

    def _transfer_from(
        self, pid: int, source: int, dest: int, value: int
    ) -> EmulatedOp:
        current = yield self.allowance_registers[source][pid].read()  # line 8
        if current < value:
            return FALSE  # line 9
        if value == 0 and self.variant == "corrected":
            # Definition 3 accepts a zero-value transferFrom from anyone, but
            # k-AT.transfer rejects non-owners even for value 0; short-circuit
            # the vacuous move (reproduction note: the literal algorithm
            # deviates from the specification here).
            return TRUE
        # line 10: R_as[i] -= value (a read-then-write; NOT atomic).
        yield self.allowance_registers[source][pid].write(current - value)
        ok = yield self.kat.transfer(source, dest, value)  # line 11
        if not ok and self.variant == "corrected":
            # The inner transfer failed (insufficient balance or a stale
            # owner map); restore the allowance the literal algorithm leaks.
            now = yield self.allowance_registers[source][pid].read()
            yield self.allowance_registers[source][pid].write(now + value)
            return FALSE
        return ok

    def _enabled_count(self, account: int) -> EmulatedOp:
        """``|{p_a} ∪ {p_j : R_a[j] > 0}|`` — the guard's census (line 17)."""
        count = 1  # the owner p_a
        for pid in range(self.num_accounts):
            if pid == account:
                continue
            value = yield self.allowance_registers[account][pid].read()
            if value > 0:
                count += 1
        return count

    def _scan_spenders(self, account: int) -> EmulatedOp:
        """``{p_a} ∪ {p_j : R_a[j] > 0}`` — the owner-map census (line 23)."""
        spenders = {account}
        for pid in range(self.num_accounts):
            if pid == account:
                continue
            value = yield self.allowance_registers[account][pid].read()
            if value > 0:
                spenders.add(pid)
        return frozenset(spenders)

    def _approve(self, pid: int, spender: int, value: int) -> EmulatedOp:
        account = pid  # ai: the caller's own account
        if self.variant == "literal":
            # Line 17: reject any approve once k spenders are enabled —
            # including re-approvals and revocations (reproduction note 3).
            count = yield from self._enabled_count(account)
            if count == self.k:
                return FALSE  # line 18
        else:
            # Corrected guard: only adding a NEW spender can leave Q_k.
            current = yield self.allowance_registers[account][spender].read()
            if value > 0 and spender != account and current == 0:
                count = yield from self._enabled_count(account)
                if count >= self.k:
                    return FALSE
        old_value = yield self.allowance_registers[account][spender].read()  # 19
        yield self.allowance_registers[account][spender].write(value)  # 20
        if old_value == 0 and value > 0:  # line 21
            if self.variant == "literal":
                # Lines 22-23: refresh the owner map of EVERY account.
                for other in range(self.num_accounts):
                    spenders = yield from self._scan_spenders(other)
                    yield self.kat.set_owners(other, spenders)
            else:
                # Only the caller's account changed.
                spenders = yield from self._scan_spenders(account)
                yield self.kat.set_owners(account, spenders)
        return TRUE  # line 24

    def _balance_of(self, pid: int, account: int) -> EmulatedOp:
        result = yield self.kat.balance_of(account)
        return result

    def _allowance(self, pid: int, account: int, spender: int) -> EmulatedOp:
        result = yield self.allowance_registers[account][spender].read()
        return result

    def _total_supply(self, pid: int) -> EmulatedOp:
        if self.variant == "literal":
            # Line 28: a non-atomic sum of per-account reads; concurrent
            # transfers can be double-counted or missed (reproduction note 4).
            total = 0
            for account in range(self.num_accounts):
                total += yield self.kat.balance_of(account)
            return total
        result = yield self.kat.total_supply()
        return result


class SafeEmulatedToken:
    """Single-writer variant of Algorithm 2 (reproduction note 2).

    Allowances are represented as ``granted[a][j] - spent[a][j]`` where the
    ``granted`` register is written only by the owner of ``a`` and the
    ``spent`` register only by spender ``j``; both are cumulative counters.
    The owner adjusts allowances with ``increaseAllowance`` /
    ``decreaseAllowance`` (ERC20's absolute-assignment ``approve`` is
    inherently racy against concurrent spends, which is the well-known ERC20
    approve attack; the single-writer discipline forces the increase/decrease
    API).
    """

    def __init__(
        self,
        initial_state: TokenState,
        k: int,
        history: History | None = None,
        name: str = "safe-emulated-token",
    ) -> None:
        self.k = k
        self.name = name
        self.history = history
        self.num_accounts = initial_state.num_accounts
        owner_map: list[set[int]] = []
        for account in range(self.num_accounts):
            owners = {account} | {
                pid
                for pid in range(self.num_accounts)
                if initial_state.allowance(account, pid) > 0
            }
            if len(owners) > k:
                raise InvalidArgumentError(
                    f"account {account} exceeds the k={k} spender bound"
                )
            owner_map.append(owners)
        self.kat = DynamicOwnerAT(
            initial_balances=initial_state.balances,
            owner_map=owner_map,
            num_processes=self.num_accounts,
            max_owners=k,
            name=f"{name}.kat",
        )
        self.granted: list[list[AtomicRegister]] = [
            [
                AtomicRegister(
                    name=f"{name}.G[{a}][{j}]",
                    initial=initial_state.allowance(a, j),
                )
                for j in range(self.num_accounts)
            ]
            for a in range(self.num_accounts)
        ]
        self.spent: list[list[AtomicRegister]] = [
            [
                AtomicRegister(name=f"{name}.S[{a}][{j}]", initial=0)
                for j in range(self.num_accounts)
            ]
            for a in range(self.num_accounts)
        ]

    @property
    def base_objects(self) -> list[Any]:
        registers = [r for row in self.granted for r in row]
        registers += [r for row in self.spent for r in row]
        return [self.kat, *registers]

    def _recorded(
        self, pid: int, op_name: str, args: tuple[Any, ...], body: EmulatedOp
    ) -> EmulatedOp:
        operation = Operation(op_name, args)
        if self.history is not None:
            self.history.invoke(pid, self.name, operation)
        result = yield from body
        if self.history is not None:
            self.history.respond(pid, self.name, operation, result)
        return result

    # -- public operations -------------------------------------------------

    def transfer(self, pid: int, dest: int, value: int) -> EmulatedOp:
        return self._recorded(
            pid, "transfer", (dest, value), self._transfer(pid, dest, value)
        )

    def transfer_from(
        self, pid: int, source: int, dest: int, value: int
    ) -> EmulatedOp:
        return self._recorded(
            pid,
            "transferFrom",
            (source, dest, value),
            self._transfer_from(pid, source, dest, value),
        )

    def increase_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EmulatedOp:
        return self._recorded(
            pid,
            "increaseAllowance",
            (spender, delta),
            self._increase_allowance(pid, spender, delta),
        )

    def decrease_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EmulatedOp:
        return self._recorded(
            pid,
            "decreaseAllowance",
            (spender, delta),
            self._decrease_allowance(pid, spender, delta),
        )

    def allowance(self, pid: int, account: int, spender: int) -> EmulatedOp:
        return self._recorded(
            pid,
            "allowance",
            (account, spender),
            self._allowance(pid, account, spender),
        )

    def balance_of(self, pid: int, account: int) -> EmulatedOp:
        return self._recorded(
            pid, "balanceOf", (account,), self._balance_of(pid, account)
        )

    def total_supply(self, pid: int) -> EmulatedOp:
        return self._recorded(pid, "totalSupply", (), self._total_supply(pid))

    # -- implementations -----------------------------------------------------

    def _transfer(self, pid: int, dest: int, value: int) -> EmulatedOp:
        result = yield self.kat.transfer(pid, dest, value)
        return result

    def _transfer_from(
        self, pid: int, source: int, dest: int, value: int
    ) -> EmulatedOp:
        granted = yield self.granted[source][pid].read()
        spent = yield self.spent[source][pid].read()
        if granted - spent < value:
            return FALSE
        if value == 0:
            return TRUE  # vacuous move; see EmulatedToken._transfer_from
        # Reserve the allowance in my single-writer cell, then move funds.
        yield self.spent[source][pid].write(spent + value)
        ok = yield self.kat.transfer(source, dest, value)
        if not ok:
            # Roll back the reservation (own cell: no lost-update risk).
            yield self.spent[source][pid].write(spent)
            return FALSE
        return TRUE

    def _potential_count(self, account: int) -> EmulatedOp:
        count = 1
        for pid in range(self.num_accounts):
            if pid == account:
                continue
            granted = yield self.granted[account][pid].read()
            spent = yield self.spent[account][pid].read()
            if granted - spent > 0:
                count += 1
        return count

    def _scan_spenders(self, account: int) -> EmulatedOp:
        spenders = {account}
        for pid in range(self.num_accounts):
            if pid == account:
                continue
            granted = yield self.granted[account][pid].read()
            spent = yield self.spent[account][pid].read()
            if granted - spent > 0:
                spenders.add(pid)
        return frozenset(spenders)

    def _increase_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EmulatedOp:
        account = pid
        granted = yield self.granted[account][spender].read()
        spent = yield self.spent[account][spender].read()
        current = granted - spent
        if delta > 0 and spender != account and current <= 0:
            count = yield from self._potential_count(account)
            if count >= self.k:
                return FALSE  # stay within Q_k
        yield self.granted[account][spender].write(granted + delta)
        if current <= 0 and delta > 0:
            spenders = yield from self._scan_spenders(account)
            yield self.kat.set_owners(account, spenders)
        return TRUE

    def _decrease_allowance(
        self, pid: int, spender: int, delta: int
    ) -> EmulatedOp:
        account = pid
        granted = yield self.granted[account][spender].read()
        spent = yield self.spent[account][spender].read()
        if granted - spent < delta:
            return FALSE
        yield self.granted[account][spender].write(granted - delta)
        return TRUE

    def _allowance(self, pid: int, account: int, spender: int) -> EmulatedOp:
        granted = yield self.granted[account][spender].read()
        spent = yield self.spent[account][spender].read()
        return max(granted - spent, 0)

    def _balance_of(self, pid: int, account: int) -> EmulatedOp:
        result = yield self.kat.balance_of(account)
        return result

    def _total_supply(self, pid: int) -> EmulatedOp:
        result = yield self.kat.total_supply()
        return result


def run_sequential(
    emulated: EmulatedToken | SafeEmulatedToken,
    pid: int,
    method: str,
    *args: Any,
) -> Any:
    """Drive one emulated operation to completion with no concurrency
    (sequential differential testing helper)."""
    generator: EmulatedOp = getattr(emulated, method)(pid, *args)
    try:
        call = next(generator)
        while True:
            result = call.target.invoke(pid, call.operation)
            call = generator.send(result)
    except StopIteration as stop:
        return stop.value


def workload_program(
    emulated: EmulatedToken | SafeEmulatedToken,
    pid: int,
    steps: Iterable[tuple[str, tuple[Any, ...]]],
) -> EmulatedOp:
    """A process program performing a sequence of emulated operations
    (method name + args), for concurrent differential tests.  Returns the
    responses as a tuple (hashable, so explorer memo keys stay sound)."""
    results = []
    for method, args in steps:
        result = yield from getattr(emulated, method)(pid, *args)
        results.append(result)
    return tuple(results)
