"""Asynchronous shared-memory runtime: processes, schedulers, executor,
exhaustive schedule exploration."""

from repro.runtime.calls import OpCall
from repro.runtime.executor import (
    ExecutionResult,
    System,
    SystemFactory,
    run_system,
    run_under_schedules,
)
from repro.runtime.explorer import (
    ExplorationReport,
    ScheduleExplorer,
    TerminalCheck,
    Violation,
)
from repro.runtime.process import ProcessProgram, ProcessRunner, ProcessStatus
from repro.runtime.scheduler import (
    Action,
    CrashAction,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SoloScheduler,
    StepAction,
)

__all__ = [
    "OpCall",
    "ExecutionResult",
    "System",
    "SystemFactory",
    "run_system",
    "run_under_schedules",
    "ExplorationReport",
    "ScheduleExplorer",
    "TerminalCheck",
    "Violation",
    "ProcessProgram",
    "ProcessRunner",
    "ProcessStatus",
    "Action",
    "CrashAction",
    "FixedScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SoloScheduler",
    "StepAction",
]
