"""The `OpCall` primitive connecting protocol code to the runtime.

Protocol code is written as Python generators that ``yield`` one
:class:`OpCall` per *atomic shared-memory step*.  The scheduler decides when
each pending call executes; executing it is indivisible, exactly matching the
atomicity assumption on base objects in the shared-memory model (§3.1).

Example protocol step::

    response = yield register.write(value)

``register.write(value)`` builds an :class:`OpCall`; the runtime executes it
atomically at a scheduling point of its choosing and resumes the generator
with the response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.spec.operation import Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.objects.base import SharedObject


@dataclass(frozen=True, slots=True)
class OpCall:
    """A pending atomic operation on a shared object."""

    target: "SharedObject"
    operation: Operation

    def __str__(self) -> str:
        return f"{self.target.name}.{self.operation}"
