"""The executor: drive a set of processes under a scheduler.

:func:`run_system` advances processes one atomic step at a time until every
process is done or crashed, recording a base-object history.  It is the
workhorse behind protocol tests, randomized schedule sweeps, and the
differential harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import SchedulingError
from repro.runtime.process import ProcessProgram, ProcessRunner, ProcessStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.objects.base import SharedObject
from repro.runtime.scheduler import (
    Action,
    CrashAction,
    RoundRobinScheduler,
    Scheduler,
)
from repro.spec.history import History


@dataclass
class System:
    """A fresh set of process programs plus the shared objects they use.

    Factories build a ``System`` per execution so that replays start from
    pristine object states.  ``objects`` must list every shared object the
    programs touch — the explorer derives configuration keys from it.
    """

    programs: list[ProcessProgram]
    objects: list["SharedObject"]
    #: Optional metadata (e.g. proposals per process) for property checks.
    meta: dict[str, Any] = field(default_factory=dict)
    #: Process id of each program; defaults to ``0..len(programs)-1``.  The
    #: id is what the runtime passes to shared objects as the invoking
    #: process, so it must match the identity the program assumes (e.g. the
    #: spender whose allowance it transfers).
    pids: list[int] | None = None

    def runners(self) -> list[ProcessRunner]:
        """Instantiate one runner per program with its proper process id."""
        pids = (
            self.pids
            if self.pids is not None
            else list(range(len(self.programs)))
        )
        if len(pids) != len(self.programs):
            raise SchedulingError("pids must match programs one-to-one")
        if len(set(pids)) != len(pids):
            raise SchedulingError("pids must be distinct")
        return [
            ProcessRunner(pid, program)
            for pid, program in zip(pids, self.programs)
        ]


SystemFactory = Callable[[], System]


@dataclass
class ExecutionResult:
    """Outcome of one complete (or budget-capped) execution."""

    #: Final per-process results for processes that completed.
    decisions: dict[int, Any]
    #: Pids crashed by the scheduler.
    crashed: frozenset[int]
    #: The action sequence actually performed.
    schedule: tuple[Action, ...]
    #: Base-object history of the run.
    history: History
    #: Runners in their final states (for state inspection).
    runners: list[ProcessRunner]
    #: Total atomic steps executed.
    steps: int

    @property
    def decided_values(self) -> frozenset[Any]:
        return frozenset(self.decisions.values())


def run_system(
    system: System,
    scheduler: Scheduler | None = None,
    max_steps: int = 100_000,
    history: History | None = None,
) -> ExecutionResult:
    """Run every process to completion (or crash) under ``scheduler``.

    Raises:
        SchedulingError: If ``max_steps`` is exceeded — for wait-free
            protocols this indicates a bug, never a legal outcome.
    """
    if scheduler is None:
        scheduler = RoundRobinScheduler()
    if history is None:
        history = History()
    runners = system.runners()
    by_pid = {runner.pid: runner for runner in runners}
    performed: list[Action] = []
    steps = 0
    while True:
        runnable = [r.pid for r in runners if r.is_runnable]
        if not runnable:
            break
        if steps >= max_steps:
            raise SchedulingError(
                f"execution exceeded {max_steps} steps; runnable={runnable}"
            )
        action = scheduler.next_action(runnable, steps)
        performed.append(action)
        if isinstance(action, CrashAction):
            by_pid[action.pid].crash()
        else:
            by_pid[action.pid].step(history)
            steps += 1
    return ExecutionResult(
        decisions={
            r.pid: r.result for r in runners if r.status is ProcessStatus.DONE
        },
        crashed=frozenset(
            r.pid for r in runners if r.status is ProcessStatus.CRASHED
        ),
        schedule=tuple(performed),
        history=history,
        runners=runners,
        steps=steps,
    )


def run_under_schedules(
    factory: SystemFactory,
    schedulers: Sequence[Scheduler],
    max_steps: int = 100_000,
) -> list[ExecutionResult]:
    """Run a fresh system once per scheduler (randomized sweeps)."""
    return [
        run_system(factory(), scheduler, max_steps=max_steps)
        for scheduler in schedulers
    ]
