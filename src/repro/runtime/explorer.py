"""Exhaustive schedule exploration (the mechanical adversary).

The impossibility side of the paper (Theorem 3) quantifies over *all*
schedules; the possibility side (Theorems 2 and 4) claims correctness under
every schedule and crash pattern.  This module explores the full interleaving
tree of a finite protocol:

* every reachable configuration is visited (DFS),
* configurations are memoized by a sound key — the tuple of shared-object
  states plus, per process, its status and the sequence of responses it has
  received (for deterministic programs this determines the continuation), so
  equivalent interleavings are explored once (a form of partial-order
  reduction),
* optional crash branches model the crash-failure adversary,
* per-terminal-execution property checks (agreement, validity, …) run on
  every distinct completion,
* reachable-decision sets ("valences") are computed for every configuration,
  enabling bivalence analysis and critical-state search in
  :mod:`repro.analysis.valency`.

Replay-based semantics: a configuration is identified with the action prefix
that reaches it; the explorer replays prefixes on fresh systems produced by
the factory, so factories must be deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ExplorationLimitError
from repro.runtime.executor import System, SystemFactory
from repro.runtime.process import ProcessRunner, ProcessStatus
from repro.runtime.scheduler import Action, CrashAction, StepAction

__all__ = [
    "ExplorationReport",
    "ScheduleExplorer",
    "TerminalCheck",
    "Violation",
]

#: A terminal-execution property check: receives the final runners and the
#: system, returns human-readable violation strings (empty = OK).
TerminalCheck = Callable[
    [list[ProcessRunner], System, tuple[Action, ...]], list[str]
]


@dataclass
class Violation:
    """A property violation found on a specific schedule."""

    schedule: tuple[Action, ...]
    message: str

    def __str__(self) -> str:
        rendered = ", ".join(
            f"crash({a.pid})" if isinstance(a, CrashAction) else f"p{a.pid}"
            for a in self.schedule
        )
        return f"{self.message} [schedule: {rendered}]"


@dataclass
class ExplorationReport:
    """Aggregate result of an exhaustive exploration."""

    #: Number of distinct terminal executions checked.
    executions: int = 0
    #: Number of distinct configurations visited.
    configs: int = 0
    #: All property violations found (empty = property holds everywhere).
    violations: list[Violation] = field(default_factory=list)
    #: Union of decided values over all completions from the initial config.
    outcomes: frozenset[Any] = frozenset()

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleExplorer:
    """Exhaustive DFS over the interleaving (and crash) tree of a protocol."""

    def __init__(
        self,
        factory: SystemFactory,
        crash_budget: int = 0,
        max_steps: int = 500,
        max_configs: int = 2_000_000,
        memoize: bool = True,
    ) -> None:
        """Args:
            factory: Builds a fresh :class:`System` per replay (deterministic).
            crash_budget: Maximum crashes per execution (``f``); crash
                branches multiply the tree, keep small.
            max_steps: Upper bound on schedule length; exceeding it means the
                protocol is not wait-free within the budget and raises.
            max_configs: Safety valve on distinct configurations.
            memoize: Deduplicate equivalent configurations (sound
                partial-order-style reduction).  Disable only for ablation
                measurements — the raw interleaving tree is exponentially
                larger.
        """
        self._factory = factory
        self.crash_budget = crash_budget
        self.max_steps = max_steps
        self.max_configs = max_configs
        self.memoize = memoize
        self._memo: dict[Any, frozenset[Any]] = {}
        self._report = ExplorationReport()
        self._checks: list[TerminalCheck] = []

    # ------------------------------------------------------------------

    def _replay(
        self, prefix: Sequence[Action]
    ) -> tuple[list[ProcessRunner], System]:
        system = self._factory()
        runners = system.runners()
        by_pid = {runner.pid: runner for runner in runners}
        for action in prefix:
            if isinstance(action, CrashAction):
                by_pid[action.pid].crash()
            else:
                by_pid[action.pid].step()
        return runners, system

    @staticmethod
    def _config_key(
        runners: list[ProcessRunner], system: System, crashes_used: int
    ) -> tuple[Any, ...]:
        object_states = tuple(obj.state for obj in system.objects)
        process_keys = tuple(r.memo_key() for r in runners)
        return (object_states, process_keys, crashes_used)

    @staticmethod
    def _crashes_used(prefix: Sequence[Action]) -> int:
        return sum(1 for action in prefix if isinstance(action, CrashAction))

    # ------------------------------------------------------------------

    def explore(
        self, checks: Sequence[TerminalCheck] = ()
    ) -> ExplorationReport:
        """Explore every schedule; run ``checks`` on every distinct terminal
        execution; return the aggregate report."""
        self._memo = {}
        self._report = ExplorationReport()
        self._checks = list(checks)
        outcomes = self._explore(())
        self._report.outcomes = outcomes
        return self._report

    def outcomes_from(self, prefix: Sequence[Action]) -> frozenset[Any]:
        """Reachable decided values from the configuration after ``prefix``
        (the configuration's *valence* in consensus terms)."""
        if not self._memo:
            # Ensure the memo is populated lazily for prefix queries.
            self._checks = []
        return self._explore(tuple(prefix))

    def children(self, prefix: Sequence[Action]) -> list[tuple[Action, ...]]:
        """One-step extensions of ``prefix`` (step actions only)."""
        runners, _system = self._replay(prefix)
        return [
            tuple(prefix) + (StepAction(r.pid),)
            for r in runners
            if r.is_runnable
        ]

    def pending_operations(self, prefix: Sequence[Action]) -> dict[int, str]:
        """Pending operation (rendered) per runnable process after ``prefix``."""
        runners, _system = self._replay(prefix)
        return {
            r.pid: str(r.pending)
            for r in runners
            if r.is_runnable and r.pending
        }

    # ------------------------------------------------------------------

    def _explore(self, prefix: tuple[Action, ...]) -> frozenset[Any]:
        if len(prefix) > self.max_steps:
            raise ExplorationLimitError(
                f"schedule exceeded {self.max_steps} steps; protocol is not "
                "wait-free within the exploration budget"
            )
        runners, system = self._replay(prefix)
        crashes_used = self._crashes_used(prefix)
        key = self._config_key(runners, system, crashes_used)
        if self.memoize:
            cached = self._memo.get(key)
            if cached is not None:
                return cached
        self._report.configs += 1
        if self._report.configs > self.max_configs:
            raise ExplorationLimitError(
                f"exceeded {self.max_configs} distinct configurations"
            )

        runnable = [r.pid for r in runners if r.is_runnable]
        if not runnable:
            self._report.executions += 1
            for check in self._checks:
                for message in check(runners, system, prefix):
                    self._report.violations.append(Violation(prefix, message))
            decided = frozenset(
                r.result for r in runners if r.status is ProcessStatus.DONE
            )
            self._memo[key] = decided
            return decided

        outcomes: set[Any] = set()
        for pid in runnable:
            outcomes |= self._explore(prefix + (StepAction(pid),))
        if crashes_used < self.crash_budget and len(runnable) > 1:
            for pid in runnable:
                outcomes |= self._explore(prefix + (CrashAction(pid),))
        result = frozenset(outcomes)
        self._memo[key] = result
        return result
