"""Process runners: sequential processes over shared objects.

A *program* is a zero-argument callable returning a generator that yields
:class:`~repro.runtime.calls.OpCall` records — one per atomic shared-memory
step — and terminates by ``return``-ing its result (e.g. the decided value of
a consensus protocol).  The runner realizes the model's *sequential process*:
it has at most one pending operation at any time and takes steps only when
the scheduler selects it.

The crash-failure model of §3.1 is realized by :meth:`ProcessRunner.crash`:
a crashed process simply stops taking steps; its pending invocation remains
incomplete (histories then contain a pending invocation, which the
linearizability checker completes or drops as the specification allows).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Generator

from repro.errors import ProcessCrashedError, SchedulingError
from repro.runtime.calls import OpCall
from repro.spec.history import History

#: A protocol program: builds a fresh generator for one process.
ProcessProgram = Callable[[], Generator[OpCall, Any, Any]]


class ProcessStatus(Enum):
    READY = "ready"  # has a pending operation
    DONE = "done"  # generator returned
    CRASHED = "crashed"  # halted prematurely


class ProcessRunner:
    """Drives one process's generator, one atomic operation per step."""

    def __init__(self, pid: int, program: ProcessProgram) -> None:
        self.pid = pid
        self._generator = program()
        self.status = ProcessStatus.READY
        self.result: Any = None
        self.pending: OpCall | None = None
        self.steps_taken = 0
        #: Responses received so far; with a deterministic program this fully
        #: determines the continuation — used as a memoization key.
        self.responses: tuple[Any, ...] = ()
        self._prime()

    def _prime(self) -> None:
        """Advance to the first yield (local computation only)."""
        try:
            self.pending = self._advance_to_yield(None, first=True)
        except StopIteration as stop:
            self.status = ProcessStatus.DONE
            self.result = stop.value
            self.pending = None

    def _advance_to_yield(self, response: Any, first: bool = False) -> OpCall:
        if first:
            yielded = next(self._generator)
        else:
            yielded = self._generator.send(response)
        if not isinstance(yielded, OpCall):
            raise SchedulingError(
                f"process {self.pid} yielded {yielded!r}; protocols must "
                "yield OpCall records (one atomic operation per step)"
            )
        return yielded

    # ------------------------------------------------------------------

    @property
    def is_runnable(self) -> bool:
        return self.status is ProcessStatus.READY

    def step(self, history: History | None = None) -> Any:
        """Execute the pending operation atomically and advance the program.

        Returns the operation's response.  Records invocation/response events
        in ``history`` when provided.
        """
        if self.status is ProcessStatus.CRASHED:
            raise ProcessCrashedError(f"process {self.pid} has crashed")
        if self.status is ProcessStatus.DONE or self.pending is None:
            raise SchedulingError(
                f"process {self.pid} has no pending operation"
            )
        call = self.pending
        if history is not None:
            history.invoke(self.pid, call.target.name, call.operation)
        result = call.target.invoke(self.pid, call.operation)
        if history is not None:
            history.respond(self.pid, call.target.name, call.operation, result)
        self.steps_taken += 1
        self.responses = self.responses + (result,)
        try:
            self.pending = self._advance_to_yield(result)
        except StopIteration as stop:
            self.status = ProcessStatus.DONE
            self.result = stop.value
            self.pending = None
        return result

    def crash(self) -> None:
        """Halt the process prematurely (crash-failure model)."""
        if self.status is ProcessStatus.READY:
            self.status = ProcessStatus.CRASHED
            self._generator.close()
            self.pending = None

    # ------------------------------------------------------------------

    def memo_key(self) -> tuple[Any, ...]:
        """A hashable summary determining this process's continuation."""
        if self.status is ProcessStatus.DONE:
            return ("done", self.result)
        if self.status is ProcessStatus.CRASHED:
            return ("crashed", self.steps_taken)
        return ("ready", self.responses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessRunner p{self.pid} {self.status.value} "
            f"steps={self.steps_taken} pending={self.pending}>"
        )
